"""ASCII renderings of the paper's figure types.

matplotlib is unavailable in the offline environment, so every figure is
emitted as (a) CSV series via :mod:`repro.viz.csvout` and (b) a terminal
rendering from this module: shaded heatmaps for the GEMM/Cholesky and
structure figures, log-x line charts for the Stepping-style curves,
scatter clouds for the 968-matrix sweeps and bar charts for power.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

#: Light-to-dark shading ramp used by heatmaps (blue->red in the paper).
SHADES = " .:-=+*#%@"


def _shade(value: float, lo: float, hi: float) -> str:
    if not math.isfinite(value):
        return "?"
    if hi <= lo:
        return SHADES[-1]
    t = (value - lo) / (hi - lo)
    return SHADES[min(len(SHADES) - 1, max(0, int(t * (len(SHADES) - 1) + 0.5)))]


def heatmap(
    values: np.ndarray,
    *,
    row_labels: Sequence[str] | None = None,
    col_labels: Sequence[str] | None = None,
    title: str = "",
    width_per_cell: int = 1,
) -> str:
    """Shaded 2-D heatmap (rows printed top to bottom)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError("heatmap expects a 2-D array")
    finite = values[np.isfinite(values)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    lines = []
    if title:
        lines.append(title)
        lines.append(f"  scale: '{SHADES[0]}'={lo:.3g} .. '{SHADES[-1]}'={hi:.3g}")
    label_w = max((len(str(r)) for r in row_labels), default=0) if row_labels else 0
    for i, row in enumerate(values):
        cells = "".join(_shade(v, lo, hi) * width_per_cell for v in row)
        prefix = f"{row_labels[i]:>{label_w}} |" if row_labels else "|"
        lines.append(f"{prefix}{cells}|")
    if col_labels:
        lines.append(" " * (label_w + 1) + f" {col_labels[0]} .. {col_labels[-1]}")
    return "\n".join(lines)


def line_chart(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    *,
    title: str = "",
    height: int = 16,
    width: int = 72,
    log_x: bool = True,
    y_label: str = "GFlop/s",
) -> str:
    """Multi-series line chart on a character canvas."""
    x = np.asarray(x, dtype=np.float64)
    if log_x:
        x = np.log2(np.maximum(x, 1e-30))
    all_y = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    finite = all_y[np.isfinite(all_y)]
    y_lo, y_hi = (float(finite.min()), float(finite.max())) if finite.size else (0, 1)
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(x.min()), float(x.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    canvas = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for idx, (name, ys) in enumerate(series.items()):
        mark = markers[idx % len(markers)]
        for xv, yv in zip(x, np.asarray(ys, dtype=np.float64)):
            if not (math.isfinite(xv) and math.isfinite(yv)):
                continue
            col = int((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            canvas[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} +" + "-" * width)
    for row in canvas:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_lo:10.3g} +" + "-" * width)
    axis = "log2(x)" if log_x else "x"
    lines.append(" " * 12 + f"{axis}: {x_lo:.2f} .. {x_hi:.2f}   y: {y_label}")
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def scatter(
    x: np.ndarray,
    y: np.ndarray,
    *,
    title: str = "",
    height: int = 14,
    width: int = 72,
    log_x: bool = True,
) -> str:
    """Single-cloud scatter plot (Figures 9-11 top panels)."""
    return line_chart(
        np.asarray(x),
        {"points": np.asarray(y)},
        title=title,
        height=height,
        width=width,
        log_x=log_x,
    )


def hbar(fraction: float, width: int = 24, *, fill: str = "#") -> str:
    """One fixed-width horizontal bar for a [0, 1] fraction.

    Used by the telemetry profile view (``opm-repro profile``) for
    self-time shares; values outside [0, 1] are clamped.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if not math.isfinite(fraction):
        fraction = 0.0
    n = int(round(min(1.0, max(0.0, fraction)) * width))
    return fill * n + " " * (width - n)


def bar_chart(
    labels: Sequence[str],
    groups: dict[str, Sequence[float]],
    *,
    title: str = "",
    width: int = 48,
    unit: str = "W",
) -> str:
    """Grouped horizontal bars (Figures 26/27)."""
    all_vals = [v for vs in groups.values() for v in vs]
    hi = max(all_vals) if all_vals else 1.0
    lines = [title] if title else []
    label_w = max(len(str(l)) for l in labels)
    group_w = max(len(g) for g in groups)
    for i, label in enumerate(labels):
        for gname, vals in groups.items():
            v = vals[i]
            n = int(v / hi * width) if hi > 0 else 0
            lines.append(
                f"{label:>{label_w}} {gname:<{group_w}} |{'#' * n}{' ' * (width - n)}| {v:8.2f} {unit}"
            )
    return "\n".join(lines)


def density_plot(
    grid: np.ndarray,
    densities: dict[str, np.ndarray],
    *,
    title: str = "",
) -> str:
    """Probability-density comparison (Figure 1)."""
    return line_chart(
        grid, densities, title=title, log_x=False, y_label="density"
    )
