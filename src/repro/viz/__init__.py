"""Terminal figure rendering and CSV export."""

from repro.viz.ascii import (
    bar_chart,
    density_plot,
    hbar,
    heatmap,
    line_chart,
    scatter,
)
from repro.viz.csvout import to_csv_string, write_csv
from repro.viz.svg import heatmap_svg, line_chart_svg, write_svg

__all__ = [
    "bar_chart",
    "density_plot",
    "hbar",
    "heatmap",
    "line_chart",
    "scatter",
    "heatmap_svg",
    "line_chart_svg",
    "to_csv_string",
    "write_csv",
    "write_svg",
]
