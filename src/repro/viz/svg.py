"""Hand-rolled SVG rendering — publication-style figures with no matplotlib.

The offline environment has no plotting stack, so this module writes
standalone SVG directly: log-x line charts for the Stepping-style curves
and color-mapped heatmaps for the dense/structure figures. Output is
plain XML viewable in any browser; `opm-repro run <id> --svg-dir out/`
emits one file per rendered figure.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence

import numpy as np

#: Categorical line colors (colorblind-safe Okabe-Ito subset).
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9")

WIDTH, HEIGHT = 640, 400
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 20, 36, 56


def _esc(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _fmt_tick(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e4 or abs(v) < 1e-2:
        return f"{v:.1e}"
    return f"{v:.4g}"


def _svg_header(title: str) -> list[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        'font-family="Helvetica, Arial, sans-serif">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{WIDTH / 2}" y="22" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{_esc(title)}</text>',
    ]


def line_chart_svg(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    x_label: str = "size",
    y_label: str = "GFlop/s",
    log_x: bool = True,
) -> str:
    """Multi-series line chart as a standalone SVG document."""
    xv = np.asarray(list(x), dtype=np.float64)
    if log_x:
        xv = np.log10(np.maximum(xv, 1e-30))
    all_y = np.concatenate(
        [np.asarray(list(v), dtype=np.float64) for v in series.values()]
    )
    finite = all_y[np.isfinite(all_y)]
    y_lo = float(finite.min()) if finite.size else 0.0
    y_hi = float(finite.max()) if finite.size else 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    y_lo = min(0.0, y_lo)
    x_lo, x_hi = float(xv.min()), float(xv.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B

    def px(v: float) -> float:
        return MARGIN_L + (v - x_lo) / (x_hi - x_lo) * plot_w

    def py(v: float) -> float:
        return MARGIN_T + (1.0 - (v - y_lo) / (y_hi - y_lo)) * plot_h

    parts = _svg_header(title)
    # Axes and gridlines.
    parts.append(
        f'<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333"/>'
    )
    for i in range(5):
        yv = y_lo + (y_hi - y_lo) * i / 4
        parts.append(
            f'<line x1="{MARGIN_L}" y1="{py(yv):.1f}" '
            f'x2="{MARGIN_L + plot_w}" y2="{py(yv):.1f}" '
            'stroke="#ddd" stroke-dasharray="3,3"/>'
        )
        parts.append(
            f'<text x="{MARGIN_L - 6}" y="{py(yv) + 4:.1f}" '
            f'text-anchor="end" font-size="10">{_fmt_tick(yv)}</text>'
        )
    for i in range(5):
        xvv = x_lo + (x_hi - x_lo) * i / 4
        label = _fmt_tick(10**xvv) if log_x else _fmt_tick(xvv)
        parts.append(
            f'<text x="{px(xvv):.1f}" y="{MARGIN_T + plot_h + 16}" '
            f'text-anchor="middle" font-size="10">{label}</text>'
        )
    parts.append(
        f'<text x="{MARGIN_L + plot_w / 2}" y="{HEIGHT - 18}" '
        f'text-anchor="middle" font-size="11">{_esc(x_label)}'
        f'{" (log)" if log_x else ""}</text>'
    )
    parts.append(
        f'<text x="16" y="{MARGIN_T + plot_h / 2}" text-anchor="middle" '
        f'font-size="11" transform="rotate(-90 16 {MARGIN_T + plot_h / 2})">'
        f"{_esc(y_label)}</text>"
    )
    # Series.
    for idx, (name, ys) in enumerate(series.items()):
        color = PALETTE[idx % len(PALETTE)]
        yv = np.asarray(list(ys), dtype=np.float64)
        pts = [
            f"{px(a):.1f},{py(b):.1f}"
            for a, b in zip(xv, yv)
            if math.isfinite(a) and math.isfinite(b)
        ]
        if pts:
            parts.append(
                f'<polyline points="{" ".join(pts)}" fill="none" '
                f'stroke="{color}" stroke-width="1.8"/>'
            )
        # Legend entry.
        lx = MARGIN_L + 8
        ly = MARGIN_T + 14 + idx * 15
        parts.append(
            f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 18}" y2="{ly - 4}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{lx + 23}" y="{ly}" font-size="10">{_esc(name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def _viridis_like(t: float) -> str:
    """Cheap perceptual color ramp (dark blue -> teal -> yellow)."""
    t = min(1.0, max(0.0, t))
    stops = [
        (0.0, (68, 1, 84)),
        (0.33, (49, 104, 142)),
        (0.66, (53, 183, 121)),
        (1.0, (253, 231, 37)),
    ]
    for (t0, c0), (t1, c1) in zip(stops, stops[1:]):
        if t <= t1:
            f = (t - t0) / (t1 - t0) if t1 > t0 else 0.0
            rgb = tuple(round(a + (b - a) * f) for a, b in zip(c0, c1))
            return f"rgb({rgb[0]},{rgb[1]},{rgb[2]})"
    return "rgb(253,231,37)"


def heatmap_svg(
    values: np.ndarray,
    *,
    title: str = "",
    row_labels: Sequence[str] | None = None,
    col_labels: Sequence[str] | None = None,
) -> str:
    """Color-mapped heatmap as a standalone SVG document."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError("heatmap_svg expects a 2-D array")
    n_rows, n_cols = values.shape
    finite = values[np.isfinite(values)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    span = hi - lo if hi > lo else 1.0
    plot_w = WIDTH - MARGIN_L - MARGIN_R - 30  # room for the colorbar
    plot_h = HEIGHT - MARGIN_T - MARGIN_B
    cw, ch = plot_w / n_cols, plot_h / n_rows
    parts = _svg_header(title)
    for i in range(n_rows):
        for j in range(n_cols):
            v = values[i, j]
            fill = "#eee" if not math.isfinite(v) else _viridis_like((v - lo) / span)
            parts.append(
                f'<rect x="{MARGIN_L + j * cw:.1f}" '
                f'y="{MARGIN_T + i * ch:.1f}" width="{cw + 0.5:.1f}" '
                f'height="{ch + 0.5:.1f}" fill="{fill}"/>'
            )
    if row_labels:
        step = max(1, n_rows // 8)
        for i in range(0, n_rows, step):
            parts.append(
                f'<text x="{MARGIN_L - 5}" '
                f'y="{MARGIN_T + (i + 0.5) * ch + 3:.1f}" text-anchor="end" '
                f'font-size="9">{_esc(row_labels[i])}</text>'
            )
    if col_labels:
        step = max(1, n_cols // 8)
        for j in range(0, n_cols, step):
            parts.append(
                f'<text x="{MARGIN_L + (j + 0.5) * cw:.1f}" '
                f'y="{MARGIN_T + plot_h + 14}" text-anchor="middle" '
                f'font-size="9">{_esc(col_labels[j])}</text>'
            )
    # Colorbar.
    bar_x = MARGIN_L + plot_w + 10
    for k in range(40):
        t = 1.0 - k / 39
        parts.append(
            f'<rect x="{bar_x}" y="{MARGIN_T + k * plot_h / 40:.1f}" '
            f'width="12" height="{plot_h / 40 + 0.5:.1f}" '
            f'fill="{_viridis_like(t)}"/>'
        )
    parts.append(
        f'<text x="{bar_x + 16}" y="{MARGIN_T + 8}" font-size="9">'
        f"{_fmt_tick(hi)}</text>"
    )
    parts.append(
        f'<text x="{bar_x + 16}" y="{MARGIN_T + plot_h}" font-size="9">'
        f"{_fmt_tick(lo)}</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(path: str | Path, svg: str) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(svg)
    return path
