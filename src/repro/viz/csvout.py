"""CSV serialization of experiment tables."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence


def to_csv_string(columns: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a column-named table as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(columns)
    for row in rows:
        writer.writerow(list(row))
    return buf.getvalue()


def write_csv(
    path: str | Path,
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write a table to ``path`` (parent directories created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Explicit UTF-8: these files feed the content-addressed cache's
    # identity checks, so bytes must not vary with the platform locale.
    path.write_text(to_csv_string(columns, rows), encoding="utf-8")
    return path
