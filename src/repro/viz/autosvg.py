"""Automatic SVG rendering of experiment result tables.

Experiments emit data tables, not plot objects; this module recognizes
the two tabular shapes the paper's figures use and renders them:

* **Curve tables** — first column numeric and strictly increasing
  (``size_bytes``, ``footprint_mb``, ...), remaining numeric columns are
  series → log-x line chart.
* **Dense sweep tables** — columns ``(order, tile, <mode>...)`` → one
  heatmap per mode over the (tile, order) grid.

Tables that match neither shape are skipped (they are data, not figures).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.experiments.results import DataTable, ExperimentResult
from repro.viz.svg import heatmap_svg, line_chart_svg, write_svg


def _numeric(values) -> np.ndarray | None:
    try:
        arr = np.asarray([float(v) for v in values], dtype=np.float64)
    except (TypeError, ValueError):
        return None
    return arr


def _curve_svg(table: DataTable, title: str) -> str | None:
    if len(table.columns) < 2 or len(table.rows) < 3:
        return None
    x = _numeric(table.column(table.columns[0]))
    if x is None or np.any(np.diff(x) <= 0) or x.min() <= 0:
        return None
    series = {}
    for col in table.columns[1:]:
        y = _numeric(table.column(col))
        if y is None:
            return None
        series[col] = y
    return line_chart_svg(
        x, series, title=title, x_label=str(table.columns[0])
    )


def _dense_svgs(table: DataTable, title: str) -> dict[str, str]:
    if tuple(table.columns[:2]) != ("order", "tile"):
        return {}
    orders = sorted({row[0] for row in table.rows})
    tiles = sorted({row[1] for row in table.rows})
    index = {(row[0], row[1]): row for row in table.rows}
    out = {}
    for k, mode in enumerate(table.columns[2:], start=2):
        grid = np.full((len(tiles), len(orders)), np.nan)
        for i, t in enumerate(tiles):
            for j, o in enumerate(orders):
                row = index.get((o, t))
                if row is not None:
                    grid[i, j] = float(row[k])
        safe = mode.replace("/", "_").replace(" ", "_")
        out[safe] = heatmap_svg(
            grid[::-1],
            title=f"{title} — {mode} (GFlop/s)",
            row_labels=[str(t) for t in tiles[::-1]],
            col_labels=[str(o) for o in orders],
        )
    return out


def svgs_for(result: ExperimentResult) -> dict[str, str]:
    """filename stem -> SVG text, for every renderable table."""
    out: dict[str, str] = {}
    for table in result.tables:
        dense = _dense_svgs(table, result.title)
        if dense:
            for mode, svg in dense.items():
                out[f"{table.name}_{mode}"] = svg
            continue
        curve = _curve_svg(table, result.title)
        if curve is not None:
            out[table.name] = curve
    return out


def write_svgs(result: ExperimentResult, out_dir: str | Path) -> list[Path]:
    """Write all renderable figures under ``out_dir/<experiment_id>/``."""
    base = Path(out_dir) / result.experiment_id
    return [
        write_svg(base / f"{stem}.svg", svg)
        for stem, svg in svgs_for(result).items()
    ]
