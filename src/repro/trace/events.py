"""Access-trace event records.

A trace is a sequence of :class:`Access` events at byte granularity; the
simulator consumes the line-granular expansion via
:func:`repro.memory.cacheline.lines_touched`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator

from repro.memory.cacheline import lines_touched
from repro.platforms.spec import LINE_BYTES


@dataclasses.dataclass(frozen=True)
class Access:
    """One memory reference issued by a kernel."""

    addr: int  # byte address
    size: int = 8  # bytes (double-precision word by default)
    write: bool = False

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError("addr must be non-negative")
        if self.size <= 0:
            raise ValueError("size must be positive")


def to_line_trace(
    accesses: Iterable[Access], line: int = LINE_BYTES
) -> Iterator[tuple[int, bool]]:
    """Expand byte-level accesses into (line_addr, is_write) pairs."""
    for acc in accesses:
        for line_addr in lines_touched(acc.addr, acc.size, line):
            yield line_addr, acc.write


def reads(addrs: Iterable[int], size: int = 8) -> Iterator[Access]:
    """Wrap raw addresses as read accesses."""
    for addr in addrs:
        yield Access(addr, size=size, write=False)


def writes(addrs: Iterable[int], size: int = 8) -> Iterator[Access]:
    """Wrap raw addresses as write accesses."""
    for addr in addrs:
        yield Access(addr, size=size, write=True)
