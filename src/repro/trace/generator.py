"""Synthetic address-stream generators.

These produce the canonical access patterns the kernels decompose into:
sequential streaming, constant-stride scans, 2-D tile sweeps, uniform
random access and dependent pointer chasing. The trace simulator and the
analytic engine are cross-validated on these streams (tests/test_engine_*).

Each generator has two faces: the historical per-:class:`Access` iterator
and an ``*_array`` variant returning ``(byte_addrs, writes)`` ndarrays in
the identical reference order (tests/test_trace_batch.py pins the
equivalence). The array form feeds :func:`repro.trace.batch.expand_lines`
and the hierarchy's batched fast path without per-reference Python
objects.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.trace.events import Access


def sequential(
    base: int, n_words: int, *, word: int = 8, write: bool = False
) -> Iterator[Access]:
    """A unit-stride scan over ``n_words`` words starting at ``base``."""
    for i in range(n_words):
        yield Access(base + i * word, size=word, write=write)


def strided(
    base: int, n_accesses: int, stride: int, *, word: int = 8, write: bool = False
) -> Iterator[Access]:
    """A constant-stride scan (``stride`` in bytes)."""
    if stride <= 0:
        raise ValueError("stride must be positive")
    for i in range(n_accesses):
        yield Access(base + i * stride, size=word, write=write)


def repeated_sweep(
    base: int, n_words: int, sweeps: int, *, word: int = 8, write: bool = False
) -> Iterator[Access]:
    """``sweeps`` back-to-back sequential passes over the same buffer.

    This is the minimal workload exhibiting a cache peak: once the buffer
    fits a level, every sweep after the first hits there.
    """
    for _ in range(sweeps):
        yield from sequential(base, n_words, word=word, write=write)


def tiled_2d(
    base: int,
    rows: int,
    cols: int,
    tile_rows: int,
    tile_cols: int,
    *,
    word: int = 8,
    write: bool = False,
) -> Iterator[Access]:
    """Row-major traversal of a matrix in tiles (GEMM-style blocking)."""
    if tile_rows <= 0 or tile_cols <= 0:
        raise ValueError("tile dims must be positive")
    for ti in range(0, rows, tile_rows):
        for tj in range(0, cols, tile_cols):
            for i in range(ti, min(ti + tile_rows, rows)):
                for j in range(tj, min(tj + tile_cols, cols)):
                    yield Access(base + (i * cols + j) * word, size=word, write=write)


def uniform_random(
    base: int,
    span_words: int,
    n_accesses: int,
    *,
    word: int = 8,
    write: bool = False,
    seed: int = 0,
) -> Iterator[Access]:
    """Uniformly random word accesses within a buffer (SpMV x-vector style)."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, span_words, size=n_accesses)
    for i in idx:
        yield Access(base + int(i) * word, size=word, write=write)


def pointer_chase(
    base: int,
    span_words: int,
    n_accesses: int,
    *,
    word: int = 8,
    seed: int = 0,
) -> Iterator[Access]:
    """A dependent random walk: each address derived from the previous.

    Models latency-bound kernels (SpTRSV's dependency chains): there is no
    memory-level parallelism in this stream by construction.
    """
    rng = np.random.default_rng(seed)
    pos = 0
    for _ in range(n_accesses):
        yield Access(base + pos * word, size=word, write=False)
        pos = int(rng.integers(0, span_words))


# -- ndarray variants --------------------------------------------------------


def sequential_array(
    base: int, n_words: int, *, word: int = 8, write: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Array form of :func:`sequential`: (byte_addrs, writes)."""
    addrs = base + np.arange(n_words, dtype=np.int64) * word
    return addrs, np.full(n_words, write, dtype=bool)


def strided_array(
    base: int, n_accesses: int, stride: int, *, write: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Array form of :func:`strided`."""
    if stride <= 0:
        raise ValueError("stride must be positive")
    addrs = base + np.arange(n_accesses, dtype=np.int64) * stride
    return addrs, np.full(n_accesses, write, dtype=bool)


def repeated_sweep_array(
    base: int, n_words: int, sweeps: int, *, word: int = 8, write: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Array form of :func:`repeated_sweep`."""
    addrs, writes = sequential_array(base, n_words, word=word, write=write)
    return np.tile(addrs, sweeps), np.tile(writes, sweeps)


def tiled_2d_array(
    base: int,
    rows: int,
    cols: int,
    tile_rows: int,
    tile_cols: int,
    *,
    word: int = 8,
    write: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Array form of :func:`tiled_2d` (same tile traversal order)."""
    if tile_rows <= 0 or tile_cols <= 0:
        raise ValueError("tile dims must be positive")
    pieces = []
    row_ids = np.arange(rows, dtype=np.int64)
    col_ids = np.arange(cols, dtype=np.int64)
    for ti in range(0, rows, tile_rows):
        ri = row_ids[ti : ti + tile_rows]
        for tj in range(0, cols, tile_cols):
            cj = col_ids[tj : tj + tile_cols]
            pieces.append((ri[:, None] * cols + cj[None, :]).ravel())
    idx = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
    addrs = base + idx * word
    return addrs, np.full(addrs.shape[0], write, dtype=bool)


def uniform_random_array(
    base: int,
    span_words: int,
    n_accesses: int,
    *,
    word: int = 8,
    write: bool = False,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Array form of :func:`uniform_random` (same rng draw sequence)."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, span_words, size=n_accesses).astype(np.int64)
    return base + idx * word, np.full(n_accesses, write, dtype=bool)


def pointer_chase_array(
    base: int,
    span_words: int,
    n_accesses: int,
    *,
    word: int = 8,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Array form of :func:`pointer_chase`.

    The walk's positions depend only on the rng draw sequence, not on
    memory contents, so the whole chain is precomputable: position 0
    followed by the first ``n - 1`` draws.
    """
    rng = np.random.default_rng(seed)
    if n_accesses == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    draws = rng.integers(0, span_words, size=n_accesses).astype(np.int64)
    pos = np.concatenate((np.zeros(1, dtype=np.int64), draws[:-1]))
    return base + pos * word, np.zeros(n_accesses, dtype=bool)
