"""Synthetic address-stream generators.

These produce the canonical access patterns the kernels decompose into:
sequential streaming, constant-stride scans, 2-D tile sweeps, uniform
random access and dependent pointer chasing. The trace simulator and the
analytic engine are cross-validated on these streams (tests/test_engine_*).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.trace.events import Access


def sequential(
    base: int, n_words: int, *, word: int = 8, write: bool = False
) -> Iterator[Access]:
    """A unit-stride scan over ``n_words`` words starting at ``base``."""
    for i in range(n_words):
        yield Access(base + i * word, size=word, write=write)


def strided(
    base: int, n_accesses: int, stride: int, *, word: int = 8, write: bool = False
) -> Iterator[Access]:
    """A constant-stride scan (``stride`` in bytes)."""
    if stride <= 0:
        raise ValueError("stride must be positive")
    for i in range(n_accesses):
        yield Access(base + i * stride, size=word, write=write)


def repeated_sweep(
    base: int, n_words: int, sweeps: int, *, word: int = 8, write: bool = False
) -> Iterator[Access]:
    """``sweeps`` back-to-back sequential passes over the same buffer.

    This is the minimal workload exhibiting a cache peak: once the buffer
    fits a level, every sweep after the first hits there.
    """
    for _ in range(sweeps):
        yield from sequential(base, n_words, word=word, write=write)


def tiled_2d(
    base: int,
    rows: int,
    cols: int,
    tile_rows: int,
    tile_cols: int,
    *,
    word: int = 8,
    write: bool = False,
) -> Iterator[Access]:
    """Row-major traversal of a matrix in tiles (GEMM-style blocking)."""
    if tile_rows <= 0 or tile_cols <= 0:
        raise ValueError("tile dims must be positive")
    for ti in range(0, rows, tile_rows):
        for tj in range(0, cols, tile_cols):
            for i in range(ti, min(ti + tile_rows, rows)):
                for j in range(tj, min(tj + tile_cols, cols)):
                    yield Access(base + (i * cols + j) * word, size=word, write=write)


def uniform_random(
    base: int,
    span_words: int,
    n_accesses: int,
    *,
    word: int = 8,
    write: bool = False,
    seed: int = 0,
) -> Iterator[Access]:
    """Uniformly random word accesses within a buffer (SpMV x-vector style)."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, span_words, size=n_accesses)
    for i in idx:
        yield Access(base + int(i) * word, size=word, write=write)


def pointer_chase(
    base: int,
    span_words: int,
    n_accesses: int,
    *,
    word: int = 8,
    seed: int = 0,
) -> Iterator[Access]:
    """A dependent random walk: each address derived from the previous.

    Models latency-bound kernels (SpTRSV's dependency chains): there is no
    memory-level parallelism in this stream by construction.
    """
    rng = np.random.default_rng(seed)
    pos = 0
    for _ in range(n_accesses):
        yield Access(base + pos * word, size=word, write=False)
        pos = int(rng.integers(0, span_words))
