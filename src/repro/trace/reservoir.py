"""Reservoir sampling for long traces.

Exact stack-distance computation is O(N log N) in trace length; for the
longest instrumented-kernel traces that is the bottleneck of validation
runs. This module provides the standard tools for working from samples:

* :class:`Reservoir` — Vitter's algorithm R: a uniform fixed-size sample
  of an unbounded stream, single pass, O(1) per item.
* :func:`sampled_stack_distances` — estimate the stack-distance *hit-rate
  curve* from a systematic sample of reference windows: distances are
  computed exactly inside sampled windows (reuse beyond the window length
  is right-censored and reported as such). For the hit-rate regimes the
  engine cares about (working sets well below the window), the estimate
  converges to the exact curve; `tests/test_reservoir.py` quantifies the
  error on canonical streams.
* :func:`sampled_stack_distances_stream` — the same estimator over an
  iterable of ndarray chunks (e.g. ``kernel_trace_chunks`` output),
  holding at most one window in memory, for traces that must never
  materialize whole.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

from repro.trace.stackdist import StackDistanceProfile, stack_distances


class Reservoir:
    """Uniform fixed-size sample of a stream (Vitter's algorithm R)."""

    def __init__(self, capacity: int, *, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._items: list = []
        self._seen = 0

    def offer(self, item) -> None:
        """Present one stream item to the sampler."""
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        j = int(self._rng.integers(0, self._seen))
        if j < self.capacity:
            self._items[j] = item

    def extend(self, items: Iterable) -> "Reservoir":
        for item in items:
            self.offer(item)
        return self

    @property
    def sample(self) -> list:
        return list(self._items)

    @property
    def seen(self) -> int:
        return self._seen

    def __len__(self) -> int:
        return len(self._items)


@dataclasses.dataclass(frozen=True)
class SampledProfile:
    """Stack-distance estimate from sampled windows.

    ``censored_fraction`` is the share of sampled references whose reuse
    distance exceeded the window (they may be hits in very large caches;
    the estimator counts them as misses, making `hit_rate` a *lower
    bound* above the window working set).
    """

    profile: StackDistanceProfile
    window: int
    n_windows: int
    censored_fraction: float

    def hit_rate(self, capacity_lines: int) -> float:
        return self.profile.hit_rate(capacity_lines)


class WindowSampler:
    """Systematic one-in-``period`` window sampler over a reference stream.

    Shared core of :func:`sampled_stack_distances` and
    :func:`sampled_stack_distances_stream`; the validation harness drives
    it directly to tee one chunk stream into the simulator and the
    estimator. Window selection, the keep-the-tail rule, and —
    deliberately in exactly ONE place — the censored/total accounting
    live here: the historical implementation repeated ``censored +=
    prof.n_cold`` at three window-boundary sites, which audits could not
    tell apart from a double count (``tests/test_reservoir.py`` now pins
    ``censored_fraction`` against the exact profile's cold count).

    ``max_distances`` caps memory end-to-end: kept distances then live in
    a :class:`Reservoir` (uniform over all sampled references, cold
    markers included, so the censored share survives subsampling in
    expectation) instead of an unbounded concatenation.
    """

    def __init__(
        self,
        window: int,
        period: int,
        seed: int,
        *,
        max_distances: int | None = None,
    ) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if period < 1:
            raise ValueError("period must be >= 1")
        self.window = window
        self.period = period
        rng = np.random.default_rng(seed)
        self._offset = int(rng.integers(0, period))
        self._index = 0  # completed windows so far (selected or not)
        self._distances: list[np.ndarray] = []
        self._reservoir = (
            Reservoir(max_distances, seed=seed) if max_distances else None
        )
        self._censored = 0
        self._total = 0
        self._n_windows = 0
        # Partial-window pieces carried across push() chunk boundaries.
        self._parts: list[np.ndarray] = []
        self._buffered = 0

    def _absorb(self, refs) -> None:
        """Analyze one *selected* window exactly. The only place the
        censored/total books are written."""
        prof = stack_distances(refs)
        if self._reservoir is not None:
            self._reservoir.extend(prof.distances.tolist())
        else:
            self._distances.append(prof.distances)
        self._censored += prof.n_cold
        self._total += prof.n_references
        self._n_windows += 1

    def complete(self, refs) -> None:
        """Finish one full window: absorb it if systematically selected."""
        if self._index % self.period == self._offset:
            self._absorb(refs)
        self._index += 1

    def tail(self, refs) -> None:
        """Offer the final partial window: kept if its slot is selected,
        or if nothing was sampled at all (short traces must not yield an
        empty estimate)."""
        if self._index % self.period == self._offset or self._n_windows == 0:
            self._absorb(refs)

    def push(self, chunk: np.ndarray) -> None:
        """Stream one ndarray chunk; windows are sliced, never copied,
        except where one straddles a chunk boundary."""
        if chunk.ndim != 1:
            raise ValueError("line trace array must be 1-D")
        w = self.window
        n = chunk.shape[0]
        pos = 0
        if self._buffered:
            take = min(w - self._buffered, n)
            self._parts.append(chunk[:take])
            self._buffered += take
            pos = take
            if self._buffered == w:
                self.complete(np.concatenate(self._parts))
                self._parts = []
                self._buffered = 0
        while pos + w <= n:
            self.complete(chunk[pos : pos + w])
            pos += w
        if pos < n:
            self._parts.append(chunk[pos:])
            self._buffered += n - pos

    def finish(self) -> SampledProfile:
        if self._buffered:
            self.tail(
                self._parts[0]
                if len(self._parts) == 1
                else np.concatenate(self._parts)
            )
            self._parts = []
            self._buffered = 0
        if self._reservoir is not None:
            merged = np.asarray(self._reservoir.sample, dtype=np.int64)
        else:
            merged = (
                np.concatenate(self._distances)
                if self._distances
                else np.empty(0, dtype=np.int64)
            )
        return SampledProfile(
            profile=StackDistanceProfile(distances=merged),
            window=self.window,
            n_windows=self._n_windows,
            censored_fraction=self._censored / self._total if self._total else 0.0,
        )


def sampled_stack_distances(
    line_trace: Iterable[int] | np.ndarray,
    *,
    window: int = 4096,
    period: int = 4,
    seed: int = 0,
) -> SampledProfile:
    """Estimate the stack-distance curve from every ``period``-th window.

    The trace is cut into consecutive windows of ``window`` references;
    a deterministic systematic sample (offset seeded) of one-in-``period``
    windows is analyzed exactly. Cold references at window starts are
    censored (distance unknown beyond the window), tracked in
    ``censored_fraction``.

    ndarray traces are windowed by slicing — no per-reference Python
    buffering — and each sampled window goes down
    :func:`~repro.trace.stackdist.stack_distances`' vectorized path.
    Generic iterables (which may carry arbitrary hashable keys) buffer
    windows as plain lists for the dict-scan path; both produce the same
    estimate on integer traces.
    """
    sampler = WindowSampler(window, period, seed)
    if isinstance(line_trace, np.ndarray):
        sampler.push(line_trace)
        return sampler.finish()
    buffer: list = []
    for line in line_trace:
        buffer.append(line)
        if len(buffer) == sampler.window:
            sampler.complete(buffer)
            buffer = []
    if buffer:
        sampler.tail(buffer)
    return sampler.finish()


def sampled_stack_distances_stream(
    chunks: Iterable[np.ndarray | tuple[np.ndarray, np.ndarray]],
    *,
    window: int = 4096,
    period: int = 4,
    seed: int = 0,
    max_distances: int | None = None,
) -> SampledProfile:
    """Streaming twin of :func:`sampled_stack_distances` over ndarray chunks.

    Accepts an iterable of 1-D line-address arrays — or ``(addrs,
    writes)`` pairs as produced by the chunk generators
    (:func:`repro.trace.batch.chunk_arrays`,
    :func:`repro.kernels.traces.kernel_trace_chunks`) — and holds at most
    one window of references at a time, so full-scale traces never
    materialize. Chunk boundaries are invisible: the estimate is
    byte-identical to concatenating every chunk and calling
    :func:`sampled_stack_distances` on the result. ``max_distances``
    additionally bounds the kept sample via a :class:`Reservoir`.
    """
    sampler = WindowSampler(window, period, seed, max_distances=max_distances)
    for chunk in chunks:
        if isinstance(chunk, tuple):
            chunk = chunk[0]
        sampler.push(np.asarray(chunk))
    return sampler.finish()
