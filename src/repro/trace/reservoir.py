"""Reservoir sampling for long traces.

Exact stack-distance computation is O(N log N) in trace length; for the
longest instrumented-kernel traces that is the bottleneck of validation
runs. This module provides the standard tools for working from samples:

* :class:`Reservoir` — Vitter's algorithm R: a uniform fixed-size sample
  of an unbounded stream, single pass, O(1) per item.
* :func:`sampled_stack_distances` — estimate the stack-distance *hit-rate
  curve* from a systematic sample of reference windows: distances are
  computed exactly inside sampled windows (reuse beyond the window length
  is right-censored and reported as such). For the hit-rate regimes the
  engine cares about (working sets well below the window), the estimate
  converges to the exact curve; `tests/test_reservoir.py` quantifies the
  error on canonical streams.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

from repro.trace.stackdist import StackDistanceProfile, stack_distances


class Reservoir:
    """Uniform fixed-size sample of a stream (Vitter's algorithm R)."""

    def __init__(self, capacity: int, *, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._items: list = []
        self._seen = 0

    def offer(self, item) -> None:
        """Present one stream item to the sampler."""
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        j = int(self._rng.integers(0, self._seen))
        if j < self.capacity:
            self._items[j] = item

    def extend(self, items: Iterable) -> "Reservoir":
        for item in items:
            self.offer(item)
        return self

    @property
    def sample(self) -> list:
        return list(self._items)

    @property
    def seen(self) -> int:
        return self._seen

    def __len__(self) -> int:
        return len(self._items)


@dataclasses.dataclass(frozen=True)
class SampledProfile:
    """Stack-distance estimate from sampled windows.

    ``censored_fraction`` is the share of sampled references whose reuse
    distance exceeded the window (they may be hits in very large caches;
    the estimator counts them as misses, making `hit_rate` a *lower
    bound* above the window working set).
    """

    profile: StackDistanceProfile
    window: int
    n_windows: int
    censored_fraction: float

    def hit_rate(self, capacity_lines: int) -> float:
        return self.profile.hit_rate(capacity_lines)


def sampled_stack_distances(
    line_trace: Iterable[int] | np.ndarray,
    *,
    window: int = 4096,
    period: int = 4,
    seed: int = 0,
) -> SampledProfile:
    """Estimate the stack-distance curve from every ``period``-th window.

    The trace is cut into consecutive windows of ``window`` references;
    a deterministic systematic sample (offset seeded) of one-in-``period``
    windows is analyzed exactly. Cold references at window starts are
    censored (distance unknown beyond the window), tracked in
    ``censored_fraction``.

    ndarray traces are windowed by slicing — no per-reference Python
    buffering — and each sampled window goes down
    :func:`~repro.trace.stackdist.stack_distances`' vectorized path.
    """
    if window < 2:
        raise ValueError("window must be >= 2")
    if period < 1:
        raise ValueError("period must be >= 1")
    rng = np.random.default_rng(seed)
    offset = int(rng.integers(0, period))
    distances: list[np.ndarray] = []
    censored = 0
    total = 0
    n_windows = 0
    if isinstance(line_trace, np.ndarray):
        if line_trace.ndim != 1:
            raise ValueError("line trace array must be 1-D")
        n_full = line_trace.shape[0] // window
        selected = [
            line_trace[i * window : (i + 1) * window]
            for i in range(n_full)
            if i % period == offset
        ]
        tail = line_trace[n_full * window :]
        if tail.size and (n_full % period == offset or not selected):
            selected.append(tail)
        for chunk in selected:
            prof = stack_distances(chunk)
            distances.append(prof.distances)
            censored += prof.n_cold
            total += prof.n_references
            n_windows += 1
    else:
        buffer: list[int] = []
        index = 0
        for line in line_trace:
            buffer.append(line)
            if len(buffer) == window:
                if index % period == offset:
                    prof = stack_distances(buffer)
                    distances.append(prof.distances)
                    censored += prof.n_cold
                    total += prof.n_references
                    n_windows += 1
                buffer = []
                index += 1
        if buffer and (index % period == offset or n_windows == 0):
            prof = stack_distances(buffer)
            distances.append(prof.distances)
            censored += prof.n_cold
            total += prof.n_references
            n_windows += 1
    merged = (
        np.concatenate(distances) if distances else np.empty(0, dtype=np.int64)
    )
    return SampledProfile(
        profile=StackDistanceProfile(distances=merged),
        window=window,
        n_windows=n_windows,
        censored_fraction=censored / total if total else 0.0,
    )
