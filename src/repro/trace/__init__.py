"""Access-trace infrastructure: events, synthetic generators, stack distances."""

from repro.trace.batch import CHUNK, chunk_accesses, chunk_arrays, expand_lines
from repro.trace.events import Access, reads, to_line_trace, writes
from repro.trace.generator import (
    pointer_chase,
    pointer_chase_array,
    repeated_sweep,
    repeated_sweep_array,
    sequential,
    sequential_array,
    strided,
    strided_array,
    tiled_2d,
    tiled_2d_array,
    uniform_random,
    uniform_random_array,
)
from repro.trace.reservoir import (
    Reservoir,
    SampledProfile,
    sampled_stack_distances,
    sampled_stack_distances_stream,
)
from repro.trace.stackdist import StackDistanceProfile, stack_distances

__all__ = [
    "Access",
    "CHUNK",
    "Reservoir",
    "SampledProfile",
    "StackDistanceProfile",
    "chunk_accesses",
    "chunk_arrays",
    "expand_lines",
    "pointer_chase",
    "pointer_chase_array",
    "reads",
    "repeated_sweep",
    "repeated_sweep_array",
    "sampled_stack_distances",
    "sampled_stack_distances_stream",
    "sequential",
    "sequential_array",
    "stack_distances",
    "strided",
    "strided_array",
    "tiled_2d",
    "tiled_2d_array",
    "to_line_trace",
    "uniform_random",
    "uniform_random_array",
    "writes",
]
