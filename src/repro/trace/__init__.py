"""Access-trace infrastructure: events, synthetic generators, stack distances."""

from repro.trace.events import Access, reads, to_line_trace, writes
from repro.trace.generator import (
    pointer_chase,
    repeated_sweep,
    sequential,
    strided,
    tiled_2d,
    uniform_random,
)
from repro.trace.reservoir import Reservoir, SampledProfile, sampled_stack_distances
from repro.trace.stackdist import StackDistanceProfile, stack_distances

__all__ = [
    "Access",
    "Reservoir",
    "SampledProfile",
    "StackDistanceProfile",
    "pointer_chase",
    "reads",
    "repeated_sweep",
    "sampled_stack_distances",
    "sequential",
    "stack_distances",
    "strided",
    "tiled_2d",
    "to_line_trace",
    "uniform_random",
    "writes",
]
