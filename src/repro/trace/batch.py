"""Batched (ndarray) trace construction.

The scalar trace path yields one :class:`~repro.trace.events.Access` per
reference and expands it to ``(line_addr, is_write)`` tuples — clean, but
every reference costs several Python-object allocations before the
simulator even sees it. This module is the array half of the pipeline:
byte-granular address/size/write *arrays* are expanded to line-address
chunks entirely inside numpy, and the chunks feed
:meth:`repro.memory.hierarchy.Hierarchy.run_array` /
:meth:`~repro.memory.hierarchy.Hierarchy.run_batched` directly.

The expansion is exact: for every access, the lines touched are
``addr // line .. (addr + size - 1) // line`` in ascending order, matching
:func:`repro.memory.cacheline.lines_touched` element for element, so a
batched trace is a reordering-free reencoding of the scalar one.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.platforms.spec import LINE_BYTES
from repro.trace.events import Access

#: Default chunk length (references per ndarray handed to the simulator).
#: Large enough to amortize per-chunk overhead, small enough to stay
#: cache-friendly and keep telemetry spans responsive.
CHUNK = 1 << 16


def expand_lines(
    addrs: np.ndarray,
    sizes: np.ndarray | int,
    writes: np.ndarray | bool,
    line: int = LINE_BYTES,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand byte accesses into a (line_addrs, line_writes) pair.

    ``sizes`` and ``writes`` may be scalars applied to every access. An
    access spanning multiple lines contributes one entry per line, in
    ascending line order at the access's position in the stream — the
    exact order :func:`repro.trace.events.to_line_trace` produces.
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    if addrs.ndim != 1:
        raise ValueError("addrs must be 1-D")
    n = addrs.shape[0]
    sizes_arr = np.broadcast_to(np.asarray(sizes, dtype=np.int64), (n,))
    if n and int(sizes_arr.min()) <= 0:
        raise ValueError("sizes must be positive")
    writes_arr = np.broadcast_to(np.asarray(writes, dtype=bool), (n,))
    first = addrs // line
    last = (addrs + sizes_arr - 1) // line
    counts = last - first + 1
    if n == 0 or int(counts.max()) == 1:
        # Common case: word-granular accesses never straddle a line.
        return first, np.array(writes_arr, dtype=bool)
    total = int(counts.sum())
    expanded = np.repeat(first, counts)
    # Within each access, offsets 0..count-1 reconstruct the line run.
    starts = np.cumsum(counts) - counts
    expanded += np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    return expanded, np.repeat(writes_arr, counts)


def chunk_accesses(
    accesses: Iterable[Access],
    line: int = LINE_BYTES,
    chunk: int = CHUNK,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Adapt a scalar :class:`Access` stream to line-address chunks.

    The bridge for tracers without a native array emitter: buffers
    ``chunk`` accesses at a time and expands each buffer vectorized.
    Chunks may come out slightly longer than ``chunk`` when accesses
    straddle lines; order is preserved exactly.
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    buf_a: list[int] = []
    buf_s: list[int] = []
    buf_w: list[bool] = []
    for acc in accesses:
        buf_a.append(acc.addr)
        buf_s.append(acc.size)
        buf_w.append(acc.write)
        if len(buf_a) == chunk:
            yield expand_lines(
                np.array(buf_a, dtype=np.int64),
                np.array(buf_s, dtype=np.int64),
                np.array(buf_w, dtype=bool),
                line,
            )
            buf_a, buf_s, buf_w = [], [], []
    if buf_a:
        yield expand_lines(
            np.array(buf_a, dtype=np.int64),
            np.array(buf_s, dtype=np.int64),
            np.array(buf_w, dtype=bool),
            line,
        )


def chunk_arrays(
    addrs: np.ndarray,
    writes: np.ndarray,
    chunk: int = CHUNK,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Slice one long (line_addrs, writes) pair into simulator chunks."""
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    for i in range(0, len(addrs), chunk):
        yield addrs[i : i + chunk], writes[i : i + chunk]
