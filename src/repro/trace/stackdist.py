"""Exact LRU stack-distance (reuse-distance) computation.

The stack distance of a reference is the number of *distinct* lines
touched since the previous reference to the same line (infinite for cold
references). A fully associative LRU cache of C lines hits exactly the
references with stack distance < C, so the stack-distance histogram is the
bridge between traces and the analytic hit-rate model
(:mod:`repro.engine.hitrate`).

Implemented with a Fenwick (binary indexed) tree over last-access
timestamps: O(N log N) for a trace of N references.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np


class _Fenwick:
    """Prefix-sum tree over ``n`` slots."""

    def __init__(self, n: int) -> None:
        self._tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree = self._tree
        while i < len(tree):
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of slots [0, i)."""
        total = 0
        tree = self._tree
        while i > 0:
            total += int(tree[i])
            i -= i & (-i)
        return total


@dataclasses.dataclass
class StackDistanceProfile:
    """Histogram of stack distances for one trace.

    ``distances`` holds one entry per reference: the stack distance, with
    ``-1`` marking cold (first-touch) references.
    """

    distances: np.ndarray

    @property
    def n_references(self) -> int:
        return len(self.distances)

    @property
    def n_cold(self) -> int:
        return int(np.count_nonzero(self.distances < 0))

    def hit_rate(self, capacity_lines: int) -> float:
        """Hit rate of a fully associative LRU cache with that capacity."""
        if self.n_references == 0:
            return 0.0
        hits = np.count_nonzero(
            (self.distances >= 0) & (self.distances < capacity_lines)
        )
        return float(hits) / self.n_references

    def cdf(self, capacities: Iterable[int]) -> np.ndarray:
        """Hit rates for several capacities at once."""
        return np.array([self.hit_rate(c) for c in capacities])

    def histogram(self, bins: int = 32) -> tuple[np.ndarray, np.ndarray]:
        """Log-spaced histogram of finite distances (counts, edges)."""
        finite = self.distances[self.distances >= 0]
        if len(finite) == 0:
            return np.zeros(bins), np.ones(bins + 1)
        hi = max(2, int(finite.max()) + 1)
        edges = np.unique(
            np.round(np.logspace(0, np.log2(hi), bins + 1, base=2.0)).astype(np.int64)
        )
        counts, edges = np.histogram(finite, bins=edges)
        return counts, edges


def stack_distances(line_trace: Iterable[int]) -> StackDistanceProfile:
    """Compute per-reference LRU stack distances for a line-address trace."""
    lines = list(line_trace)
    n = len(lines)
    out = np.empty(n, dtype=np.int64)
    last_seen: dict[int, int] = {}
    tree = _Fenwick(n)
    for t, line in enumerate(lines):
        prev = last_seen.get(line)
        if prev is None:
            out[t] = -1
        else:
            # Distinct lines referenced in (prev, t): the count of "alive"
            # timestamps strictly after prev.
            out[t] = tree.prefix(t) - tree.prefix(prev + 1)
            tree.add(prev, -1)
        tree.add(t, 1)
        last_seen[line] = t
    return StackDistanceProfile(distances=out)
