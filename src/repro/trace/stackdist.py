"""Exact LRU stack-distance (reuse-distance) computation.

The stack distance of a reference is the number of *distinct* lines
touched since the previous reference to the same line (infinite for cold
references). A fully associative LRU cache of C lines hits exactly the
references with stack distance < C, so the stack-distance histogram is the
bridge between traces and the analytic hit-rate model
(:mod:`repro.engine.hitrate`).

Implemented with a Fenwick (binary indexed) tree over last-access
timestamps: O(N log N) for a trace of N references. Two input paths feed
one Fenwick loop:

* ndarray traces (the batched generators in :mod:`repro.trace.batch` /
  :mod:`repro.kernels.traces`) — previous-occurrence indices are computed
  fully vectorized, no ``list()`` round-trip;
* generic iterables — a dict scan builds the same indices (and keeps the
  historical behaviour that any hashable line key works).

The per-timestamp ``add(t, +1)`` of the textbook algorithm is replaced by
a closed-form preload of the all-ones tree (``tree[i] = i & -i``). That
is exact, not an approximation: a Fenwick node ``i`` only aggregates
positions ``<= i``, and ``prefix(i)`` only reads nodes ``<= i``, so the
+1 units preloaded at future timestamps are invisible to every query
issued before their time arrives; removals happen in the same order as
the incremental algorithm.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np


@dataclasses.dataclass
class StackDistanceProfile:
    """Histogram of stack distances for one trace.

    ``distances`` holds one entry per reference: the stack distance, with
    ``-1`` marking cold (first-touch) references.
    """

    distances: np.ndarray

    @property
    def n_references(self) -> int:
        return len(self.distances)

    @property
    def n_cold(self) -> int:
        return int(np.count_nonzero(self.distances < 0))

    def hit_rate(self, capacity_lines: int) -> float:
        """Hit rate of a fully associative LRU cache with that capacity."""
        if self.n_references == 0:
            return 0.0
        hits = np.count_nonzero(
            (self.distances >= 0) & (self.distances < capacity_lines)
        )
        return float(hits) / self.n_references

    def cdf(self, capacities: Iterable[int]) -> np.ndarray:
        """Hit rates for several capacities at once."""
        return np.array([self.hit_rate(c) for c in capacities])

    def histogram(self, bins: int = 32) -> tuple[np.ndarray, np.ndarray]:
        """Log-spaced histogram of finite distances (counts, edges)."""
        finite = self.distances[self.distances >= 0]
        if len(finite) == 0:
            return np.zeros(bins), np.ones(bins + 1)
        hi = max(2, int(finite.max()) + 1)
        edges = np.unique(
            np.round(np.logspace(0, np.log2(hi), bins + 1, base=2.0)).astype(np.int64)
        )
        counts, edges = np.histogram(finite, bins=edges)
        return counts, edges


def _prev_occurrence_vectorized(arr: np.ndarray) -> list[int]:
    """Previous-occurrence index per reference (-1 for first touch).

    Grouping by line via ``np.unique`` + stable argsort keeps each line's
    timestamps in trace order, so "the previous element of my group" is
    exactly the previous occurrence.
    """
    n = arr.shape[0]
    inv = np.unique(arr, return_inverse=True)[1]
    order = np.argsort(inv, kind="stable")
    inv_sorted = inv[order]
    prev_sorted = np.empty(n, dtype=np.int64)
    prev_sorted[0] = -1
    prev_sorted[1:] = np.where(
        inv_sorted[1:] == inv_sorted[:-1], order[:-1], -1
    )
    prev = np.empty(n, dtype=np.int64)
    prev[order] = prev_sorted
    return prev.tolist()


def _prev_occurrence_scan(lines: list) -> list[int]:
    """Dict-scan fallback for arbitrary hashable line keys."""
    last_seen: dict = {}
    prev = []
    for t, line in enumerate(lines):
        prev.append(last_seen.get(line, -1))
        last_seen[line] = t
    return prev


def _fenwick_distances(prev: list[int], n: int) -> np.ndarray:
    """Stack distances from previous-occurrence indices.

    The tree starts as the closed-form all-ones Fenwick (every timestamp
    alive); each reuse removes its previous occurrence after querying the
    count of alive timestamps strictly between the pair. A plain Python
    list beats an int64 ndarray here: the loop does scalar index
    arithmetic, where numpy scalar boxing costs more than it saves.
    """
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    idx = np.arange(1, n + 1, dtype=np.int64)
    tree = np.concatenate((np.zeros(1, dtype=np.int64), idx & -idx)).tolist()
    size = n + 1
    for t in range(n):
        p = prev[t]
        if p < 0:
            out[t] = -1
            continue
        # Distinct lines referenced in (p, t): alive timestamps after p.
        total = 0
        i = t
        while i > 0:
            total += tree[i]
            i -= i & -i
        i = p + 1
        while i > 0:
            total -= tree[i]
            i -= i & -i
        out[t] = total
        i = p + 1
        while i < size:
            tree[i] -= 1
            i += i & -i
    return out


def stack_distances(line_trace: Iterable[int] | np.ndarray) -> StackDistanceProfile:
    """Compute per-reference LRU stack distances for a line-address trace.

    Accepts any iterable of hashable line keys, or a 1-D ndarray of line
    addresses (the batched fast path — no ``list()`` round-trip, with the
    previous-occurrence pass fully vectorized).
    """
    if isinstance(line_trace, np.ndarray):
        arr = line_trace
        if arr.ndim != 1:
            raise ValueError("line trace array must be 1-D")
        n = arr.shape[0]
        prev = _prev_occurrence_vectorized(arr) if n else []
    else:
        lines = list(line_trace)
        n = len(lines)
        prev = _prev_occurrence_scan(lines)
    return StackDistanceProfile(distances=_fenwick_distances(prev, n))
