"""Hardware specification dataclasses (paper Table 3).

A :class:`MachineSpec` describes one evaluation platform: its compute
throughput ceilings, the on-chip cache levels, the on-package memory (OPM)
stage, and the off-package DRAM. Numbers are theoretical spec-sheet values,
exactly as the paper's Table 3 records them; the execution-time model in
:mod:`repro.engine` derates them with calibrated efficiency factors.

Capacities are bytes, bandwidths GB/s (1e9 bytes/s), latencies nanoseconds.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Cache line size used throughout (both platforms use 64-byte lines).
LINE_BYTES = 64

#: Word size of every kernel in the study (double precision).
WORD_BYTES = 8


@dataclasses.dataclass(frozen=True)
class EnergyCoefficients:
    """Per-access dynamic energy of one memory level, in picojoules.

    The four line items mirror the trace simulator's per-level counters
    (:class:`repro.memory.stats.LevelStats`), so a simulated run prices
    out to joules level by level:

    * ``hit_pj`` — servicing one line hit at this level;
    * ``miss_pj`` — one probe that missed (tag check, and for a
      direct-mapped memory-side cache the conflict-inflated traffic of
      reading the aliased line's tag/data);
    * ``fill_pj`` — installing one line from below;
    * ``writeback_pj`` — pushing one dirty line out of this level.

    All values are per cache line (64 bytes on both platforms).
    """

    hit_pj: float
    miss_pj: float
    fill_pj: float
    writeback_pj: float

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ValueError(
                    f"{field.name} = {value}: energy coefficients "
                    "must be non-negative"
                )

    def price(
        self, *, hits: int = 0, misses: int = 0, fills: int = 0,
        writebacks: int = 0,
    ) -> float:
        """Joules for a counter bundle (1 pJ = 1e-12 J)."""
        return 1e-12 * (
            hits * self.hit_pj
            + misses * self.miss_pj
            + fills * self.fill_pj
            + writebacks * self.writeback_pj
        )


@dataclasses.dataclass(frozen=True)
class MemLevelSpec:
    """One level of the memory hierarchy.

    Parameters
    ----------
    name:
        Human-readable level name ("L1", "L2", "L3", "eDRAM", "MCDRAM",
        "DDR3", "DDR4").
    capacity:
        Total capacity in bytes visible to one application. ``None`` marks
        a backing store treated as unbounded (DRAM).
    bandwidth:
        Peak sustainable bandwidth in GB/s, aggregated over the chip.
    latency:
        Unloaded access latency in nanoseconds.
    ways:
        Set associativity. ``1`` is direct-mapped, ``None`` means the level
        is modelled as fully associative (the analytic engine's default for
        on-chip SRAM caches).
    line:
        Cache line / transfer granularity in bytes.
    shared:
        Whether the level is shared by all cores (True) or per-core
        (False). Per-core levels expose ``capacity`` already multiplied by
        the core count; ``per_core_capacity`` recovers the slice.
    energy:
        Per-access dynamic energy coefficients (pJ per line), consumed
        by :mod:`repro.power.ledger`. ``None`` means the platform has
        not declared them; pricing such a level raises instead of
        silently assuming a default.
    """

    name: str
    capacity: int | None
    bandwidth: float
    latency: float
    ways: int | None = None
    line: int = LINE_BYTES
    shared: bool = True
    energy: EnergyCoefficients | None = None

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")
        if self.ways is not None and self.ways < 1:
            raise ValueError(f"{self.name}: ways must be >= 1")
        if self.line <= 0 or self.line & (self.line - 1):
            raise ValueError(f"{self.name}: line must be a power of two")

    @property
    def is_unbounded(self) -> bool:
        """True for backing DRAM with no modelled capacity limit."""
        return self.capacity is None

    def scaled(self, *, capacity_x: float = 1.0, bandwidth_x: float = 1.0) -> "MemLevelSpec":
        """Return a what-if copy with scaled capacity/bandwidth (Fig 30)."""
        cap = self.capacity
        if cap is not None:
            cap = max(self.line, int(round(cap * capacity_x)))
        return dataclasses.replace(
            self, capacity=cap, bandwidth=self.bandwidth * bandwidth_x
        )


@dataclasses.dataclass(frozen=True)
class OpmSpec(MemLevelSpec):
    """On-package memory level (eDRAM L4 or MCDRAM).

    ``kind`` selects the structural model: ``"victim-cache"`` (eDRAM on
    Broadwell — filled by L3 evictions, tags held in L3) or
    ``"memory-side"`` (MCDRAM on KNL — direct-mapped memory-side cache /
    addressable flat memory, tags held locally).
    """

    kind: str = "victim-cache"
    #: Extra static power in watts drawn while the OPM is powered.
    static_power_w: float = 0.0
    #: Whether the part allows physically powering the OPM down (eDRAM can
    #: be disabled in BIOS; MCDRAM cannot — paper Section 5.2).
    can_power_off: bool = True
    #: Activity power in watts at full bandwidth utilization, on top of
    #: ``static_power_w`` (the :mod:`repro.power` package-domain term).
    active_power_w: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kind not in ("victim-cache", "memory-side"):
            raise ValueError(f"unknown OPM kind: {self.kind!r}")


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """A complete evaluation platform (one row of paper Table 3)."""

    name: str
    arch: str
    cores: int
    frequency_ghz: float
    sp_peak_gflops: float
    dp_peak_gflops: float
    caches: tuple[MemLevelSpec, ...]
    opm: OpmSpec | None
    dram: MemLevelSpec
    #: Baseline package power (watts) with all cores active but idle
    #: datapaths; used by :mod:`repro.power`.
    base_package_power_w: float = 15.0
    #: Peak dynamic package power at full FLOP throughput (watts).
    max_dynamic_power_w: float = 40.0
    #: DRAM-domain power coefficients: standby watts plus watts per GB/s
    #: of DRAM traffic. ``None`` means undeclared — the power model
    #: refuses to price the platform rather than guessing defaults.
    dram_standby_w: float | None = None
    dram_w_per_gbs: float | None = None

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.dp_peak_gflops <= 0 or self.sp_peak_gflops <= 0:
            raise ValueError("peak throughput must be positive")
        if not self.caches:
            raise ValueError("at least one on-chip cache level required")
        caps = [c.capacity for c in self.caches]
        if any(c is None for c in caps):
            raise ValueError("on-chip caches must have finite capacity")
        if not self.dram.is_unbounded and self.dram.capacity is None:
            raise ValueError("dram capacity misconfigured")

    @property
    def llc(self) -> MemLevelSpec:
        """The last on-chip cache level (L3 on Broadwell, L2 on KNL)."""
        return self.caches[-1]

    @property
    def has_opm(self) -> bool:
        return self.opm is not None

    def levels(self, include_opm: bool = True) -> tuple[MemLevelSpec, ...]:
        """All hierarchy levels from closest to farthest from the cores."""
        out: list[MemLevelSpec] = list(self.caches)
        if include_opm and self.opm is not None:
            out.append(self.opm)
        out.append(self.dram)
        return tuple(out)

    def with_opm(self, opm: OpmSpec | None) -> "MachineSpec":
        """Return a copy with a replaced (or removed) OPM stage."""
        return dataclasses.replace(self, opm=opm)

    def describe(self) -> str:
        """Multi-line human-readable description (Table 3 row)."""
        lines = [
            f"{self.name} ({self.arch}): {self.cores} cores @ "
            f"{self.frequency_ghz} GHz, "
            f"SP {self.sp_peak_gflops:.1f} / DP {self.dp_peak_gflops:.1f} GFlop/s",
        ]
        for lvl in self.levels():
            cap = "unbounded" if lvl.capacity is None else _fmt_bytes(lvl.capacity)
            lines.append(
                f"  {lvl.name:<8} {cap:>10}  {lvl.bandwidth:7.1f} GB/s  "
                f"{lvl.latency:6.1f} ns"
            )
        return "\n".join(lines)


def _fmt_bytes(n: int) -> str:
    """Format a byte count with binary units ("128.0 MiB")."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def total_capacity(levels: Sequence[MemLevelSpec]) -> int:
    """Sum of finite capacities across ``levels`` (bytes)."""
    return sum(lvl.capacity for lvl in levels if lvl.capacity is not None)
