"""Intel Core i7-5775C (Broadwell) platform model — paper Table 3, row 1.

4 cores at 3.7 GHz, 473.6 SP / 236.8 DP GFlop/s, DDR3-2133 (16 GB at
34.1 GB/s) and a 128 MB eDRAM L4 victim cache at 102.4 GB/s behind a 6 MB
on-chip L3. eDRAM tags live in the L3 (paper Section 2.1), so the eDRAM
behaves as a CPU-side non-inclusive victim cache with latency *below* DDR.
"""

from __future__ import annotations

from repro.platforms.spec import (
    GIB,
    KIB,
    MIB,
    EnergyCoefficients,
    MachineSpec,
    MemLevelSpec,
    OpmSpec,
)
from repro.platforms.tuning import EdramMode

#: eDRAM average extra power when enabled (paper Section 5.2: +5.6 W).
EDRAM_STATIC_POWER_W = 1.0  # OPIO interface budget: "104 GB/s at one watt"

#: eDRAM activity power at full bandwidth utilization.
EDRAM_ACTIVE_W = 5.0

#: DRAM domain coefficients (standby watts, watts per GB/s of traffic).
DRAM_STANDBY_W = 1.8
DRAM_W_PER_GBS = 0.09

#: Per-line dynamic energy, in pJ per 64-byte line. SRAM levels scale
#: with distance from the core; eDRAM sits between SRAM and DDR; DDR3
#: accesses dominated by the off-package I/O energy (~20 pJ/bit row
#: energy amortized per line).
L1_ENERGY = EnergyCoefficients(hit_pj=15.0, miss_pj=4.0, fill_pj=20.0, writeback_pj=20.0)
L2_ENERGY = EnergyCoefficients(hit_pj=45.0, miss_pj=10.0, fill_pj=55.0, writeback_pj=55.0)
L3_ENERGY = EnergyCoefficients(hit_pj=120.0, miss_pj=25.0, fill_pj=140.0, writeback_pj=140.0)
EDRAM_ENERGY = EnergyCoefficients(
    hit_pj=450.0, miss_pj=60.0, fill_pj=500.0, writeback_pj=500.0
)
DDR3_ENERGY = EnergyCoefficients(
    hit_pj=2100.0, miss_pj=0.0, fill_pj=2100.0, writeback_pj=2300.0
)

#: Paper Table 3 figures.
CORES = 4
FREQ_GHZ = 3.7
SP_PEAK = 473.6
DP_PEAK = 236.8
DDR_BW = 34.1
EDRAM_BW = 102.4
EDRAM_CAPACITY = 128 * MIB
L3_CAPACITY = 6 * MIB


def edram_spec(
    *, capacity_x: float = 1.0, bandwidth_x: float = 1.0
) -> OpmSpec:
    """The eDRAM L4 level, optionally rescaled for Fig 30 what-ifs."""
    base = OpmSpec(
        name="eDRAM",
        capacity=EDRAM_CAPACITY,
        bandwidth=EDRAM_BW,
        latency=42.0,  # below DDR3 (~60 ns): paper Section 2.3 (b)
        ways=16,
        energy=EDRAM_ENERGY,
        kind="victim-cache",
        static_power_w=EDRAM_STATIC_POWER_W,
        can_power_off=True,
        active_power_w=EDRAM_ACTIVE_W,
    )
    if capacity_x != 1.0 or bandwidth_x != 1.0:
        scaled = base.scaled(capacity_x=capacity_x, bandwidth_x=bandwidth_x)
        base = OpmSpec(
            name=base.name,
            capacity=scaled.capacity,
            bandwidth=scaled.bandwidth,
            latency=base.latency,
            ways=base.ways,
            energy=base.energy,
            kind=base.kind,
            static_power_w=base.static_power_w,
            can_power_off=base.can_power_off,
            active_power_w=base.active_power_w,
        )
    return base


def broadwell(
    edram: bool | EdramMode = True,
    *,
    edram_capacity_x: float = 1.0,
    edram_bandwidth_x: float = 1.0,
) -> MachineSpec:
    """Build the Broadwell machine model.

    Parameters
    ----------
    edram:
        ``True``/``EdramMode.ON`` keeps the 128 MB L4; ``False``/
        ``EdramMode.OFF`` models the BIOS switch physically disabling it
        (no static power either — paper Section 5.2).
    edram_capacity_x, edram_bandwidth_x:
        What-if scale factors for the Fig 30 hardware-tuning study.
    """
    if isinstance(edram, EdramMode):
        edram = edram.enabled
    opm = (
        edram_spec(capacity_x=edram_capacity_x, bandwidth_x=edram_bandwidth_x)
        if edram
        else None
    )
    spec = MachineSpec(
        name="i7-5775C",
        arch="Broadwell",
        cores=CORES,
        frequency_ghz=FREQ_GHZ,
        sp_peak_gflops=SP_PEAK,
        dp_peak_gflops=DP_PEAK,
        caches=(
            MemLevelSpec(
                name="L1",
                capacity=CORES * 32 * KIB,
                bandwidth=1420.0,
                latency=1.1,
                ways=8,
                shared=False,
                energy=L1_ENERGY,
            ),
            MemLevelSpec(
                name="L2",
                capacity=CORES * 256 * KIB,
                bandwidth=700.0,
                latency=3.2,
                ways=8,
                shared=False,
                energy=L2_ENERGY,
            ),
            MemLevelSpec(
                name="L3",
                capacity=L3_CAPACITY,
                bandwidth=220.0,
                latency=12.0,
                ways=12,
                shared=True,
                energy=L3_ENERGY,
            ),
        ),
        opm=opm,
        dram=MemLevelSpec(
            name="DDR3",
            capacity=16 * GIB,
            bandwidth=DDR_BW,
            latency=60.0,
            ways=None,
            energy=DDR3_ENERGY,
        ),
        base_package_power_w=14.0,
        max_dynamic_power_w=51.0,
        dram_standby_w=DRAM_STANDBY_W,
        dram_w_per_gbs=DRAM_W_PER_GBS,
    )
    from repro import telemetry

    telemetry.note_platform(spec)
    return spec
