"""On-package-memory tuning options (paper Table 1).

Broadwell's eDRAM is a BIOS switch (off / on). KNL's MCDRAM offers four
effective configurations: not used ("w/o MCDRAM", i.e. DDR preferred),
cache mode (direct-mapped memory-side LLC), flat mode (addressable NUMA
node, allocated with ``numactl -p``), and hybrid mode (part cache, part
flat; the paper evaluates the 50/50 split, 8 GB + 8 GB).
"""

from __future__ import annotations

import enum


class EdramMode(enum.Enum):
    """eDRAM BIOS switch on Broadwell (Table 1, upper half)."""

    OFF = "off"
    ON = "on"

    @property
    def enabled(self) -> bool:
        return self is EdramMode.ON

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return {"off": "w/o eDRAM", "on": "w/ eDRAM"}[self.value]


class McdramMode(enum.Enum):
    """MCDRAM configuration on KNL (Table 1, lower half).

    The hybrid mode comes in the two splits the BIOS offers (paper
    Section 2.2 (iii): "25% or 50% of MCDRAM can be configured as LLC");
    the paper evaluates the 50/50 split, which is what ``HYBRID`` means
    throughout — ``HYBRID25`` (4 GB cache + 12 GB flat) is provided for
    what-if studies.
    """

    OFF = "off"  # MCDRAM not used: allocations go to DDR
    CACHE = "cache"  # 16 GB direct-mapped memory-side cache
    FLAT = "flat"  # 16 GB addressable memory, numactl-preferred
    HYBRID = "hybrid"  # 8 GB cache + 8 GB flat (the evaluated split)
    HYBRID25 = "hybrid25"  # 4 GB cache + 12 GB flat

    @property
    def cache_fraction(self) -> float:
        """Fraction of MCDRAM capacity operating as cache."""
        return {
            "off": 0.0,
            "cache": 1.0,
            "flat": 0.0,
            "hybrid": 0.5,
            "hybrid25": 0.25,
        }[self.value]

    @property
    def flat_fraction(self) -> float:
        """Fraction of MCDRAM capacity exposed as addressable memory."""
        return {
            "off": 0.0,
            "cache": 0.0,
            "flat": 1.0,
            "hybrid": 0.5,
            "hybrid25": 0.75,
        }[self.value]

    @property
    def uses_mcdram(self) -> bool:
        return self is not McdramMode.OFF

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return {
            "off": "w/o MCDRAM (DDR)",
            "cache": "MCDRAM cache mode",
            "flat": "MCDRAM flat mode",
            "hybrid": "MCDRAM hybrid mode",
            "hybrid25": "MCDRAM hybrid mode (25/75)",
        }[self.value]


#: Sweep order used by the KNL figures (DDR, flat, cache, hybrid).
ALL_MCDRAM_MODES: tuple[McdramMode, ...] = (
    McdramMode.OFF,
    McdramMode.FLAT,
    McdramMode.CACHE,
    McdramMode.HYBRID,
)

#: Sweep order used by the Broadwell figures.
ALL_EDRAM_MODES: tuple[EdramMode, ...] = (EdramMode.OFF, EdramMode.ON)
