"""Intel Xeon Phi 7210 (Knights Landing) platform model — paper Table 3, row 2.

64 cores at 1.5 GHz (3072 DP / 6144 SP GFlop/s — the paper's Table 3 prints
the SP/DP columns swapped; we use the physically consistent assignment:
64 cores x 1.5 GHz x 32 DP flops/cycle = 3072 DP GFlop/s), DDR4-2133
(96 GB at 102 GB/s) and 8 x 2 GB MCDRAM modules at 490 GB/s aggregate.
The LLC is the 32 MB of distributed on-die L2; MCDRAM is a *memory-side*
stage whose unloaded latency is higher than DDR (paper Section 2.2), so
it only wins when bandwidth demand is high.
"""

from __future__ import annotations

from repro.platforms.spec import (
    GIB,
    KIB,
    MIB,
    EnergyCoefficients,
    MachineSpec,
    MemLevelSpec,
    OpmSpec,
)
from repro.platforms.tuning import McdramMode

#: MCDRAM cannot be powered down; it draws static power in every mode
#: (paper Section 5.2: flat mode adds ~9.8 W average across kernels).
MCDRAM_STATIC_POWER_W = 4.0

#: MCDRAM activity power at full bandwidth utilization.
MCDRAM_ACTIVE_W = 12.0

#: DRAM domain coefficients (standby watts, watts per GB/s of traffic).
DRAM_STANDBY_W = 6.0
DRAM_W_PER_GBS = 0.06

#: Per-line dynamic energy (pJ per 64-byte line). MCDRAM's stacked DRAM
#: moves a line for roughly a third of DDR4's per-bit energy, but its
#: direct-mapped cache mode pays a real miss cost: every conflict probe
#: reads the aliased line's tag/data before going to DDR — the
#: conflict-inflated traffic of paper Section 2.2 (i).
L1_ENERGY = EnergyCoefficients(hit_pj=18.0, miss_pj=5.0, fill_pj=24.0, writeback_pj=24.0)
L2_ENERGY = EnergyCoefficients(hit_pj=80.0, miss_pj=18.0, fill_pj=95.0, writeback_pj=95.0)
MCDRAM_ENERGY = EnergyCoefficients(
    hit_pj=750.0, miss_pj=250.0, fill_pj=800.0, writeback_pj=800.0
)
DDR4_ENERGY = EnergyCoefficients(
    hit_pj=1900.0, miss_pj=0.0, fill_pj=1900.0, writeback_pj=2100.0
)

#: Paper Table 3 figures (SP/DP corrected; see module docstring).
CORES = 64
FREQ_GHZ = 1.5
SP_PEAK = 6144.0
DP_PEAK = 3072.0
DDR_BW = 102.0
MCDRAM_BW = 490.0
MCDRAM_CAPACITY = 16 * GIB
L2_CAPACITY = 32 * MIB


def mcdram_spec() -> OpmSpec:
    """The MCDRAM stage (mode-independent physical characteristics)."""
    return OpmSpec(
        name="MCDRAM",
        capacity=MCDRAM_CAPACITY,
        bandwidth=MCDRAM_BW,
        # Above DDR4 (~130 ns) at low load — paper Sections 2.2 / 4.2.2.
        latency=155.0,
        ways=1,  # direct-mapped in cache mode (paper Section 2.2 (i))
        energy=MCDRAM_ENERGY,
        kind="memory-side",
        static_power_w=MCDRAM_STATIC_POWER_W,
        can_power_off=False,
        active_power_w=MCDRAM_ACTIVE_W,
    )


def knl(mode: McdramMode = McdramMode.CACHE) -> MachineSpec:
    """Build the KNL machine model.

    The MCDRAM stage is always physically present (it cannot be disabled);
    ``mode`` is carried by the run configuration, not the spec — use
    :class:`repro.memory.mcdram.McdramConfig` to interpret it. The spec
    returned here always includes the OPM level; ``McdramMode.OFF`` runs
    simply never allocate into or cache through it.
    """
    if not isinstance(mode, McdramMode):
        raise TypeError(f"mode must be a McdramMode, got {type(mode).__name__}")
    spec = MachineSpec(
        name="Xeon Phi 7210",
        arch="Knights Landing",
        cores=CORES,
        frequency_ghz=FREQ_GHZ,
        sp_peak_gflops=SP_PEAK,
        dp_peak_gflops=DP_PEAK,
        caches=(
            MemLevelSpec(
                name="L1",
                capacity=CORES * 32 * KIB,
                bandwidth=6000.0,
                latency=2.0,
                ways=8,
                shared=False,
                energy=L1_ENERGY,
            ),
            # 1 MB per two-core tile, 32 MB chip-wide: the KNL LLC.
            MemLevelSpec(
                name="L2",
                capacity=L2_CAPACITY,
                bandwidth=1200.0,
                latency=16.0,
                ways=16,
                shared=False,
                energy=L2_ENERGY,
            ),
        ),
        opm=mcdram_spec(),
        dram=MemLevelSpec(
            name="DDR4",
            capacity=96 * GIB,
            bandwidth=DDR_BW,
            latency=130.0,
            ways=None,
            energy=DDR4_ENERGY,
        ),
        base_package_power_w=70.0,
        max_dynamic_power_w=145.0,
        dram_standby_w=DRAM_STANDBY_W,
        dram_w_per_gbs=DRAM_W_PER_GBS,
    )
    from repro import telemetry

    telemetry.note_platform(spec)
    return spec
