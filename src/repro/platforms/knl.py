"""Intel Xeon Phi 7210 (Knights Landing) platform model — paper Table 3, row 2.

64 cores at 1.5 GHz (3072 DP / 6144 SP GFlop/s — the paper's Table 3 prints
the SP/DP columns swapped; we use the physically consistent assignment:
64 cores x 1.5 GHz x 32 DP flops/cycle = 3072 DP GFlop/s), DDR4-2133
(96 GB at 102 GB/s) and 8 x 2 GB MCDRAM modules at 490 GB/s aggregate.
The LLC is the 32 MB of distributed on-die L2; MCDRAM is a *memory-side*
stage whose unloaded latency is higher than DDR (paper Section 2.2), so
it only wins when bandwidth demand is high.
"""

from __future__ import annotations

from repro.platforms.spec import GIB, KIB, MIB, MachineSpec, MemLevelSpec, OpmSpec
from repro.platforms.tuning import McdramMode

#: MCDRAM cannot be powered down; it draws static power in every mode
#: (paper Section 5.2: flat mode adds ~9.8 W average across kernels).
MCDRAM_STATIC_POWER_W = 4.0

#: Paper Table 3 figures (SP/DP corrected; see module docstring).
CORES = 64
FREQ_GHZ = 1.5
SP_PEAK = 6144.0
DP_PEAK = 3072.0
DDR_BW = 102.0
MCDRAM_BW = 490.0
MCDRAM_CAPACITY = 16 * GIB
L2_CAPACITY = 32 * MIB


def mcdram_spec() -> OpmSpec:
    """The MCDRAM stage (mode-independent physical characteristics)."""
    return OpmSpec(
        name="MCDRAM",
        capacity=MCDRAM_CAPACITY,
        bandwidth=MCDRAM_BW,
        # Above DDR4 (~130 ns) at low load — paper Sections 2.2 / 4.2.2.
        latency=155.0,
        ways=1,  # direct-mapped in cache mode (paper Section 2.2 (i))
        kind="memory-side",
        static_power_w=MCDRAM_STATIC_POWER_W,
        can_power_off=False,
    )


def knl(mode: McdramMode = McdramMode.CACHE) -> MachineSpec:
    """Build the KNL machine model.

    The MCDRAM stage is always physically present (it cannot be disabled);
    ``mode`` is carried by the run configuration, not the spec — use
    :class:`repro.memory.mcdram.McdramConfig` to interpret it. The spec
    returned here always includes the OPM level; ``McdramMode.OFF`` runs
    simply never allocate into or cache through it.
    """
    if not isinstance(mode, McdramMode):
        raise TypeError(f"mode must be a McdramMode, got {type(mode).__name__}")
    spec = MachineSpec(
        name="Xeon Phi 7210",
        arch="Knights Landing",
        cores=CORES,
        frequency_ghz=FREQ_GHZ,
        sp_peak_gflops=SP_PEAK,
        dp_peak_gflops=DP_PEAK,
        caches=(
            MemLevelSpec(
                name="L1",
                capacity=CORES * 32 * KIB,
                bandwidth=6000.0,
                latency=2.0,
                ways=8,
                shared=False,
            ),
            # 1 MB per two-core tile, 32 MB chip-wide: the KNL LLC.
            MemLevelSpec(
                name="L2",
                capacity=L2_CAPACITY,
                bandwidth=1200.0,
                latency=16.0,
                ways=16,
                shared=False,
            ),
        ),
        opm=mcdram_spec(),
        dram=MemLevelSpec(
            name="DDR4",
            capacity=96 * GIB,
            bandwidth=DDR_BW,
            latency=130.0,
            ways=None,
        ),
        base_package_power_w=70.0,
        max_dynamic_power_w=145.0,
    )
    from repro import telemetry

    telemetry.note_platform(spec)
    return spec
