"""Evaluation platforms (paper Tables 1 and 3).

Public entry points:

* :func:`broadwell` — the eDRAM-equipped Core i7-5775C.
* :func:`knl` — the MCDRAM-equipped Xeon Phi 7210.
* :class:`EdramMode` / :class:`McdramMode` — OPM tuning options (Table 1).
* :class:`MachineSpec` and friends — the spec dataclasses.
"""

from repro.platforms.broadwell import broadwell, edram_spec
from repro.platforms.cluster import ClusterMode, apply_cluster_mode
from repro.platforms.knl import knl, mcdram_spec
from repro.platforms.skylake import skylake, skylake_edram_spec
from repro.platforms.spec import (
    GIB,
    KIB,
    LINE_BYTES,
    MIB,
    WORD_BYTES,
    MachineSpec,
    MemLevelSpec,
    OpmSpec,
    total_capacity,
)
from repro.platforms.tuning import (
    ALL_EDRAM_MODES,
    ALL_MCDRAM_MODES,
    EdramMode,
    McdramMode,
)

__all__ = [
    "ALL_EDRAM_MODES",
    "ClusterMode",
    "apply_cluster_mode",
    "ALL_MCDRAM_MODES",
    "EdramMode",
    "GIB",
    "KIB",
    "LINE_BYTES",
    "MIB",
    "MachineSpec",
    "McdramMode",
    "MemLevelSpec",
    "OpmSpec",
    "WORD_BYTES",
    "broadwell",
    "edram_spec",
    "knl",
    "mcdram_spec",
    "skylake",
    "skylake_edram_spec",
    "total_capacity",
]
