"""Intel Skylake with memory-side eDRAM — the paper's Section 2.1 contrast.

Haswell/Broadwell place the eDRAM as a *CPU-side victim cache* whose tags
live in L3; Skylake moved it "to the position upon DRAM controllers ...
more like a memory-side buffer rather than a cache" (paper Section 2.1).
The paper evaluates only Broadwell (the one part whose eDRAM has a BIOS
switch) but repeatedly contrasts the two designs, so this module provides
the Skylake-shaped machine for the cpu-side-vs-memory-side design study
(`experiments/ext_edram_placement`).

Spec basis: Core i7-6770HQ-class part — 4 cores at 3.5 GHz, 64 MB eDRAM,
DDR4-2133. The eDRAM is modelled with ``kind="memory-side"`` and, unlike
MCDRAM, it acts purely as a DRAM cache (no flat/hybrid modes).
"""

from __future__ import annotations

from repro.platforms.spec import (
    GIB,
    KIB,
    MIB,
    EnergyCoefficients,
    MachineSpec,
    MemLevelSpec,
    OpmSpec,
)

#: DRAM domain coefficients. Declared explicitly: before the power model
#: required them, Skylake silently inherited Broadwell-ish defaults.
DRAM_STANDBY_W = 1.6
DRAM_W_PER_GBS = 0.08

#: eDRAM activity power at full bandwidth utilization (same OPIO
#: generation as Broadwell's part).
EDRAM_ACTIVE_W = 5.0

#: Per-line dynamic energy (pJ per 64-byte line).
L1_ENERGY = EnergyCoefficients(hit_pj=14.0, miss_pj=4.0, fill_pj=19.0, writeback_pj=19.0)
L2_ENERGY = EnergyCoefficients(hit_pj=42.0, miss_pj=9.0, fill_pj=52.0, writeback_pj=52.0)
L3_ENERGY = EnergyCoefficients(hit_pj=115.0, miss_pj=24.0, fill_pj=135.0, writeback_pj=135.0)
EDRAM_ENERGY = EnergyCoefficients(
    hit_pj=470.0, miss_pj=65.0, fill_pj=520.0, writeback_pj=520.0
)
DDR4_ENERGY = EnergyCoefficients(
    hit_pj=1750.0, miss_pj=0.0, fill_pj=1750.0, writeback_pj=1950.0
)

CORES = 4
FREQ_GHZ = 3.5
SP_PEAK = 448.0
DP_PEAK = 224.0
DDR_BW = 34.1
EDRAM_BW = 102.4
EDRAM_CAPACITY = 64 * MIB


def skylake_edram_spec() -> OpmSpec:
    """Skylake's memory-side eDRAM: a DRAM-side buffer.

    Being behind the memory controller, it caches DRAM traffic for *all*
    agents (the Section 2.1 advantage over Broadwell for e.g. PCIe
    devices) but no longer enjoys the CPU-side latency edge: its load
    latency sits at DDR level rather than below it.
    """
    return OpmSpec(
        name="eDRAM-ms",
        capacity=EDRAM_CAPACITY,
        bandwidth=EDRAM_BW,
        latency=58.0,  # ~DDR4 latency: memory-side placement
        ways=16,
        energy=EDRAM_ENERGY,
        kind="memory-side",
        static_power_w=1.0,
        can_power_off=True,
        active_power_w=EDRAM_ACTIVE_W,
    )


def skylake(edram: bool = True) -> MachineSpec:
    """Build the Skylake machine model (memory-side eDRAM variant)."""
    return MachineSpec(
        name="i7-6770HQ",
        arch="Skylake",
        cores=CORES,
        frequency_ghz=FREQ_GHZ,
        sp_peak_gflops=SP_PEAK,
        dp_peak_gflops=DP_PEAK,
        caches=(
            MemLevelSpec(
                name="L1",
                capacity=CORES * 32 * KIB,
                bandwidth=1500.0,
                latency=1.1,
                ways=8,
                shared=False,
                energy=L1_ENERGY,
            ),
            MemLevelSpec(
                name="L2",
                capacity=CORES * 256 * KIB,
                bandwidth=750.0,
                latency=3.0,
                ways=4,
                shared=False,
                energy=L2_ENERGY,
            ),
            MemLevelSpec(
                name="L3",
                capacity=6 * MIB,
                bandwidth=230.0,
                latency=11.0,
                ways=12,
                shared=True,
                energy=L3_ENERGY,
            ),
        ),
        opm=skylake_edram_spec() if edram else None,
        dram=MemLevelSpec(
            name="DDR4",
            capacity=32 * GIB,
            bandwidth=DDR_BW,
            latency=58.0,
            ways=None,
            energy=DDR4_ENERGY,
        ),
        base_package_power_w=13.0,
        max_dynamic_power_w=45.0,
        dram_standby_w=DRAM_STANDBY_W,
        dram_w_per_gbs=DRAM_W_PER_GBS,
    )
