"""KNL on-die cluster modes (all-to-all / quadrant / SNC-4).

The paper runs every KNL experiment in **quadrant** mode, noting it "is
the default mode ... normally achieves the optimal performance without
explicit NUMA complexity" (Section 3.3). KNL's BIOS also offers
all-to-all (no tag-directory affinity — longest mesh routes) and SNC-4
(sub-NUMA clustering: four visible NUMA domains, shortest routes for
*local* accesses but remote penalties for naive allocation).

This module models the modes as latency/bandwidth adjustments on the
machine spec, parameterized by the fraction of accesses a workload keeps
domain-local under SNC-4 — letting the ext7 experiment test the paper's
choice: quadrant should be within a few percent of a perfectly NUMA-tuned
SNC-4 and clearly ahead of a naive one.

Adjustment values follow the published KNL characterizations (mesh hop
counts; directory lookup placement): all-to-all adds ~18 ns to every
memory access; SNC-4 removes ~10 ns on local accesses and adds ~25 ns on
remote ones.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.platforms.spec import MachineSpec

ALL2ALL_LATENCY_PENALTY_NS = 18.0
SNC4_LOCAL_LATENCY_BONUS_NS = 10.0
SNC4_REMOTE_LATENCY_PENALTY_NS = 25.0
#: Remote SNC-4 traffic crosses quadrant boundaries: effective bandwidth
#: of the remote share is derated by mesh contention.
SNC4_REMOTE_BANDWIDTH_FACTOR = 0.7


class ClusterMode(enum.Enum):
    """KNL cluster (tag-directory affinity) modes."""

    ALL2ALL = "all2all"
    QUADRANT = "quadrant"  # the paper's evaluated default
    SNC4 = "snc4"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return {
            "all2all": "all-to-all",
            "quadrant": "quadrant (paper default)",
            "snc4": "SNC-4",
        }[self.value]


def apply_cluster_mode(
    machine: MachineSpec,
    mode: ClusterMode,
    *,
    local_fraction: float = 0.25,
) -> MachineSpec:
    """Return the machine with cluster-mode-adjusted memory levels.

    ``local_fraction`` only matters for SNC-4: the share of post-LLC
    accesses that land in the issuing quadrant's domain. 0.25 is the
    naive expectation (uniform placement over four domains); 1.0 is a
    perfectly NUMA-tuned application.
    """
    if not isinstance(mode, ClusterMode):
        raise TypeError("mode must be a ClusterMode")
    if not 0.0 <= local_fraction <= 1.0:
        raise ValueError("local_fraction must be in [0, 1]")
    if mode is ClusterMode.QUADRANT:
        return machine

    def adjust(level):
        if level is None:
            return None
        if mode is ClusterMode.ALL2ALL:
            return dataclasses.replace(
                level, latency=level.latency + ALL2ALL_LATENCY_PENALTY_NS
            )
        # SNC-4: latency mixes local bonus and remote penalty; bandwidth
        # derates on the remote share.
        latency = (
            local_fraction
            * max(1.0, level.latency - SNC4_LOCAL_LATENCY_BONUS_NS)
            + (1.0 - local_fraction)
            * (level.latency + SNC4_REMOTE_LATENCY_PENALTY_NS)
        )
        bandwidth = level.bandwidth * (
            local_fraction
            + (1.0 - local_fraction) * SNC4_REMOTE_BANDWIDTH_FACTOR
        )
        return dataclasses.replace(level, latency=latency, bandwidth=bandwidth)

    return dataclasses.replace(
        machine, opm=adjust(machine.opm), dram=adjust(machine.dram)
    )
