"""Extension study: energy/time Pareto frontiers over OPM configurations.

The paper's Section 5 prices each OPM through Equation (1): one scalar
power increase against one scalar speedup. The per-level energy ledger
lets us ask the richer question — for each kernel, which of the six
memory configurations (Broadwell eDRAM off/on, KNL MCDRAM off / cache /
flat / hybrid) are *Pareto-optimal* on the (time-to-solution,
energy-to-solution) plane, and what does each GFlop/s cost in watts?

Two frontier views are reported:

* ``platform_pareto`` — non-domination among the modes of one machine.
  This is the operational question ("which BIOS setting on my node?")
  and the axis along which the paper's Eq. (1) trade-off lives.
* ``pareto`` — non-domination across all six configurations. This view
  routinely collapses toward KNL flat mode: stacked MCDRAM moves a byte
  for roughly a third of DDR4's energy *and* 5x the bandwidth, so at
  matched footprints the on-package part wins both axes — itself a
  finding worth stating.

Every priced run re-audits the energy-conservation laws; a violation
aborts the experiment (the ledger's books must close, same discipline as
the writeback ledger).
"""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.power.ledger import (
    ENERGY_CONFIGS,
    PricedRun,
    demo_kernel,
    pareto_front,
    price_config,
)
from repro.viz import bar_chart

KERNELS = (
    "stream",
    "gemm",
    "cholesky",
    "spmv",
    "sptrans",
    "sptrsv",
    "stencil",
    "fft",
)


def _frontier_points(runs: list[PricedRun]) -> set[tuple[float, float]]:
    """Distinct (seconds, energy) points on the per-platform frontiers."""
    points: set[tuple[float, float]] = set()
    for platform in ("broadwell", "knl"):
        sub = [r for r in runs if r.platform == platform]
        for run, optimal in zip(sub, pareto_front(sub)):
            if optimal:
                points.add((run.seconds, run.energy_j))
    return points


@register("ext8", "Energy/time Pareto frontiers", "Extension (Section 5)")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext8",
        title="Energy-to-solution vs time-to-solution over OPM configurations",
    )
    reps = 1 if quick else 3
    rows = []
    frontier_rows = []
    labels: list[str] = []
    eff_by_config: dict[str, list[float]] = {
        f"{p}/{m}": [] for p, m in ENERGY_CONFIGS
    }
    degenerate = []
    for name in KERNELS:
        runs = [
            price_config(demo_kernel(name), platform, mode, reps=reps)
            for platform, mode in ENERGY_CONFIGS
        ]
        for run_ in runs:
            violations = run_.ledger.conservation_violations()
            if violations:
                raise ValueError(
                    f"{name} on {run_.platform}/{run_.mode}: energy books "
                    f"do not close: {'; '.join(violations)}"
                )
        global_flags = pareto_front(runs)
        platform_flags: dict[int, bool] = {}
        for platform in ("broadwell", "knl"):
            sub = [
                (i, r) for i, r in enumerate(runs) if r.platform == platform
            ]
            for (i, _), flag in zip(sub, pareto_front([r for _, r in sub])):
                platform_flags[i] = flag
        labels.append(name)
        for i, run_ in enumerate(runs):
            eff_by_config[f"{run_.platform}/{run_.mode}"].append(
                run_.gflops_per_watt
            )
            rows.append(
                (
                    name,
                    run_.platform,
                    run_.mode,
                    run_.seconds,
                    run_.energy_j,
                    run_.dynamic_j,
                    run_.edp_js,
                    run_.gflops_per_watt,
                    int(global_flags[i]),
                    int(platform_flags[i]),
                )
            )
        points = _frontier_points(runs)
        if len(points) < 2:
            degenerate.append(name)
        frontier_rows.append(
            (name, sum(global_flags), sum(platform_flags.values()), len(points))
        )
    result.add_table(
        "pareto",
        (
            "kernel",
            "platform",
            "mode",
            "seconds",
            "energy_j",
            "dynamic_j",
            "edp_js",
            "gflops_per_watt",
            "pareto",
            "platform_pareto",
        ),
        rows,
    )
    result.add_table(
        "frontiers",
        ("kernel", "global_optimal", "platform_optimal", "distinct_points"),
        frontier_rows,
    )
    result.figures.append(
        bar_chart(
            labels,
            eff_by_config,
            title="Energy efficiency by configuration",
            unit="GF/W",
        )
    )
    if degenerate:
        result.notes.append(
            "DEGENERATE frontiers (fewer than 2 distinct Pareto points): "
            + ", ".join(degenerate)
        )
    else:
        result.notes.append(
            "Every kernel's frontier is non-degenerate: >= 2 distinct "
            "(seconds, energy) Pareto points across the six configurations."
        )
    knl_flat_wins = sum(
        1
        for r in rows
        if r[1] == "knl" and r[2] == "flat" and r[8]  # global pareto flag
    )
    result.notes.append(
        f"KNL flat mode sits on the global frontier for {knl_flat_wins} of "
        f"{len(KERNELS)} kernels: on-package MCDRAM moves a byte cheaper "
        "and faster than DDR, so cross-machine comparison favours it on "
        "both axes; the Broadwell-vs-eDRAM trade-off lives on the "
        "platform_pareto column (Eq. (1) regime)."
    )
    return result
