"""Figure 8: Cholesky heatmaps on Broadwell, with and without eDRAM."""

from __future__ import annotations

from repro.experiments.dense import heatmap_experiment
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.kernels import CholeskyKernel


@register("fig8", "Cholesky on Broadwell (heatmaps)", "Figure 8")
def run(quick: bool = True) -> ExperimentResult:
    return heatmap_experiment(
        "fig8",
        "Cholesky on Broadwell (order x tile)",
        lambda order, tile: CholeskyKernel(order=order, tile=tile),
        "broadwell",
        quick=quick,
    )
