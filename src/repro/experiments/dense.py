"""Shared machinery for the dense-kernel heatmap figures (7, 8, 15, 16)."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import (
    MODE_LABELS,
    dense_orders,
    dense_tiles,
    run_broadwell_sweep,
    run_knl_sweep,
)
from repro.kernels.base import Kernel
from repro.viz import heatmap


def heatmap_experiment(
    experiment_id: str,
    title: str,
    kernel_factory: Callable[[int, int], Kernel],
    platform: str,
    *,
    quick: bool,
) -> ExperimentResult:
    """Sweep (order, tile) and emit one heatmap per OPM mode."""
    result = ExperimentResult(experiment_id=experiment_id, title=title)
    orders = dense_orders(platform, quick=quick)
    tiles = dense_tiles(quick=quick)
    configs = [
        kernel_factory(order, tile) for tile in tiles for order in orders
    ]
    if platform == "broadwell":
        points = run_broadwell_sweep(configs)
        mode_labels = ["w/o eDRAM", "w/ eDRAM"]
    else:
        points = run_knl_sweep(configs)
        mode_labels = list(MODE_LABELS.values())
    n_t, n_o = len(tiles), len(orders)
    rows = []
    grids = {label: np.zeros((n_t, n_o)) for label in mode_labels}
    for idx, point in enumerate(points):
        ti, oi = divmod(idx, n_o)
        for label in mode_labels:
            grids[label][ti, oi] = point.gflops(label)
        rows.append(
            (
                orders[oi],
                tiles[ti],
                *(point.gflops(label) for label in mode_labels),
            )
        )
    result.add_table(
        "gflops",
        ("order", "tile", *mode_labels),
        rows,
    )
    for label in mode_labels:
        grid = grids[label]
        result.figures.append(
            heatmap(
                grid[::-1],  # larger tiles on top, like the paper's y-axis
                row_labels=[str(t) for t in tiles[::-1]],
                col_labels=[str(o) for o in orders],
                title=f"{title} — {label} (GFlop/s)",
            )
        )
        result.notes.append(
            f"{label}: peak {grid.max():.1f} GFlop/s, "
            f"median {np.median(grid):.1f}, "
            f">=90% of peak on {np.mean(grid >= 0.9 * grid.max()):.1%} of configs."
        )
    return result
