"""Figure 29: MCDRAM tuning guideline via the Stepping model.

Reproduces the four-curve comparison (w/o MCDRAM, cache, flat, hybrid)
and derives the paper's mode-selection rules (Section 6, guidelines
I-IV).
"""

from __future__ import annotations

import numpy as np

from repro.engine import stepping
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.platforms import McdramMode, knl
from repro.platforms.tuning import ALL_MCDRAM_MODES
from repro.viz import line_chart


@register("fig29", "MCDRAM tuning guideline", "Figure 29")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig29",
        title="MCDRAM tuning via the Stepping model (mode selection)",
    )
    machine = knl()
    n = 60 if quick else 200
    sizes = np.logspace(np.log2(64e6), np.log2(128e9), n, base=2.0)
    workload = stepping.SteppingWorkload(ai=0.0625, mlp=512)
    curves = {
        str(mode): stepping.curve(
            machine, sizes=sizes, workload=workload, mcdram=mode
        )
        for mode in ALL_MCDRAM_MODES
    }
    result.figures.append(
        line_chart(
            sizes,
            {label: c.gflops for label, c in curves.items()},
            title="MCDRAM modes over problem size",
        )
    )
    result.add_table(
        "curves",
        ("size_bytes", *(curves.keys())),
        [
            (s, *(float(c.gflops[i]) for c in curves.values()))
            for i, s in enumerate(sizes.tolist())
        ],
    )
    flat = curves[str(McdramMode.FLAT)].gflops
    cache = curves[str(McdramMode.CACHE)].gflops
    hybrid = curves[str(McdramMode.HYBRID)].gflops
    ddr = curves[str(McdramMode.OFF)].gflops
    gib = 2.0**30
    in_cap = sizes <= 16 * gib
    result.notes.append(
        "Guideline II — flat mode is best when the data set fits MCDRAM: "
        f"flat >= cache on {float(np.mean(flat[in_cap] >= cache[in_cap] - 1e-9)):.0%} "
        "of in-capacity sizes."
    )
    past = sizes > 16 * gib
    result.notes.append(
        "Guideline I/IV — past MCDRAM capacity, flat mode collapses below "
        f"DDR (min ratio {float((flat[past] / ddr[past]).min()):.2f}x) while "
        "cache/hybrid modes degrade gracefully."
    )
    mid = (sizes > 8 * gib) & (sizes <= 16 * gib)
    if mid.any():
        result.notes.append(
            "Guideline III — hybrid peaks where the hot set fits its cache "
            "half but the data exceeds the flat half: hybrid/cache ratio "
            f"up to {float((hybrid[mid] / np.maximum(cache[mid], 1e-12)).max()):.2f}x there."
        )
    return result
