"""Figure 20: structure impact of SpMV on KNL.

Speedup of the MCDRAM modes over DDR, binned by (rows, nonzeros). The
paper draws one heatmap for all three modes since their structural
impact coincides (Section 4.2.2); we follow suit using flat mode.
"""

from __future__ import annotations

import numpy as np

from repro.engine.calibration import DEFAULT_KNOBS
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sparse_exp import (
    SPARSE_NOISE_SIGMA,
    structure_grid,
    structure_rows,
)
from repro.experiments.sweeps import collection_for, run_knl_sweep
from repro.kernels import SpmvKernel
from repro.sparse import MatrixDescriptor
from repro.viz import heatmap


def _factory(d: MatrixDescriptor) -> SpmvKernel:
    return SpmvKernel(descriptor=d)


@register("fig20", "Structure impact of SpMV on KNL", "Figure 20")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig20",
        title="Structure impact of SpMV on KNL (rows x nnz)",
    )
    collection = collection_for(quick=quick)
    knobs = DEFAULT_KNOBS.replace(noise_sigma=SPARSE_NOISE_SIGMA)
    points = run_knl_sweep([_factory(d) for d in collection], knobs=knobs)
    rows = np.array([d.n_rows for d in collection])
    nnz = np.array([d.nnz for d in collection])
    flat = np.array([p.gflops("Flat") for p in points])
    ddr = np.array([p.gflops("DDR") for p in points])
    speedup = flat / np.maximum(ddr, 1e-12)
    grid, row_edges, nnz_edges = structure_grid(rows, nnz, speedup)
    result.figures.append(
        heatmap(
            grid[::-1],
            row_labels=[f"2^{int(e)}" for e in row_edges[:-1][::-1]],
            col_labels=[f"2^{int(e)}" for e in nnz_edges[:-1]],
            title="SpMV on KNL: flat-mode speedup by (rows, nnz)",
        )
    )
    result.add_table(
        "structure",
        ("log2_rows_bin", "log2_nnz_bin", "mean_speedup", "count"),
        structure_rows(rows, nnz, speedup),
    )
    best = structure_rows(rows, nnz, speedup)
    if best:
        top = max(best, key=lambda r: r[2])
        result.notes.append(
            f"Hottest bin: rows ~2^{top[0]:.0f}, nnz ~2^{top[1]:.0f} "
            f"(mean speedup {top[2]:.2f}x) — small row counts cache their vectors efficiently."
        )
    return result
