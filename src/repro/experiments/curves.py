"""Shared machinery for the size-sweep curve figures (12-14, 23-25)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import MODE_LABELS, run_broadwell_sweep, run_knl_sweep
from repro.kernels.base import Kernel
from repro.viz import line_chart


def curve_experiment(
    experiment_id: str,
    title: str,
    configs: Sequence[Kernel],
    footprints_mb: Sequence[float],
    platform: str,
) -> ExperimentResult:
    """Throughput-vs-size curves across OPM modes for one kernel."""
    result = ExperimentResult(experiment_id=experiment_id, title=title)
    if platform == "broadwell":
        points = run_broadwell_sweep(configs)
        labels = ["w/o eDRAM", "w/ eDRAM"]
    else:
        points = run_knl_sweep(configs)
        labels = list(MODE_LABELS.values())
    fps = np.asarray(list(footprints_mb), dtype=np.float64)
    series = {
        label: np.array([p.gflops(label) for p in points]) for label in labels
    }
    result.figures.append(
        line_chart(fps, series, title=f"{title} (x: footprint MB, log2)")
    )
    result.add_table(
        "curves",
        ("footprint_mb", *(l.replace(" ", "_") for l in labels)),
        [
            (float(fps[i]), *(float(series[l][i]) for l in labels))
            for i in range(len(fps))
        ],
    )
    base = series[labels[0]]
    for label in labels[1:]:
        ratio = series[label] / np.maximum(base, 1e-12)
        result.notes.append(
            f"{label}: max gain {ratio.max():.2f}x over {labels[0]}, "
            f"at footprint {fps[int(np.argmax(ratio))]:.1f} MB."
        )
    return result
