"""Figure 27: KNL power (package + DDR), with vs without MCDRAM use.

"w/o MCDRAM" only means MCDRAM is unused: it cannot be powered down, so
its static draw appears in both bars (paper Section 5.2). Heavy MCDRAM
use can *reduce* DDR (and sometimes total) power by absorbing traffic.
"""

from __future__ import annotations

from repro.engine.exectime import estimate
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import geomean, representative_kernels
from repro.platforms import McdramMode, knl
from repro.power import measure
from repro.viz import bar_chart


@register("fig27", "KNL power breakdown", "Figure 27")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig27",
        title="KNL average power: package and DDR, w/ vs w/o MCDRAM (flat)",
    )
    machine = knl()
    labels, rows = [], []
    pkg_on, pkg_off, dram_on, dram_off = [], [], [], []
    for label, factory in representative_kernels("knl").items():
        profile = factory().profile()
        s_flat = measure(
            estimate(profile, machine, mcdram=McdramMode.FLAT),
            machine,
            opm_powered=True,
        )
        s_ddr = measure(
            estimate(profile, machine, mcdram=McdramMode.OFF),
            machine,
            opm_powered=True,  # MCDRAM static power cannot be avoided
        )
        labels.append(label)
        pkg_on.append(s_flat.package_w)
        pkg_off.append(s_ddr.package_w)
        dram_on.append(s_flat.dram_w)
        dram_off.append(s_ddr.dram_w)
        rows.append(
            (
                label,
                s_ddr.package_w,
                s_flat.package_w,
                s_ddr.dram_w,
                s_flat.dram_w,
                s_flat.total_w / s_ddr.total_w - 1.0,
            )
        )
    # Same discipline as fig26: shared geomean, loud on non-positive
    # inputs, and one statistic quoted everywhere.
    gm_increase = geomean([r[5] + 1.0 for r in rows]) - 1.0
    rows.append(
        ("GM", geomean(pkg_off), geomean(pkg_on), geomean(dram_off),
         geomean(dram_on), gm_increase)
    )
    labels.append("GM")
    pkg_on.append(geomean(pkg_on))
    pkg_off.append(geomean(pkg_off))
    dram_on.append(geomean(dram_on))
    dram_off.append(geomean(dram_off))
    result.add_table(
        "power",
        ("kernel", "package_w/o", "package_w/", "ddr_w/o", "ddr_w/",
         "total_increase"),
        rows,
    )
    result.figures.append(
        bar_chart(
            labels,
            {
                "pkg w/o MCDRAM": pkg_off,
                "pkg w/  MCDRAM": pkg_on,
                "ddr w/o": dram_off,
                "ddr w/ ": dram_on,
            },
            title="KNL average power (W)",
        )
    )
    ddr_drops = sum(1 for r in rows[:-1] if r[4] < r[3])
    result.notes.append(
        f"MCDRAM flat mode reduces DDR power on {ddr_drops} of "
        f"{len(rows) - 1} kernels by absorbing DRAM traffic (paper's "
        "GEMM/Cholesky/SpTRANS/FFT observation)."
    )
    result.notes.append(
        f"Using MCDRAM raises total power by {gm_increase:.1%} "
        "(geometric mean across kernels; paper: ~6.9% for flat mode)."
    )
    return result
