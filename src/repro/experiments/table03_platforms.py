"""Table 3: platform configuration."""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.platforms import broadwell, knl


@register("table3", "Platform configuration", "Table 3")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table3",
        title="Platform configuration (Table 3)",
    )
    rows = []
    for machine in (broadwell(), knl()):
        opm = machine.opm
        assert opm is not None
        rows.append(
            (
                machine.name,
                machine.arch,
                machine.cores,
                machine.frequency_ghz,
                machine.sp_peak_gflops,
                machine.dp_peak_gflops,
                machine.dram.name,
                (machine.dram.capacity or 0) // 2**30,
                machine.dram.bandwidth,
                opm.name,
                (opm.capacity or 0) // 2**20,
                opm.bandwidth,
                machine.llc.name,
                (machine.llc.capacity or 0) // 2**20,
            )
        )
    result.add_table(
        "platforms",
        (
            "cpu",
            "arch",
            "cores",
            "freq_ghz",
            "sp_gflops",
            "dp_gflops",
            "dram",
            "dram_gib",
            "dram_gbs",
            "opm",
            "opm_mib",
            "opm_gbs",
            "llc",
            "llc_mib",
        ),
        rows,
    )
    result.notes.append(
        "The paper's Table 3 prints KNL's SP/DP columns swapped; we list "
        "the physically consistent values (64 cores x 1.5 GHz x 32 DP "
        "flops/cycle = 3072 DP GFlop/s)."
    )
    for machine in (broadwell(), knl()):
        result.figures.append(machine.describe())
    return result
