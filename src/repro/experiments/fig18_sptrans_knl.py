"""Figure 18: SpTRANS (MergeTrans) on KNL."""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sparse_exp import sparse_experiment
from repro.kernels import SptransKernel
from repro.sparse import MatrixDescriptor


def _factory(d: MatrixDescriptor) -> SptransKernel:
    return SptransKernel(descriptor=d, algorithm="merge")


@register("fig18", "SpTRANS (MergeTrans) on KNL", "Figure 18")
def run(quick: bool = True) -> ExperimentResult:
    return sparse_experiment(
        "fig18",
        "SpTRANS (MergeTrans) on KNL",
        _factory,
        "knl",
        quick=quick,
        structure_heatmap=False,
    )
