"""Extension study: buffering page tables in OPM.

Paper Section 8, question (3): "would OPM be useful for certain OS
functionalities, e.g. buffering page table?" We model 4-level TLB-miss
walks for the sparse kernels (the TLB-hostile ones) with page tables
resident in DRAM vs pinned in the OPM, on both platforms.

Expected shape: on Broadwell (eDRAM latency < DRAM) pinning helps in
proportion to the TLB miss rate; on KNL (MCDRAM latency > DDR) pinning is
*useless or harmful* — one more instance of the latency-vs-bandwidth
split that runs through the whole paper.
"""

from __future__ import annotations

from repro.engine.exectime import estimate
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.kernels import SpmvKernel
from repro.os import study
from repro.platforms import McdramMode, broadwell, knl
from repro.sparse import from_params

#: TLB misses per cache-line access, by access regularity.
TLB_RATES = {"sequential": 0.002, "moderate": 0.02, "irregular": 0.08}


@register("ext3", "Page tables in OPM", "Extension (Section 8.3)")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext3",
        title="TLB-walk cost with page tables pinned in OPM",
    )
    d = from_params("pt", "random", 8_000_000, 160_000_000, seed=3)
    kernel = SpmvKernel(descriptor=d)
    profile = kernel.profile()
    rows = []
    for machine, kwargs in (
        (broadwell(), {"edram": True}),
        (knl(), {"mcdram": McdramMode.CACHE}),
    ):
        base = estimate(profile, machine, **kwargs)
        for regime, rate in TLB_RATES.items():
            s = study(
                base,
                machine,
                tlb_miss_per_access=rate,
                demand_bytes=profile.demand_bytes,
            )
            rows.append(
                (
                    machine.arch,
                    regime,
                    rate,
                    s.slowdown("dram"),
                    s.slowdown("opm"),
                    s.opm_benefit(),
                )
            )
    result.add_table(
        "walks",
        (
            "platform",
            "access regime",
            "tlb miss/line",
            "slowdown (PT in DRAM)",
            "slowdown (PT in OPM)",
            "OPM benefit",
        ),
        rows,
    )
    bdw_rows = [r for r in rows if r[0] == "Broadwell"]
    knl_rows = [r for r in rows if r[0] == "Knights Landing"]
    result.notes.append(
        "Broadwell: pinning page tables in eDRAM buys up to "
        f"{max(r[5] for r in bdw_rows):.3f}x (latency below DRAM); "
        "KNL: benefit "
        f"{max(r[5] for r in knl_rows):.3f}x at best — MCDRAM's latency "
        "offers nothing to pointer-chasing walks, so the OS should not "
        "spend MCDRAM on page tables."
    )
    return result
