"""Figure 12: STREAM TRIAD on Broadwell — the Stepping model live."""

from __future__ import annotations

from repro.experiments.curves import curve_experiment
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import stream_sizes
from repro.kernels import StreamKernel


@register("fig12", "Stream on Broadwell", "Figure 12")
def run(quick: bool = True) -> ExperimentResult:
    sizes = stream_sizes("broadwell", quick=quick)
    configs = [StreamKernel(n=n) for n in sizes]
    fps = [3 * 8 * n / 2**20 for n in sizes]
    return curve_experiment(
        "fig12", "STREAM TRIAD on Broadwell", configs, fps, "broadwell"
    )
