"""Figure 28: eDRAM tuning guideline via the Stepping model.

Shows the performance-effective region (PER) between the L3 valley and the
eDRAM capacity, and the two post-peak regimes: convergence with the DDR
plateau when the steady-state eDRAM hit rate is ~0 (panel A) versus a
persistent gap when residual hits remain (panel B).
"""

from __future__ import annotations

import numpy as np

from repro.engine import stepping
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.platforms import broadwell
from repro.viz import line_chart


@register("fig28", "eDRAM tuning guideline", "Figure 28")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig28",
        title="eDRAM tuning via the Stepping model (PER and EER)",
    )
    machine = broadwell()
    n = 60 if quick else 200
    sizes = np.logspace(np.log2(256e3), np.log2(8e9), n, base=2.0)
    # Panel A: zero steady-state hit rate beyond capacity (streaming).
    stream_like = stepping.SteppingWorkload(ai=0.0625, hit_at_fit=1.0, mlp=48)
    on_a = stepping.curve(machine, sizes=sizes, workload=stream_like, edram=True, label="w/ eDRAM")
    off_a = stepping.curve(machine, sizes=sizes, workload=stream_like, edram=False, label="w/o eDRAM")
    result.figures.append(
        line_chart(
            sizes,
            {c.label: c.gflops for c in (on_a, off_a)},
            title="(A) zero residual hit rate: curves converge past the peak",
        )
    )
    result.add_table(
        "panel_a",
        ("size_bytes", "with_edram", "without_edram"),
        list(zip(sizes.tolist(), on_a.gflops.tolist(), off_a.gflops.tolist())),
    )
    # The PER: sizes where eDRAM delivers a speedup.
    speedup = on_a.gflops / np.maximum(off_a.gflops, 1e-12)
    effective = sizes[speedup > 1.01]
    if len(effective):
        result.notes.append(
            f"Performance-effective region (PER): {effective.min() / 2**20:.1f}"
            f" MB .. {effective.max() / 2**20:.1f} MB "
            f"(max speedup {speedup.max():.2f}x)."
        )
    # EER per Eq. (1): the region where the gain also beats the +8.6%
    # average power cost of enabling eDRAM.
    power_w = 0.086
    eer = sizes[speedup > 1.0 + power_w]
    result.notes.append(
        f"Energy-effective region (EER, gain > {power_w:.1%}) is narrower: "
        + (
            f"{eer.min() / 2**20:.1f} MB .. {eer.max() / 2**20:.1f} MB."
            if len(eer)
            else "empty for this workload."
        )
    )
    result.notes.append(
        "Outside the PER eDRAM does not degrade performance; "
        "performance-focused users should keep it enabled."
    )
    return result
