"""Figure 19: SpTRSV (level-scheduled) on KNL."""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sparse_exp import sparse_experiment
from repro.kernels import SptrsvKernel
from repro.sparse import MatrixDescriptor


def _factory(d: MatrixDescriptor) -> SptrsvKernel:
    return SptrsvKernel(descriptor=d)


@register("fig19", "SpTRSV (level-scheduled) on KNL", "Figure 19")
def run(quick: bool = True) -> ExperimentResult:
    return sparse_experiment(
        "fig19",
        "SpTRSV (level-scheduled) on KNL",
        _factory,
        "knl",
        quick=quick,
        structure_heatmap=False,
    )
