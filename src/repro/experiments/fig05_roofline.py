"""Figure 5: theoretical rooflines for eDRAM/Broadwell and MCDRAM/KNL."""

from __future__ import annotations

import numpy as np

from repro.engine import roofline
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.platforms import broadwell, knl
from repro.viz import line_chart


@register("fig5", "Roofline with and without OPM", "Figure 5")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig5",
        title="Theoretical rooflines (DDR vs OPM bandwidth ceilings)",
    )
    positions = roofline.kernel_positions()
    for machine in (broadwell(), knl()):
        rf = roofline.build(machine)
        grid = np.logspace(-5, 8, 40 if quick else 160, base=2.0)
        series = rf.series(grid)
        ai = series.pop("ai")
        result.figures.append(
            line_chart(
                ai,
                {k: np.asarray(v) for k, v in series.items()},
                title=f"Roofline: {machine.name}",
                y_label="GFlop/s (log ceilings)",
            )
        )
        rows = []
        for kernel, kai in positions.items():
            row = [kernel, kai]
            for roof in rf.roofs:
                row.append(roof.attainable(kai))
            rows.append(tuple(row))
        result.add_table(
            f"attainable_{machine.arch.lower().replace(' ', '_')}",
            ("kernel", "ai", *(r.name for r in rf.roofs)),
            rows,
        )
        opm = machine.opm
        assert opm is not None
        result.notes.append(
            f"{machine.name}: OPM diagonal ({opm.name}, {opm.bandwidth:.0f} "
            f"GB/s) lifts the bandwidth ceiling "
            f"{opm.bandwidth / machine.dram.bandwidth:.1f}x over "
            f"{machine.dram.name}; ridge at AI="
            f"{rf.ridge_point(opm.name):.2f}."
        )
    return result
