"""Experiment drivers — one per paper figure/table (see DESIGN.md Section 4)."""

from repro.experiments.registry import all_experiments, get, register, run
from repro.experiments.results import DataTable, ExperimentResult

__all__ = [
    "DataTable",
    "ExperimentResult",
    "all_experiments",
    "get",
    "register",
    "run",
]
