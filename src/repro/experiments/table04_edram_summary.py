"""Table 4: summarized statistics for applying eDRAM on Broadwell.

Per kernel: best GFlop/s without and with eDRAM, average and maximum
performance gap, average and maximum speedup — over the same sweeps that
generate Figures 7-14.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import (
    collection_for,
    dense_orders,
    dense_tiles,
    fft_sizes,
    run_broadwell_sweep,
    stencil_grids,
    stream_sizes,
    summarize,
)
from repro.kernels import (
    CholeskyKernel,
    FftKernel,
    GemmKernel,
    SpmvKernel,
    SptransKernel,
    SptrsvKernel,
    StencilKernel,
    StreamKernel,
)
from repro.kernels.base import Kernel


def broadwell_configs(quick: bool) -> dict[str, Sequence[Kernel]]:
    """The per-kernel Broadwell sweeps behind Figures 7-14."""
    orders = dense_orders("broadwell", quick=quick)
    tiles = dense_tiles(quick=quick)
    dense_grid = [(o, t) for t in tiles for o in orders]
    if quick:
        dense_grid = dense_grid[:: max(1, len(dense_grid) // 48)]
    collection = collection_for(quick=quick)
    return {
        "GEMM": [GemmKernel(order=o, tile=t) for o, t in dense_grid],
        "Cholesky": [CholeskyKernel(order=o, tile=t) for o, t in dense_grid],
        "SpMV": [SpmvKernel(descriptor=d) for d in collection],
        "SpTRANS": [
            SptransKernel(descriptor=d, algorithm="scan") for d in collection
        ],
        "SpTRSV": [SptrsvKernel(descriptor=d) for d in collection],
        "Stream": [
            StreamKernel(n=n) for n in stream_sizes("broadwell", quick=quick)
        ],
        "Stencil": [
            StencilKernel(*g, threads=8)
            for g in stencil_grids("broadwell", quick=quick)
            if min(g) >= 32
        ],
        "FFT": [FftKernel(size=s) for s in fft_sizes("broadwell", quick=quick)],
    }


@register("table4", "eDRAM summary statistics", "Table 4")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table4",
        title="Summarized statistics for applying eDRAM (Table 4)",
    )
    rows = []
    speedup_sums = []
    for kernel, configs in broadwell_configs(quick).items():
        points = run_broadwell_sweep(list(configs))
        s = summarize(points, base="w/o eDRAM", opm="w/ eDRAM")
        rows.append(
            (
                kernel,
                s.best_base,
                s.best_opm,
                s.avg_gap,
                s.max_gap,
                s.avg_speedup,
                s.max_speedup,
            )
        )
        speedup_sums.append(s.avg_speedup)
    result.add_table(
        "summary",
        (
            "kernel",
            "w/o eDRAM best GFlop/s",
            "w/ eDRAM best GFlop/s",
            "avg gap",
            "max gap",
            "avg speedup",
            "max speedup",
        ),
        rows,
    )
    never_worse = all(r[6] >= 0.999 and r[2] >= r[1] * 0.999 for r in rows)
    result.notes.append(
        "eDRAM never degrades best-case performance across kernels: "
        + ("confirmed." if never_worse else "VIOLATED — inspect model.")
    )
    result.notes.append(
        f"Average speedup across kernels: "
        f"{sum(speedup_sums) / len(speedup_sums):.3f}x "
        "(paper reports 18.6% average gain, up to 3.54x on Cholesky)."
    )
    return result
