"""Experiment registry.

Every figure/table driver registers itself under its experiment id
(``fig1`` .. ``fig30``, ``table2`` .. ``table5``, ``eq1``); the CLI and
the benchmark harness both resolve experiments through this registry, so
DESIGN.md's per-experiment index is enforced by construction.

Each driver is a callable ``run(quick: bool = True) -> ExperimentResult``;
``quick`` selects a reduced sweep (tests, benchmarks) versus the
paper-scale sweep.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Callable, Protocol

from repro.experiments.results import ExperimentResult
from repro.telemetry import names as tm


class ExperimentRunner(Protocol):  # pragma: no cover - typing only
    def __call__(self, quick: bool = True) -> ExperimentResult: ...


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry for one paper artifact."""

    experiment_id: str
    title: str
    paper_artifact: str  # "Figure 7", "Table 4", ...
    runner: ExperimentRunner

    @property
    def module(self) -> str:
        """Dotted name of the module that defines the driver."""
        return self.runner.__module__

    def source_fingerprint(self) -> str:
        """Digest of the driver module + its in-package import closure."""
        from repro.runtime.fingerprint import source_digest

        return source_digest(self.module)

    def task_key(self, *, quick: bool) -> str:
        """Content-addressed cache key for one invocation of this spec."""
        from repro.runtime.fingerprint import task_key

        return task_key(self.experiment_id, self.module, quick=quick)


_REGISTRY: dict[str, ExperimentSpec] = {}

#: Modules that register experiments on import (one per paper artifact).
_EXPERIMENT_MODULES = [
    "repro.experiments.fig01_gemm_pdf",
    "repro.experiments.fig04_ai_spectrum",
    "repro.experiments.fig05_roofline",
    "repro.experiments.fig06_stepping",
    "repro.experiments.fig07_gemm_bdw",
    "repro.experiments.fig08_cholesky_bdw",
    "repro.experiments.fig09_spmv_bdw",
    "repro.experiments.fig10_sptrans_bdw",
    "repro.experiments.fig11_sptrsv_bdw",
    "repro.experiments.fig12_stream_bdw",
    "repro.experiments.fig13_stencil_bdw",
    "repro.experiments.fig14_fft_bdw",
    "repro.experiments.fig15_gemm_knl",
    "repro.experiments.fig16_cholesky_knl",
    "repro.experiments.fig17_spmv_knl",
    "repro.experiments.fig18_sptrans_knl",
    "repro.experiments.fig19_sptrsv_knl",
    "repro.experiments.fig20_structure_spmv",
    "repro.experiments.fig21_structure_sptrans",
    "repro.experiments.fig22_structure_sptrsv",
    "repro.experiments.fig23_stream_knl",
    "repro.experiments.fig24_stencil_knl",
    "repro.experiments.fig25_fft_knl",
    "repro.experiments.fig26_power_bdw",
    "repro.experiments.fig27_power_knl",
    "repro.experiments.fig28_guideline_edram",
    "repro.experiments.fig29_guideline_mcdram",
    "repro.experiments.fig30_hw_tuning",
    "repro.experiments.table02_kernels",
    "repro.experiments.table03_platforms",
    "repro.experiments.table04_edram_summary",
    "repro.experiments.table05_mcdram_summary",
    "repro.experiments.eq01_energy_breakeven",
    # Extension studies (paper Sections 2.1 / 8 future work).
    "repro.experiments.ext01_edram_placement",
    "repro.experiments.ext02_os_sharing",
    "repro.experiments.ext03_pagetable",
    "repro.experiments.ext04_prefetch",
    "repro.experiments.ext05_syncfree",
    "repro.experiments.ext06_virtualization",
    "repro.experiments.ext07_cluster_modes",
    "repro.experiments.ext08_energy_pareto",
]


def register(
    experiment_id: str, title: str, paper_artifact: str
) -> Callable[[ExperimentRunner], ExperimentRunner]:
    """Decorator registering a driver under its experiment id."""

    def wrap(runner: ExperimentRunner) -> ExperimentRunner:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = ExperimentSpec(
            experiment_id=experiment_id,
            title=title,
            paper_artifact=paper_artifact,
            runner=runner,
        )
        return runner

    return wrap


def _load_all() -> None:
    for mod in _EXPERIMENT_MODULES:
        importlib.import_module(mod)


def all_experiments() -> dict[str, ExperimentSpec]:
    """Id -> spec for every registered experiment."""
    _load_all()
    return dict(sorted(_REGISTRY.items(), key=lambda kv: _sort_key(kv[0])))


def get(experiment_id: str) -> ExperimentSpec:
    _load_all()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run(experiment_id: str, *, quick: bool = True) -> ExperimentResult:
    """Resolve and execute one experiment.

    With telemetry enabled, the driver runs inside an ``experiment`` root
    span, gets a provenance manifest (streamed to the JSONL sink when one
    is attached), and — unless summaries are suppressed — the result
    carries a ``telemetry`` table with the per-phase wall/self-time
    breakdown of exactly this invocation.
    """
    from repro import telemetry

    spec = get(experiment_id)
    if not telemetry.enabled():
        return spec.runner(quick=quick)

    from repro.telemetry import summary as telemetry_summary

    tracer = telemetry.get_tracer()
    seen_ids = {sp.span_id for sp in tracer.finished()}
    manifest = telemetry.start_manifest(experiment_id, quick=quick)
    telemetry.counter(tm.METRIC_EXPERIMENT_RUNS).inc()
    status = "ok"
    try:
        with telemetry.span(tm.SPAN_EXPERIMENT, id=experiment_id, quick=quick):
            result = spec.runner(quick=quick)
    except Exception:
        status = "error"
        raise
    finally:
        telemetry.finish_manifest(manifest, status=status)
    if telemetry.attach_summary_enabled():
        spans = [
            sp for sp in tracer.finished() if sp.span_id not in seen_ids
        ]
        columns, rows = telemetry_summary.phase_table(spans)
        result.add_table("telemetry", columns, rows)
        if manifest is not None:
            result.notes.append(
                f"telemetry: manifest {manifest.run_id} "
                f"(wall {manifest.wall_time_s:.3f} s, "
                f"{len(spans)} spans recorded)"
            )
    return result


def _sort_key(exp_id: str) -> tuple[int, int]:
    if exp_id.startswith("ext"):
        kind = 3
    else:
        kind = {"f": 0, "t": 1, "e": 2}.get(exp_id[0], 4)
    digits = "".join(ch for ch in exp_id if ch.isdigit())
    return kind, int(digits or 0)
