"""Extension study: OPM management across guest OSes (virtualization).

Paper Section 8, question (2). Two guests on one KNL — a dense-VM with
one GEMM tenant and a sparse-VM with three SpMV tenants — under host x
guest policy combinations. The headline: *locally fair is not globally
fair*. Equal host grants give each of the sparse VM's three tenants a
third of what the dense VM's single tenant gets; proportional host grants
fix the per-app imbalance but reward footprint-padding guests; a
utility-max host starves the dense VM outright.
"""

from __future__ import annotations

import itertools

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.kernels import GemmKernel, SpmvKernel
from repro.os import EqualShare, GuestVM, ProportionalShare, simulate_virtualized
from repro.platforms import knl
from repro.sparse import from_params


def _vms(quick: bool) -> list[GuestVM]:
    dense = GuestVM(
        name="dense-vm",
        tenants=(("gemm", GemmKernel(order=12288, tile=512).profile()),),
    )
    sparse_tenants = tuple(
        (
            f"spmv{i}",
            SpmvKernel(
                descriptor=from_params(
                    f"v{i}", "grid3d", 15_000_000, 250_000_000, seed=10 + i
                )
            ).profile(),
        )
        for i in range(3)
    )
    sparse = GuestVM(name="sparse-vm", tenants=sparse_tenants)
    return [dense, sparse]


@register("ext6", "OPM management across guest OSes", "Extension (Section 8.2)")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext6",
        title="Two-level (host x guest) MCDRAM partitioning on KNL",
    )
    machine = knl()
    vms = _vms(quick)
    policies = {"equal": EqualShare(), "proportional": ProportionalShare()}
    rows = []
    tenant_rows = []
    for (hname, host), (gname, guest) in itertools.product(
        policies.items(), policies.items()
    ):
        outcome = simulate_virtualized(vms, machine, host, guest)
        rows.append(
            (
                hname,
                gname,
                outcome.system_throughput,
                outcome.jain_fairness,
                ";".join(outcome.starved_vms()) or "-",
            )
        )
        for vm in outcome.vms:
            for t in vm.tenants:
                tenant_rows.append(
                    (
                        hname,
                        gname,
                        t.name,
                        t.slice_bytes / 2**30,
                        t.corun_gflops,
                        t.speedup_vs_solo,
                    )
                )
    result.add_table(
        "combinations",
        ("host policy", "guest policy", "system GFlop/s", "end-to-end Jain",
         "starved VMs"),
        rows,
    )
    result.add_table(
        "tenants",
        ("host", "guest", "tenant", "slice_gib", "corun GFlop/s", "vs solo"),
        tenant_rows,
    )
    # Demonstrate the dilution effect under equal/equal.
    eq = [r for r in tenant_rows if r[0] == "equal" and r[1] == "equal"]
    gemm_slice = next(r[3] for r in eq if r[2].endswith("gemm"))
    spmv_slice = next(r[3] for r in eq if "spmv" in r[2])
    result.notes.append(
        f"equal/equal: the dense VM's lone tenant holds {gemm_slice:.1f} GiB "
        f"while each sparse tenant holds {spmv_slice:.1f} GiB — fair per VM, "
        "3x unfair per application (the two-level dilution effect)."
    )
    best = max(rows, key=lambda r: r[3])
    result.notes.append(
        f"Best end-to-end fairness: host={best[0]}, guest={best[1]} "
        f"(Jain {best[3]:.3f})."
    )
    return result
