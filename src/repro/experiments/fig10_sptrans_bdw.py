"""Figure 10: SpTRANS (ScanTrans) on Broadwell."""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sparse_exp import sparse_experiment
from repro.kernels import SptransKernel
from repro.sparse import MatrixDescriptor


def _factory(d: MatrixDescriptor) -> SptransKernel:
    return SptransKernel(descriptor=d, algorithm="scan")


@register("fig10", "SpTRANS (ScanTrans) on Broadwell", "Figure 10")
def run(quick: bool = True) -> ExperimentResult:
    return sparse_experiment(
        "fig10",
        "SpTRANS (ScanTrans) on Broadwell",
        _factory,
        "broadwell",
        quick=quick,
        structure_heatmap=True,
    )
