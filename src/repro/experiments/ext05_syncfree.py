"""Extension study: sync-free vs level-scheduled SpTRSV.

The paper benchmarks SpMP's level-scheduled solver but cites the
sync-free algorithm of its own authors ([31], Euro-Par '16) as the
alternative. This experiment runs the event-driven scheduling simulation
(:mod:`repro.sparse.syncfree`) over the structure families at both
platforms' core counts, quantifying where removing the level barriers
pays — i.e. how much of the SpTRSV slowness the main study attributes to
"inherent sequentiality" is actually *synchronization*, a software
artifact an OPM cannot fix but an algorithm can.
"""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.sparse import (
    FAMILIES,
    build_levels,
    generators,
    simulate_schedule,
)


@register("ext5", "Sync-free vs level-scheduled SpTRSV", "Extension (ref. [31])")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext5",
        title="SpTRSV scheduling: barriers vs point-to-point dataflow",
    )
    n, nnz = (800, 8000) if quick else (4000, 60_000)
    rows = []
    for family in FAMILIES:
        lower = generators.generate(family, n, nnz, seed=7).lower_triangle()
        schedule = build_levels(lower)
        for cores in (4, 64):  # Broadwell- and KNL-class widths
            lvl = simulate_schedule(lower, cores=cores, discipline="level")
            sf = simulate_schedule(lower, cores=cores, discipline="sync-free")
            rows.append(
                (
                    family,
                    cores,
                    schedule.n_levels,
                    float(schedule.avg_parallelism),
                    lvl.makespan,
                    sf.makespan,
                    lvl.makespan / sf.makespan,
                    lvl.utilization,
                    sf.utilization,
                )
            )
    result.add_table(
        "scheduling",
        (
            "family",
            "cores",
            "n_levels",
            "avg_wavefront",
            "level makespan",
            "sync-free makespan",
            "sync-free speedup",
            "level util",
            "sync-free util",
        ),
        rows,
    )
    wide = [r for r in rows if r[1] == 64]
    best = max(wide, key=lambda r: r[6])
    result.notes.append(
        f"At 64 cores, sync-free wins up to {best[6]:.2f}x "
        f"({best[0]}: {best[2]} levels of mean width {best[3]:.1f}) — "
        "barrier count, not raw dependency depth, dominates level "
        "scheduling on many-level matrices."
    )
    chains = [r for r in wide if r[3] < 3.0]
    if chains:
        result.notes.append(
            "Chain-like structures stay slow under *both* disciplines "
            f"(sync-free utilization {min(r[8] for r in chains):.2%} at "
            "best) — their SpTRSV ceiling is the dependency chain itself, "
            "which is why MCDRAM cannot rescue them (Figure 19)."
        )
    return result
