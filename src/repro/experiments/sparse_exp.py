"""Shared machinery for the sparse-kernel figures (9-11, 17-22).

The paper's layout per kernel: a raw-throughput scatter over memory
footprint, a normalized-speedup scatter (OPM vs baseline), and a
structure heatmap of speedup binned by (rows, nonzeros). Broadwell
figures compare eDRAM on/off; KNL figures compare the four MCDRAM modes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.calibration import DEFAULT_KNOBS
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import (
    collection_for,
    run_broadwell_sweep,
    run_knl_sweep,
)
from repro.kernels.base import Kernel
from repro.sparse import MatrixDescriptor
from repro.viz import heatmap, line_chart, scatter

#: Lognormal run-to-run jitter for scatter realism in the sparse figures.
SPARSE_NOISE_SIGMA = 0.06


def sparse_experiment(
    experiment_id: str,
    title: str,
    kernel_factory: Callable[[MatrixDescriptor], Kernel],
    platform: str,
    *,
    quick: bool,
    structure_heatmap: bool = True,
) -> ExperimentResult:
    """Run one sparse kernel over the matrix collection on one platform."""
    result = ExperimentResult(experiment_id=experiment_id, title=title)
    collection = collection_for(quick=quick)
    configs = [kernel_factory(d) for d in collection]
    knobs = DEFAULT_KNOBS.replace(noise_sigma=SPARSE_NOISE_SIGMA)
    if platform == "broadwell":
        points = run_broadwell_sweep(configs, knobs=knobs)
        base_label, opm_labels = "w/o eDRAM", ["w/ eDRAM"]
    else:
        points = run_knl_sweep(configs, knobs=knobs)
        base_label, opm_labels = "DDR", ["Flat", "Cache", "Hybrid"]
    footprints = np.array([d.footprint_bytes / 2**20 for d in collection])
    rows_arr = np.array([d.n_rows for d in collection])
    nnz_arr = np.array([d.nnz for d in collection])
    mode_values = {
        label: np.array([p.gflops(label) for p in points])
        for label in (base_label, *opm_labels)
    }
    # Raw throughput scatter.
    result.figures.append(
        line_chart(
            footprints,
            mode_values,
            title=f"{title}: GFlop/s vs footprint (MB)",
        )
    )
    # Speedup vs baseline.
    speedups = {
        label: mode_values[label] / np.maximum(mode_values[base_label], 1e-12)
        for label in opm_labels
    }
    result.figures.append(
        line_chart(
            footprints,
            speedups,
            title=f"{title}: speedup vs {base_label}",
            y_label="speedup",
        )
    )
    result.add_table(
        "per_matrix",
        (
            "matrix",
            "family",
            "rows",
            "nnz",
            "footprint_mb",
            *(label.replace(" ", "_") for label in (base_label, *opm_labels)),
        ),
        [
            (
                d.name,
                d.family,
                d.n_rows,
                d.nnz,
                float(footprints[i]),
                *(float(mode_values[label][i]) for label in (base_label, *opm_labels)),
            )
            for i, d in enumerate(collection)
        ],
    )
    for label in opm_labels:
        sp = speedups[label]
        result.notes.append(
            f"{label}: avg speedup {sp.mean():.3f}x, max {sp.max():.3f}x, "
            f">1x on {np.mean(sp > 1.001):.0%} of matrices; effective "
            "region concentrates between the LLC valley and the OPM capacity."
        )
    if structure_heatmap:
        grid, row_edges, nnz_edges = structure_grid(
            rows_arr, nnz_arr, speedups[opm_labels[0]]
        )
        result.figures.append(
            heatmap(
                grid[::-1],
                row_labels=[f"2^{int(e)}" for e in row_edges[:-1][::-1]],
                col_labels=[f"2^{int(e)}" for e in nnz_edges[:-1]],
                title=f"{title}: {opm_labels[0]} speedup by (rows, nnz)",
            )
        )
        result.add_table(
            "structure",
            ("log2_rows_bin", "log2_nnz_bin", "mean_speedup", "count"),
            structure_rows(rows_arr, nnz_arr, speedups[opm_labels[0]]),
        )
    return result


def structure_grid(
    rows: np.ndarray, nnz: np.ndarray, values: np.ndarray, *, bins: int = 8
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mean `values` binned on a log2 (rows x nnz) grid (NaN where empty)."""
    lr = np.log2(np.maximum(rows, 2))
    ln = np.log2(np.maximum(nnz, 2))
    row_edges = np.linspace(lr.min(), lr.max() + 1e-9, bins + 1)
    nnz_edges = np.linspace(ln.min(), ln.max() + 1e-9, bins + 1)
    grid = np.full((bins, bins), np.nan)
    for i in range(bins):
        for j in range(bins):
            mask = (
                (lr >= row_edges[i])
                & (lr < row_edges[i + 1])
                & (ln >= nnz_edges[j])
                & (ln < nnz_edges[j + 1])
            )
            if mask.any():
                grid[i, j] = float(values[mask].mean())
    return grid, row_edges, nnz_edges


def structure_rows(
    rows: np.ndarray, nnz: np.ndarray, values: np.ndarray, *, bins: int = 8
) -> list[tuple]:
    """Tabular form of :func:`structure_grid` (only populated cells)."""
    lr = np.log2(np.maximum(rows, 2))
    ln = np.log2(np.maximum(nnz, 2))
    row_edges = np.linspace(lr.min(), lr.max() + 1e-9, bins + 1)
    nnz_edges = np.linspace(ln.min(), ln.max() + 1e-9, bins + 1)
    out = []
    for i in range(bins):
        for j in range(bins):
            mask = (
                (lr >= row_edges[i])
                & (lr < row_edges[i + 1])
                & (ln >= nnz_edges[j])
                & (ln < nnz_edges[j + 1])
            )
            if mask.any():
                out.append(
                    (
                        float(row_edges[i]),
                        float(nnz_edges[j]),
                        float(values[mask].mean()),
                        int(mask.sum()),
                    )
                )
    return out
