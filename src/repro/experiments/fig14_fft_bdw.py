"""Figure 14: 3-D FFT on Broadwell."""

from __future__ import annotations

from repro.experiments.curves import curve_experiment
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import fft_sizes
from repro.kernels import FftKernel


@register("fig14", "FFT on Broadwell", "Figure 14")
def run(quick: bool = True) -> ExperimentResult:
    sizes = fft_sizes("broadwell", quick=quick)
    configs = [FftKernel(size=s) for s in sizes]
    fps = [48 * s**3 / 2**20 for s in sizes]
    return curve_experiment(
        "fig14", "3-D FFT on Broadwell", configs, fps, "broadwell"
    )
