"""Figure 6: the Stepping model — cache peaks, valleys, memory plateaus."""

from __future__ import annotations

import numpy as np

from repro.engine import stepping
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.platforms import broadwell
from repro.viz import line_chart


@register("fig6", "Stepping model illustration", "Figure 6")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig6",
        title="Stepping model: problem size vs throughput",
    )
    machine = broadwell()
    n = 60 if quick else 200
    sizes = np.logspace(np.log2(16e3), np.log2(64e9), n, base=2.0)
    workload = stepping.SteppingWorkload(ai=0.0625, mlp=48.0)
    # (A) single cache level vs memory: slope -> peak -> plateau.
    single = stepping.curve(
        machine, sizes=sizes, workload=workload, edram=False, label="one cache level"
    )
    # (B) multi-level hierarchy with the eDRAM L4: staircase of peaks.
    multi = stepping.curve(
        machine, sizes=sizes, workload=workload, edram=True, label="multi-level"
    )
    result.figures.append(
        line_chart(
            sizes,
            {c.label: c.gflops for c in (single, multi)},
            title="Stepping model (Broadwell-shaped hierarchy)",
        )
    )
    for curve in (single, multi):
        result.add_table(
            f"curve_{curve.label.replace(' ', '_').replace('-', '_')}",
            ("size_bytes", "gflops"),
            list(zip(curve.sizes.tolist(), curve.gflops.tolist())),
        )
    peaks_multi = multi.peak_positions()
    result.notes.append(
        f"Multi-level curve exhibits {len(peaks_multi)} cache peaks with "
        "declining heights (bandwidth decreases down the hierarchy) and a "
        f"final memory plateau at {multi.plateau():.2f} GFlop/s."
    )
    return result
