"""Figure 17: SpMV (CSR5) on KNL."""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sparse_exp import sparse_experiment
from repro.kernels import SpmvKernel
from repro.sparse import MatrixDescriptor


def _factory(d: MatrixDescriptor) -> SpmvKernel:
    return SpmvKernel(descriptor=d)


@register("fig17", "SpMV (CSR5) on KNL", "Figure 17")
def run(quick: bool = True) -> ExperimentResult:
    return sparse_experiment(
        "fig17",
        "SpMV (CSR5) on KNL",
        _factory,
        "knl",
        quick=quick,
        structure_heatmap=False,
    )
