"""Shared sweep machinery for the experiment drivers.

The appendix of the paper fixes the exact parameter grids (matrix orders,
tile sizes, grid/array/FFT sizes) per platform; this module encodes them
once, with reduced "quick" variants used by tests and benchmarks.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import telemetry
from repro.engine.calibration import DEFAULT_KNOBS, ModelKnobs
from repro.engine.exectime import RunResult, estimate
from repro.kernels.base import Kernel
from repro.platforms import MachineSpec, McdramMode, broadwell, knl
from repro.platforms.tuning import ALL_MCDRAM_MODES
from repro.sparse import MatrixDescriptor, build_collection
from repro.telemetry import names as tm

# -- parameter grids (appendix A.2) ------------------------------------------


def dense_orders(platform: str, *, quick: bool) -> list[int]:
    """Matrix orders for GEMM/Cholesky (A.2.1: 256..16128 step 512 on BRD,
    256..32000 step 1024 on KNL)."""
    if platform == "broadwell":
        full = list(range(256, 16129, 512))
    else:
        full = list(range(256, 32001, 1024))
    return full[::6] if quick else full


def dense_tiles(*, quick: bool) -> list[int]:
    """Tile sizes (A.2.1: 128..4096 step 128 on both platforms)."""
    full = list(range(128, 4097, 128))
    return full[::6] if quick else full


def stream_sizes(platform: str, *, quick: bool) -> list[int]:
    """Array lengths (A.2.8: 2^4..2^24 on BRD, 2^4..2^26 on KNL)."""
    hi = 24 if platform == "broadwell" else 26
    lo = 4
    exps = range(lo, hi + 1, 2 if quick else 1)
    return [2**e for e in exps]


def stencil_grids(platform: str, *, quick: bool) -> list[tuple[int, int, int]]:
    """3-D grids (A.2.6), doubling from the platform minimum."""
    grids: list[tuple[int, int, int]] = []
    if platform == "broadwell":
        g = (32, 32, 32)
        top = 1024 * 1024 * 512
    else:
        g = (128, 64, 64)
        top = 2048**3
    while g[0] * g[1] * g[2] <= top:
        grids.append(g)
        # Double total size each step, cycling the axis that grows.
        axis = len(grids) % 3
        g = tuple(d * 2 if i == axis else d for i, d in enumerate(g))  # type: ignore[assignment]
    return grids[::2] if quick else grids


def fft_sizes(platform: str, *, quick: bool) -> list[int]:
    """3-D FFT edge lengths (A.2.7: 96..592 step 16 BRD, 96..1088 step 32 KNL)."""
    if platform == "broadwell":
        full = list(range(96, 593, 16))
    else:
        full = list(range(96, 1089, 32))
    return full[::4] if quick else full


def collection_for(*, quick: bool) -> list[MatrixDescriptor]:
    """The 968-matrix collection (a deterministic 96-matrix subsample in
    quick mode)."""
    coll = build_collection()
    return coll[::10] if quick else coll


# -- sweep runners -------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One configuration in a sweep with its per-mode results."""

    params: dict[str, object]
    results: dict[str, RunResult]  # mode label -> result

    def gflops(self, mode: str) -> float:
        return self.results[mode].gflops


def run_broadwell_sweep(
    configs: Iterable[Kernel],
    *,
    knobs: ModelKnobs = DEFAULT_KNOBS,
    machine: MachineSpec | None = None,
) -> list[SweepPoint]:
    """Evaluate kernels on Broadwell with eDRAM on and off."""
    m = machine if machine is not None else broadwell()
    points = []
    for kernel in configs:
        with telemetry.span(
            tm.SPAN_SWEEP_KERNEL, kernel=kernel.name, machine=m.name
        ):
            profile = kernel.profile()
            points.append(
                SweepPoint(
                    params=dict(profile.params),
                    results={
                        "w/ eDRAM": estimate(profile, m, edram=True, knobs=knobs),
                        "w/o eDRAM": estimate(profile, m, edram=False, knobs=knobs),
                    },
                )
            )
        telemetry.counter(tm.METRIC_SWEEP_POINTS).inc()
    return points


MODE_LABELS = {
    McdramMode.OFF: "DDR",
    McdramMode.FLAT: "Flat",
    McdramMode.CACHE: "Cache",
    McdramMode.HYBRID: "Hybrid",
}


def run_knl_sweep(
    configs: Iterable[Kernel],
    *,
    modes: Sequence[McdramMode] = ALL_MCDRAM_MODES,
    knobs: ModelKnobs = DEFAULT_KNOBS,
    machine: MachineSpec | None = None,
) -> list[SweepPoint]:
    """Evaluate kernels on KNL across MCDRAM modes."""
    m = machine if machine is not None else knl()
    points = []
    for kernel in configs:
        with telemetry.span(
            tm.SPAN_SWEEP_KERNEL, kernel=kernel.name, machine=m.name
        ):
            profile = kernel.profile()
            points.append(
                SweepPoint(
                    params=dict(profile.params),
                    results={
                        MODE_LABELS[mode]: estimate(
                            profile, m, mcdram=mode, knobs=knobs
                        )
                        for mode in modes
                    },
                )
            )
        telemetry.counter(tm.METRIC_SWEEP_POINTS).inc()
    return points


# -- summary statistics (Tables 4/5 columns) -----------------------------------


@dataclasses.dataclass(frozen=True)
class ModeSummary:
    """One kernel's with-vs-without comparison over a sweep."""

    best_base: float  # best GFlop/s without the OPM configuration
    best_opm: float  # best GFlop/s with it
    avg_gap: float  # mean (opm - base) over configurations
    max_gap: float
    avg_speedup: float  # geometric-ish mean of per-config speedups
    max_speedup: float


def summarize(
    points: Sequence[SweepPoint], *, base: str, opm: str
) -> ModeSummary:
    """Compute the Table 4/5 statistics for one (base, opm) mode pair."""
    base_vals = np.array([p.gflops(base) for p in points])
    opm_vals = np.array([p.gflops(opm) for p in points])
    if len(base_vals) == 0:
        raise ValueError("empty sweep")
    speedups = opm_vals / np.maximum(base_vals, 1e-12)
    return ModeSummary(
        best_base=float(base_vals.max()),
        best_opm=float(opm_vals.max()),
        avg_gap=float((opm_vals - base_vals).mean()),
        max_gap=float((opm_vals - base_vals).max()),
        avg_speedup=float(speedups.mean()),
        max_speedup=float(speedups.max()),
    )


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, failing loudly on non-positive inputs.

    The power figures' "GM" rows used to clamp values at 1e-9 before
    taking logs, which silently turned a zero or negative ratio — always
    a bug upstream — into a wildly wrong mean. Watts and power ratios
    are positive by construction, so reject anything that is not.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geomean: empty sequence")
    if not np.all(arr > 0):
        first = int(np.flatnonzero(arr <= 0)[0])
        raise ValueError(
            f"geomean: values[{first}] = {arr[first]}: "
            "geometric mean requires positive values"
        )
    return float(np.exp(np.mean(np.log(arr))))


def representative_kernels(
    platform: str,
) -> dict[str, Callable[[], Kernel]]:
    """One mid-sized configuration per kernel (power figures, Eq. 1).

    Footprints are chosen inside the OPM-effective region so the power
    comparison reflects active OPM use, as the paper's power runs do.
    """
    from repro.kernels import (
        CholeskyKernel,
        FftKernel,
        GemmKernel,
        SpmvKernel,
        SptransKernel,
        SptrsvKernel,
        StencilKernel,
        StreamKernel,
    )
    from repro.sparse import from_params

    if platform == "broadwell":
        sparse_desc = from_params("rep", "banded", 500_000, 6_000_000, seed=7)
        return {
            "DGEMM": lambda: GemmKernel(order=8192, tile=256),
            "Cholesky": lambda: CholeskyKernel(order=8192, tile=256),
            "SpMV": lambda: SpmvKernel(descriptor=sparse_desc),
            "SpTRANS": lambda: SptransKernel(
                descriptor=sparse_desc, algorithm="scan"
            ),
            "SpTRSV": lambda: SptrsvKernel(descriptor=sparse_desc),
            "FFT": lambda: FftKernel(size=160),
            "Stencil": lambda: StencilKernel(256, 256, 128, threads=8),
            "Stream": lambda: StreamKernel(n=2**21),
        }
    sparse_desc = from_params("rep", "banded", 40_000_000, 500_000_000, seed=7)
    return {
        "DGEMM": lambda: GemmKernel(order=16384, tile=512),
        "Cholesky": lambda: CholeskyKernel(order=16384, tile=512),
        "SpMV": lambda: SpmvKernel(descriptor=sparse_desc),
        "SpTRANS": lambda: SptransKernel(
            descriptor=sparse_desc, algorithm="merge"
        ),
        "SpTRSV": lambda: SptrsvKernel(descriptor=sparse_desc),
        "FFT": lambda: FftKernel(size=512),
        "Stencil": lambda: StencilKernel(768, 768, 768, threads=256),
        "Stream": lambda: StreamKernel(n=2**27),
    }
