"""Figure 24: iso3dfd stencil on KNL across MCDRAM modes."""

from __future__ import annotations

from repro.experiments.curves import curve_experiment
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import stencil_grids
from repro.kernels import StencilKernel


@register("fig24", "Stencil on KNL", "Figure 24")
def run(quick: bool = True) -> ExperimentResult:
    grids = stencil_grids("knl", quick=quick)
    configs = [StencilKernel(*g, threads=256) for g in grids]
    fps = [3 * 8 * g[0] * g[1] * g[2] / 2**20 for g in grids]
    return curve_experiment(
        "fig24", "iso3dfd stencil on KNL", configs, fps, "knl"
    )
