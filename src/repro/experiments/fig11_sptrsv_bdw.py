"""Figure 11: SpTRSV (level-scheduled) on Broadwell."""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sparse_exp import sparse_experiment
from repro.kernels import SptrsvKernel
from repro.sparse import MatrixDescriptor


def _factory(d: MatrixDescriptor) -> SptrsvKernel:
    return SptrsvKernel(descriptor=d)


@register("fig11", "SpTRSV (level-scheduled) on Broadwell", "Figure 11")
def run(quick: bool = True) -> ExperimentResult:
    return sparse_experiment(
        "fig11",
        "SpTRSV (level-scheduled) on Broadwell",
        _factory,
        "broadwell",
        quick=quick,
        structure_heatmap=True,
    )
