"""Extension study: CPU-side vs memory-side eDRAM placement.

The paper's Section 2.1 contrasts Broadwell's CPU-side victim-cache eDRAM
(tags in L3, latency below DDR) with Skylake's memory-side buffer (above
the DRAM controllers, DDR-class latency) and notes the trade-off but
cannot measure it — Skylake has no BIOS switch. Our substrate can: this
experiment runs the kernel suite on both placements (capacities equalized
to isolate the placement effect) and quantifies where the CPU-side design
wins.

Expected shape: bandwidth-bound kernels see the same OPM bandwidth either
way; latency-sensitive kernels (SpTRSV, low-MLP regions of the sweeps)
prefer the CPU-side placement, whose hit latency is ~0.7x of DDR.
"""

from __future__ import annotations

import dataclasses

from repro.engine.exectime import estimate
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import representative_kernels
from repro.platforms import McdramMode, broadwell, skylake
from repro.platforms.broadwell import edram_spec


@register("ext1", "eDRAM placement: CPU-side vs memory-side", "Extension (Section 2.1)")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext1",
        title="CPU-side (Broadwell) vs memory-side (Skylake) eDRAM",
    )
    # Equalize capacity: give Skylake a 128 MB memory-side eDRAM so only
    # the placement (latency + victim semantics) differs.
    sky = skylake()
    assert sky.opm is not None
    big_ms_edram = dataclasses.replace(
        sky.opm, capacity=edram_spec().capacity
    )
    sky = sky.with_opm(big_ms_edram)
    bdw = broadwell()

    rows = []
    for label, factory in representative_kernels("broadwell").items():
        profile = factory().profile()
        cpu_side = estimate(profile, bdw, edram=True)
        cpu_off = estimate(profile, bdw, edram=False)
        mem_side = estimate(profile, sky, mcdram=McdramMode.CACHE)
        mem_off = estimate(profile, sky, mcdram=McdramMode.OFF)
        cpu_gain = cpu_side.gflops / cpu_off.gflops
        mem_gain = mem_side.gflops / mem_off.gflops
        rows.append(
            (
                label,
                cpu_side.gflops,
                mem_side.gflops,
                cpu_gain,
                mem_gain,
                cpu_gain / mem_gain if mem_gain > 0 else float("inf"),
            )
        )
    result.add_table(
        "placement",
        (
            "kernel",
            "cpu-side GFlop/s",
            "memory-side GFlop/s",
            "cpu-side gain",
            "memory-side gain",
            "placement advantage",
        ),
        rows,
    )
    advantaged = [r[0] for r in rows if r[5] > 1.02]
    result.notes.append(
        "CPU-side placement advantage (>2%) on: "
        + (", ".join(advantaged) if advantaged else "no kernel")
        + " — the latency-sensitive workloads, as Section 2.1 predicts."
    )
    result.notes.append(
        "Memory-side placement trades that latency for simpler "
        "integration and visibility to non-CPU agents (why Skylake "
        "moved it) — a dimension outside this CPU-only study."
    )
    return result
