"""Figure 1: probability density of achievable GEMM throughput.

1024 (matrix order, tile) samples on Broadwell; the Gaussian-KDE density
of the resulting GFlop/s, with vs without eDRAM. The paper's headline
motivation: eDRAM shifts the whole distribution right (more less-optimal
configurations reach near-peak) while barely moving the right edge (raw
peak unchanged).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import gaussian_kde

from repro.engine.exectime import estimate
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.kernels import GemmKernel
from repro.platforms import McdramMode, broadwell, knl
from repro.viz import density_plot

#: Sample count used by the paper.
N_SAMPLES = 1024


@register("fig1", "PDF of achievable GEMM performance", "Figure 1")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig1",
        title="Probability density of achievable GEMM GFlop/s (Broadwell)",
    )
    machine = broadwell()
    n_samples = 192 if quick else N_SAMPLES
    rng = np.random.default_rng(1)
    orders = rng.integers(256 // 64, 16128 // 64, size=n_samples) * 64
    tiles = rng.integers(1, 33, size=n_samples) * 128
    samples = {"w/ eDRAM": [], "w/o eDRAM": []}
    for order, tile in zip(orders, tiles):
        profile = GemmKernel(order=int(order), tile=int(tile)).profile()
        samples["w/ eDRAM"].append(estimate(profile, machine, edram=True).gflops)
        samples["w/o eDRAM"].append(estimate(profile, machine, edram=False).gflops)
    arrays = {k: np.array(v) for k, v in samples.items()}
    grid = np.linspace(0.0, max(a.max() for a in arrays.values()) * 1.05, 160)
    densities = {k: gaussian_kde(a)(grid) for k, a in arrays.items()}
    result.figures.append(
        density_plot(grid, densities, title="Achievable GEMM GFlop/s density")
    )
    result.add_table(
        "density",
        ("gflops", "with_edram", "without_edram"),
        list(
            zip(
                grid.tolist(),
                densities["w/ eDRAM"].tolist(),
                densities["w/o eDRAM"].tolist(),
            )
        ),
    )
    stats_rows = []
    for label, a in arrays.items():
        peak = a.max()
        near_peak = float(np.mean(a >= 0.9 * peak))
        stats_rows.append(
            (label, float(peak), float(np.median(a)), float(a.mean()), near_peak)
        )
    result.add_table(
        "stats", ("mode", "peak", "median", "mean", "frac_within_90pct"), stats_rows
    )
    on, off = arrays["w/ eDRAM"], arrays["w/o eDRAM"]
    result.notes.append(
        f"eDRAM moves the median from {np.median(off):.1f} to "
        f"{np.median(on):.1f} GFlop/s while the raw peak moves only "
        f"{off.max():.1f} -> {on.max():.1f} (the distribution shifts "
        "upper-right, not the right boundary)."
    )
    result.notes.append(
        "Model limitation (see EXPERIMENTS.md): on the 4-core Broadwell, "
        "blocked DGEMM is compute-bound for every tile >= 128 under our "
        "traffic model, so the eDRAM-induced shift the paper measures "
        "(second-order scheduling/prefetch effects) is attenuated here. "
        "The same mechanism is clearly expressed on KNL, below."
    )
    # Supplementary: the identical experiment on KNL (MCDRAM cache vs
    # DDR), where the balance point makes the OPM shift unmistakable.
    knl_machine = knl()
    knl_samples = {"MCDRAM cache": [], "DDR only": []}
    orders_k = rng.integers(256 // 64, 32000 // 64, size=n_samples) * 64
    for order, tile in zip(orders_k, tiles):
        profile = GemmKernel(order=int(order), tile=int(tile)).profile()
        knl_samples["MCDRAM cache"].append(
            estimate(profile, knl_machine, mcdram=McdramMode.CACHE).gflops
        )
        knl_samples["DDR only"].append(
            estimate(profile, knl_machine, mcdram=McdramMode.OFF).gflops
        )
    knl_arrays = {k: np.array(v) for k, v in knl_samples.items()}
    kgrid = np.linspace(
        0.0, max(a.max() for a in knl_arrays.values()) * 1.05, 160
    )
    kdens = {k: gaussian_kde(a)(kgrid) for k, a in knl_arrays.items()}
    result.figures.append(
        density_plot(
            kgrid, kdens, title="Supplementary: achievable GEMM density on KNL"
        )
    )
    result.add_table(
        "stats_knl",
        ("mode", "peak", "median", "mean", "frac_within_90pct"),
        [
            (
                label,
                float(a.max()),
                float(np.median(a)),
                float(a.mean()),
                float(np.mean(a >= 0.9 * a.max())),
            )
            for label, a in knl_arrays.items()
        ],
    )
    return result
