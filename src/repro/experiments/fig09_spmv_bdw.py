"""Figure 9: SpMV (CSR5) on Broadwell."""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sparse_exp import sparse_experiment
from repro.kernels import SpmvKernel
from repro.sparse import MatrixDescriptor


def _factory(d: MatrixDescriptor) -> SpmvKernel:
    return SpmvKernel(descriptor=d)


@register("fig9", "SpMV (CSR5) on Broadwell", "Figure 9")
def run(quick: bool = True) -> ExperimentResult:
    return sparse_experiment(
        "fig9",
        "SpMV (CSR5) on Broadwell",
        _factory,
        "broadwell",
        quick=quick,
        structure_heatmap=True,
    )
