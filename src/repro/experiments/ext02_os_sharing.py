"""Extension study: OS-level OPM sharing among co-running applications.

Paper Section 8, question (1): how should an OS distribute OPM among
applications "based on fairness, efficiency and consistency"? We co-run
a bandwidth-hungry stencil, a cache-friendly SpMV and a compute-bound
GEMM on the KNL and score four partitioning policies on exactly those
three axes (system throughput = efficiency, Jain index = fairness,
worst-tenant speedup = consistency).

Expected shape: utility-max wins throughput but can starve the tenant
with flat marginal utility; equal-share wins fairness; proportional sits
between; free-for-all pays a contention tax everywhere.
"""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.kernels import GemmKernel, SpmvKernel, StencilKernel
from repro.os import (
    EqualShare,
    FreeForAll,
    ProportionalShare,
    UtilityMaxShare,
    compare_policies,
)
from repro.platforms import knl
from repro.sparse import from_params


def _scenario(quick: bool):
    """Three tenants whose working sets straddle any slice size, so the
    OPM slice has smooth marginal utility, plus one compute-bound tenant
    with ~zero marginal utility (the starvation probe)."""
    spmv_small = SpmvKernel(
        descriptor=from_params("t-small", "grid3d", 20_000_000, 300_000_000, seed=5)
    )
    spmv_large = SpmvKernel(
        descriptor=from_params("t-large", "random", 40_000_000, 900_000_000, seed=6)
    )
    stencil = StencilKernel(640, 640, 640, threads=256)
    gemm = GemmKernel(order=12288, tile=512)
    return [
        ("spmv-4g", spmv_small.profile()),
        ("spmv-11g", spmv_large.profile()),
        ("stencil-6g", stencil.profile()),
        ("gemm", gemm.profile()),
    ]


@register("ext2", "OS-level OPM sharing policies", "Extension (Section 8.1)")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext2",
        title="Multi-programmed MCDRAM sharing: policy comparison on KNL",
    )
    machine = knl()
    grain = (512 << 20) if quick else (64 << 20)
    policies = [
        EqualShare(),
        ProportionalShare(),
        UtilityMaxShare(grain=grain),
        FreeForAll(),
    ]
    outcomes = compare_policies(_scenario(quick), machine, policies)
    rows = [
        (
            o.policy,
            o.system_throughput,
            o.weighted_speedup,
            o.jain_fairness,
            o.min_speedup,
        )
        for o in outcomes
    ]
    result.add_table(
        "policies",
        (
            "policy",
            "system GFlop/s (efficiency)",
            "weighted speedup",
            "Jain index (fairness)",
            "worst tenant (consistency)",
        ),
        rows,
    )
    per_tenant = []
    for o in outcomes:
        for t in o.tenants:
            per_tenant.append(
                (
                    o.policy,
                    t.name,
                    t.slice_bytes / 2**30,
                    t.solo_gflops,
                    t.corun_gflops,
                    t.speedup_vs_solo,
                )
            )
    result.add_table(
        "tenants",
        ("policy", "tenant", "slice_gib", "solo GFlop/s", "corun GFlop/s", "vs solo"),
        per_tenant,
    )
    best_eff = max(outcomes, key=lambda o: o.system_throughput)
    best_fair = max(outcomes, key=lambda o: o.jain_fairness)
    result.notes.append(
        f"Efficiency-optimal policy: {best_eff.policy} "
        f"({best_eff.system_throughput:.0f} GFlop/s); fairness-optimal: "
        f"{best_fair.policy} (Jain {best_fair.jain_fairness:.3f})."
    )
    util = next(o for o in outcomes if o.policy == "utility-max")
    starved = [t.name for t in util.tenants if t.slice_bytes == 0]
    if starved:
        result.notes.append(
            "utility-max starves tenants with flat marginal utility "
            f"({', '.join(starved)}) and reinvests their OPM in the "
            "capacity-sensitive tenants — efficient here, but a policy an "
            "OS would need guardrails around (the paper's 'consistency' "
            "criterion)."
        )
    return result
