"""Table 5: summarized statistics for the MCDRAM modes on KNL.

Per kernel and per mode (flat/cache/hybrid vs DDR): best GFlop/s, average
and maximum performance gap, average and maximum speedup — over the same
sweeps as Figures 15-25. Negative entries (flat GEMM, hybrid SpTRANS,
SpTRSV) are expected: the paper's Table 5 has them too.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import (
    collection_for,
    dense_orders,
    dense_tiles,
    fft_sizes,
    run_knl_sweep,
    stencil_grids,
    stream_sizes,
    summarize,
)
from repro.kernels import (
    CholeskyKernel,
    FftKernel,
    GemmKernel,
    SpmvKernel,
    SptransKernel,
    SptrsvKernel,
    StencilKernel,
    StreamKernel,
)
from repro.kernels.base import Kernel

MODES = ("Flat", "Cache", "Hybrid")


def knl_configs(quick: bool) -> dict[str, Sequence[Kernel]]:
    """The per-kernel KNL sweeps behind Figures 15-25."""
    orders = dense_orders("knl", quick=quick)
    tiles = dense_tiles(quick=quick)
    dense_grid = [(o, t) for t in tiles for o in orders]
    if quick:
        dense_grid = dense_grid[:: max(1, len(dense_grid) // 48)]
    collection = collection_for(quick=quick)
    return {
        "GEMM": [GemmKernel(order=o, tile=t) for o, t in dense_grid],
        "Cholesky": [CholeskyKernel(order=o, tile=t) for o, t in dense_grid],
        "SpMV": [SpmvKernel(descriptor=d) for d in collection],
        "SpTRANS": [
            SptransKernel(descriptor=d, algorithm="merge") for d in collection
        ],
        "SpTRSV": [SptrsvKernel(descriptor=d) for d in collection],
        "Stream": [StreamKernel(n=n) for n in stream_sizes("knl", quick=quick)],
        "Stencil": [
            StencilKernel(*g, threads=256)
            for g in stencil_grids("knl", quick=quick)
        ],
        "FFT": [FftKernel(size=s) for s in fft_sizes("knl", quick=quick)],
    }


@register("table5", "MCDRAM mode summary statistics", "Table 5")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table5",
        title="Summarized statistics for MCDRAM modes (Table 5)",
    )
    rows = []
    for kernel, configs in knl_configs(quick).items():
        points = run_knl_sweep(list(configs))
        summaries = {
            mode: summarize(points, base="DDR", opm=mode) for mode in MODES
        }
        any_summary = next(iter(summaries.values()))
        rows.append(
            (
                kernel,
                any_summary.best_base,
                "/".join(f"{summaries[m].best_opm:.1f}" for m in MODES),
                "/".join(f"{summaries[m].avg_gap:.2f}" for m in MODES),
                "/".join(f"{summaries[m].max_gap:.1f}" for m in MODES),
                "/".join(f"{summaries[m].avg_speedup:.3f}" for m in MODES),
                "/".join(f"{summaries[m].max_speedup:.3f}" for m in MODES),
            )
        )
    result.add_table(
        "summary",
        (
            "kernel",
            "DDR best GFlop/s",
            "Flat/Cache/Hybrid best",
            "avg gap (F/C/H)",
            "max gap (F/C/H)",
            "avg speedup (F/C/H)",
            "max speedup (F/C/H)",
        ),
        rows,
    )
    result.notes.append(
        "Expected sign structure (paper Table 5): MCDRAM gains are not "
        "uniformly positive — flat-mode GEMM (straddling past capacity) and "
        "SpTRSV (latency-bound) can fall below DDR."
    )
    return result
