"""Figure 7: GEMM heatmaps on Broadwell, with and without eDRAM."""

from __future__ import annotations

from repro.experiments.dense import heatmap_experiment
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.kernels import GemmKernel


@register("fig7", "GEMM on Broadwell (heatmaps)", "Figure 7")
def run(quick: bool = True) -> ExperimentResult:
    return heatmap_experiment(
        "fig7",
        "GEMM on Broadwell (order x tile)",
        lambda order, tile: GemmKernel(order=order, tile=tile),
        "broadwell",
        quick=quick,
    )
