"""Figure 30: tuning the OPM hardware itself.

(A) scaling eDRAM capacity shifts the cache peak rightward; (B) scaling
its bandwidth amplifies the peak. Both derived from the Stepping model.
"""

from __future__ import annotations

import numpy as np

from repro.engine import stepping
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.platforms import broadwell
from repro.viz import line_chart


@register("fig30", "Tuning eDRAM hardware for throughput", "Figure 30")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig30",
        title="OPM hardware what-if: capacity and bandwidth scaling",
    )
    machine = broadwell()
    n = 60 if quick else 200
    sizes = np.logspace(np.log2(1e6), np.log2(16e9), n, base=2.0)
    workload = stepping.SteppingWorkload(ai=0.0625, mlp=48)

    cap_curves = {
        f"cap x{f:g}": stepping.hardware_whatif(
            machine, capacity_x=f, workload=workload, sizes=sizes
        )
        for f in (1.0, 2.0, 4.0)
    }
    bw_curves = {
        f"bw x{f:g}": stepping.hardware_whatif(
            machine, bandwidth_x=f, workload=workload, sizes=sizes
        )
        for f in (1.0, 2.0, 4.0)
    }
    result.figures.append(
        line_chart(
            sizes,
            {k: c.gflops for k, c in cap_curves.items()},
            title="(A) eDRAM capacity scaling: the peak shifts right",
        )
    )
    result.figures.append(
        line_chart(
            sizes,
            {k: c.gflops for k, c in bw_curves.items()},
            title="(B) eDRAM bandwidth scaling: the peak grows taller",
        )
    )
    for label, curves in (("capacity", cap_curves), ("bandwidth", bw_curves)):
        result.add_table(
            f"{label}_scaling",
            ("size_bytes", *(curves.keys())),
            [
                (s, *(float(c.gflops[i]) for c in curves.values()))
                for i, s in enumerate(sizes.tolist())
            ],
        )
    # Quantify: last size at which the OPM still outperforms the plateau.
    base = cap_curves["cap x1"]
    plateau = base.plateau()
    for label, curve in cap_curves.items():
        region = sizes[curve.gflops > plateau * 1.05]
        if len(region):
            result.notes.append(
                f"{label}: OPM-effective up to {region.max() / 2**20:.0f} MB."
            )
    for label, curve in bw_curves.items():
        result.notes.append(
            f"{label}: peak throughput {float(curve.gflops.max()):.2f} GFlop/s."
        )
    return result
