"""Table 2: scientific-kernel characteristics."""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.kernels.characteristics import table2


@register("table2", "Kernel characteristics", "Table 2")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table2",
        title="Scientific kernel characteristics (Table 2)",
    )
    rows = [
        (
            row.name,
            row.implementation,
            row.dwarf,
            row.klass,
            row.complexity,
            f"{row.operations:.4g}",
            f"{row.bytes:.4g}",
            row.arithmetic_intensity,
            f"{row.threads_broadwell}/{row.threads_knl}",
        )
        for row in table2()
    ]
    result.add_table(
        "characteristics",
        (
            "kernel",
            "implementation",
            "dwarf",
            "class",
            "complexity",
            "operations",
            "bytes",
            "ai",
            "threads (BRD/KNL)",
        ),
        rows,
    )
    return result
