"""Extension study: hardware prefetching under the kernel access patterns.

The analytic engine's latency story assumes the memory system extracts
concurrency from the access stream; on real parts the L2/LLC prefetchers
do much of that work. This experiment drives the *exact* simulator with
the instrumented kernel traces (:mod:`repro.kernels.traces`) under no
prefetching, next-line, and stride prefetching, and reports LLC hit rate,
DRAM traffic, and prefetch accuracy per kernel.

Expected shape: streaming kernels (STREAM, stencil planes) are covered by
next-line; SpMV's x-gathers are covered by neither (the gather stream has
no stride) — which is exactly why SpMV stays bandwidth/latency-bound and
benefits from OPM capacity rather than prefetch.
"""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.kernels import GemmKernel, SpmvKernel, StencilKernel, StreamKernel
from repro.kernels.traces import kernel_trace_chunks
from repro.memory import for_broadwell
from repro.platforms import broadwell
from repro.sparse import generators

PREFETCHERS = (None, "next-line", "stride")


def _workloads(quick: bool):
    scale = 1 if quick else 2
    return {
        "stream": StreamKernel(n=6000 * scale),
        "gemm": GemmKernel(order=48 * scale, tile=16),
        "spmv-random": SpmvKernel.from_matrix(
            generators.random_uniform(600 * scale, 9000 * scale, seed=1)
        ),
        "spmv-banded": SpmvKernel.from_matrix(
            generators.banded(600 * scale, 9000 * scale, seed=1)
        ),
        "stencil": StencilKernel(20 * scale, 20, 20),
    }


@register("ext4", "Prefetching under kernel access patterns", "Extension (MLP substrate)")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext4",
        title="Prefetcher coverage on exact kernel traces (Broadwell shape)",
    )
    machine = broadwell()
    rows = []
    for name, kernel in _workloads(quick).items():
        for kind in PREFETCHERS:
            # Regenerate the chunk stream per configuration: one rep's
            # arrays are built vectorized either way, and streaming them
            # keeps peak memory at one chunk instead of the whole trace.
            h = for_broadwell(machine, scale=0.001, prefetch=kind)
            stats = h.run_batched(kernel_trace_chunks(kernel, reps=2))
            pf = h._prefetcher
            rows.append(
                (
                    name,
                    kind or "none",
                    stats["L3"].hit_rate,
                    stats["DDR3"].accesses,
                    pf.stats.accuracy if pf is not None else float("nan"),
                )
            )
    result.add_table(
        "coverage",
        ("kernel", "prefetcher", "llc_hit_rate", "dram_reads", "pf_accuracy"),
        rows,
    )
    by = {(r[0], r[1]): r for r in rows}
    stream_gain = (
        by[("stream", "next-line")][2] - by[("stream", "none")][2]
    )
    spmv_gain = (
        by[("spmv-random", "next-line")][2] - by[("spmv-random", "none")][2]
    )
    result.notes.append(
        f"Next-line prefetch lifts STREAM's LLC hit rate by "
        f"{stream_gain:+.2f} but SpMV(random) by only {spmv_gain:+.2f} — "
        "irregular gathers defeat prefetching, which is why OPM *capacity* "
        "(not prefetch) is what rescues sparse kernels in the main study."
    )
    result.notes.append(
        "Prefetch accuracy column: useful/issued; wasted prefetches show "
        "up as extra DRAM reads (traffic honesty — see "
        "tests/test_prefetch.py::test_prefetch_traffic_accounted)."
    )
    result.notes.append(
        "The global stride detector scores ~0 on STREAM: the three "
        "interleaved arrays alias its single stride register — real parts "
        "use per-stream tables, which is why next-line remains the "
        "workhorse here."
    )
    return result
