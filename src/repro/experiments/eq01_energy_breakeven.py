"""Equation (1): the OPM energy breakeven condition, per kernel.

E_w/OPM / E_w/oOPM = (1+W)/(1+P) — the OPM saves energy when its
performance gain P exceeds its power increase W (paper: on average
W = 8.6% for eDRAM and 6.9% for MCDRAM flat).
"""

from __future__ import annotations

from repro.engine.exectime import estimate
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import representative_kernels
from repro.platforms import McdramMode, broadwell, knl
from repro.power import compare, energy_ratio, measure


@register("eq1", "OPM energy breakeven (Equation 1)", "Equation (1)")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="eq1",
        title="Energy breakeven per kernel (Equation 1)",
    )
    # Broadwell: eDRAM on vs physically off.
    bdw_on = broadwell(edram=True)
    bdw_off = broadwell(edram=False)
    rows = []
    for label, factory in representative_kernels("broadwell").items():
        profile = factory().profile()
        r_on = estimate(profile, bdw_on, edram=True)
        r_off = estimate(profile, bdw_off, edram=False)
        s_on = measure(r_on, bdw_on, opm_powered=True)
        s_off = measure(r_off, bdw_off, opm_powered=False)
        cmp = compare(s_on, s_off)
        rows.append(
            (
                label,
                cmp.perf_gain,
                cmp.power_increase,
                cmp.energy_ratio,
                "yes" if cmp.saves_energy else "no",
            )
        )
    result.add_table(
        "edram_breakeven",
        ("kernel", "perf_gain_P", "power_increase_W", "energy_ratio", "saves_energy"),
        rows,
    )
    # KNL: MCDRAM flat vs DDR (MCDRAM static power burned in both).
    machine = knl()
    rows = []
    for label, factory in representative_kernels("knl").items():
        profile = factory().profile()
        r_flat = estimate(profile, machine, mcdram=McdramMode.FLAT)
        r_ddr = estimate(profile, machine, mcdram=McdramMode.OFF)
        s_flat = measure(r_flat, machine, opm_powered=True)
        s_ddr = measure(r_ddr, machine, opm_powered=True)
        cmp = compare(s_flat, s_ddr)
        rows.append(
            (
                label,
                cmp.perf_gain,
                cmp.power_increase,
                cmp.energy_ratio,
                "yes" if cmp.saves_energy else "no",
            )
        )
    result.add_table(
        "mcdram_breakeven",
        ("kernel", "perf_gain_P", "power_increase_W", "energy_ratio", "saves_energy"),
        rows,
    )
    result.notes.append(
        "Closed form: OPM saves energy iff P > W; e.g. a W of 8.6% "
        f"requires a speedup above {1 + 0.086:.3f}x "
        f"(ratio at exactly P=W: {energy_ratio(0.086, 0.086):.3f})."
    )
    return result
