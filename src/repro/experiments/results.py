"""Experiment result containers.

Every experiment driver returns an :class:`ExperimentResult`: one or more
named :class:`DataTable` objects (the numbers behind the paper artifact),
pre-rendered ASCII figures, and free-form notes. Results can be dumped as
CSV files (one per table), rendered for the terminal, or round-tripped
through plain dicts (``as_dict`` / ``from_dict``) — the serialization the
runtime's result cache and worker processes rely on.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.viz.csvout import to_csv_string, write_csv


def _plain_value(value: object) -> object:
    """Coerce a cell to a JSON-representable builtin.

    Result rows mix strs, ints, floats, and numpy scalars; numpy scalars
    format identically to their builtin counterparts but (``np.int64``)
    do not survive ``json.dumps``, so anything with ``.item()`` is
    unwrapped — including ``np.float64``, which *is* a float subclass but
    would otherwise make the round-trip type-unstable.
    """
    if value is None or type(value) in (bool, int, float, str):
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    if isinstance(value, (bool, int, float, str)):  # plain subclasses
        return value
    return str(value)


@dataclasses.dataclass
class DataTable:
    """A named rectangular table of results."""

    name: str
    columns: tuple[str, ...]
    rows: list[tuple]

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"table {self.name!r}: row width {len(row)} != "
                    f"{len(self.columns)} columns"
                )

    def column(self, name: str) -> list:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_csv(self) -> str:
        return to_csv_string(self.columns, self.rows)

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe representation (numpy scalars unwrapped)."""
        return {
            "name": self.name,
            "columns": list(self.columns),
            "rows": [[_plain_value(v) for v in row] for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DataTable":
        return cls(
            name=data["name"],
            columns=tuple(data["columns"]),
            rows=[tuple(row) for row in data["rows"]],
        )

    def render(self, *, max_rows: int = 24) -> str:
        """Fixed-width text rendering, elided in the middle when long.

        A table with zero rows is legitimate (telemetry tables in
        ``--quiet`` quick runs): it renders as header + separator. The
        list-based ``max`` keeps the width computation safe for that case.
        """
        widths = [
            max([len(c), *(len(_fmt(r[i])) for r in self.rows)])
            for i, c in enumerate(self.columns)
        ]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        sep = "-" * len(header)
        body_rows = self.rows
        elided = None
        if len(body_rows) > max_rows:
            head = body_rows[: max_rows // 2]
            tail = body_rows[-(max_rows - max_rows // 2) :]
            elided = len(body_rows) - len(head) - len(tail)
            body_rows = head + tail
        lines = [self.name, header, sep]
        for i, row in enumerate(body_rows):
            if elided and i == max_rows // 2:
                lines.append(f"... ({elided} rows elided) ...")
            lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclasses.dataclass
class ExperimentResult:
    """The output of one experiment driver."""

    experiment_id: str
    title: str
    tables: list[DataTable] = dataclasses.field(default_factory=list)
    figures: list[str] = dataclasses.field(default_factory=list)  # ASCII art
    notes: list[str] = dataclasses.field(default_factory=list)

    def table(self, name: str) -> DataTable:
        for t in self.tables:
            if t.name == name:
                return t
        raise KeyError(name)

    def add_table(
        self, name: str, columns: Sequence[str], rows: Sequence[tuple]
    ) -> DataTable:
        t = DataTable(name=name, columns=tuple(columns), rows=list(rows))
        self.tables.append(t)
        return t

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.extend(self.figures)
        parts.extend(t.render() for t in self.tables)
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {n}" for n in self.notes)
        return "\n\n".join(parts)

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe representation; inverse of :meth:`from_dict`.

        ``from_dict(as_dict(r)).render() == r.render()`` holds for every
        driver output: renders format numpy scalars and builtins the same
        way, so cached and freshly computed results print byte-identically.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "tables": [t.as_dict() for t in self.tables],
            "figures": list(self.figures),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            tables=[DataTable.from_dict(t) for t in data["tables"]],
            figures=list(data["figures"]),
            notes=list(data["notes"]),
        )

    def write_csvs(self, out_dir: str | Path) -> list[Path]:
        """One CSV per table under ``out_dir/<experiment_id>/``."""
        out = Path(out_dir) / self.experiment_id
        return [
            write_csv(out / f"{t.name}.csv", t.columns, t.rows)
            for t in self.tables
        ]
