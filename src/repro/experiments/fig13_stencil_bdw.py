"""Figure 13: iso3dfd stencil on Broadwell."""

from __future__ import annotations

from repro.experiments.curves import curve_experiment
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import stencil_grids
from repro.kernels import StencilKernel


@register("fig13", "Stencil on Broadwell", "Figure 13")
def run(quick: bool = True) -> ExperimentResult:
    grids = stencil_grids("broadwell", quick=quick)
    grids = [g for g in grids if min(g) >= 32]
    configs = [StencilKernel(*g, threads=8) for g in grids]
    fps = [3 * 8 * g[0] * g[1] * g[2] / 2**20 for g in grids]
    return curve_experiment(
        "fig13", "iso3dfd stencil on Broadwell", configs, fps, "broadwell"
    )
