"""Figure 4: the arithmetic-intensity spectrum of the eight kernels."""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.kernels.characteristics import table2


@register("fig4", "Arithmetic intensity spectrum", "Figure 4")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title="Arithmetic-intensity spectrum (n=1024, nnz=1024, M=32)",
    )
    rows = [
        (row.name, row.klass, f"{row.operations:.4g}", f"{row.bytes:.4g}",
         row.arithmetic_intensity)
        for row in sorted(table2(), key=lambda r: r.arithmetic_intensity)
    ]
    result.add_table(
        "spectrum",
        ("kernel", "class", "operations", "bytes", "arithmetic_intensity"),
        rows,
    )
    result.notes.append(
        "Kernels span the spectrum from strongly bandwidth-bound (Stream, "
        "AI=0.0625) to strongly compute-bound (GEMM, AI=n/16)."
    )
    return result
