"""Figure 26: Broadwell power (package + DRAM), with vs without eDRAM."""

from __future__ import annotations

from repro.engine.exectime import estimate
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import geomean, representative_kernels
from repro.platforms import broadwell
from repro.power import measure
from repro.viz import bar_chart


@register("fig26", "Broadwell power breakdown", "Figure 26")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig26",
        title="Broadwell average power: package and DRAM, w/ vs w/o eDRAM",
    )
    m_on = broadwell(edram=True)
    m_off = broadwell(edram=False)
    labels, rows = [], []
    pkg_on, pkg_off, dram_on, dram_off = [], [], [], []
    for label, factory in representative_kernels("broadwell").items():
        profile = factory().profile()
        s_on = measure(estimate(profile, m_on, edram=True), m_on, opm_powered=True)
        s_off = measure(
            estimate(profile, m_off, edram=False), m_off, opm_powered=False
        )
        labels.append(label)
        pkg_on.append(s_on.package_w)
        pkg_off.append(s_off.package_w)
        dram_on.append(s_on.dram_w)
        dram_off.append(s_off.dram_w)
        rows.append(
            (label, s_off.package_w, s_on.package_w, s_off.dram_w, s_on.dram_w,
             s_on.total_w / s_off.total_w - 1.0)
        )
    # Geometric mean row, as in the paper's "GM" bars. geomean raises
    # on non-positive inputs — a zero watt reading or ratio is a bug,
    # not something to clamp away.
    gm_increase = geomean([r[5] + 1.0 for r in rows]) - 1.0
    rows.append(
        ("GM", geomean(pkg_off), geomean(pkg_on), geomean(dram_off),
         geomean(dram_on), gm_increase)
    )
    labels.append("GM")
    pkg_on.append(geomean(pkg_on))
    pkg_off.append(geomean(pkg_off))
    dram_on.append(geomean(dram_on))
    dram_off.append(geomean(dram_off))
    result.add_table(
        "power",
        ("kernel", "package_w/o", "package_w/", "dram_w/o", "dram_w/",
         "total_increase"),
        rows,
    )
    result.figures.append(
        bar_chart(
            labels,
            {
                "pkg w/o eDRAM": pkg_off,
                "pkg w/  eDRAM": pkg_on,
                "dram w/o": dram_off,
                "dram w/ ": dram_on,
            },
            title="Broadwell average power (W)",
        )
    )
    # Quote the same statistic as the table's GM row — mixing the
    # arithmetic mean into the note while the row is geometric made the
    # two "averages" silently disagree.
    result.notes.append(
        f"Enabling eDRAM raises total power by {gm_increase:.1%} "
        "(geometric mean across kernels; paper: ~8.6%, +5.6 W)."
    )
    return result
