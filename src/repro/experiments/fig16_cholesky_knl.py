"""Figure 16: Cholesky heatmaps on KNL across the four MCDRAM modes."""

from __future__ import annotations

from repro.experiments.dense import heatmap_experiment
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.kernels import CholeskyKernel


@register("fig16", "Cholesky on KNL (4-mode heatmaps)", "Figure 16")
def run(quick: bool = True) -> ExperimentResult:
    return heatmap_experiment(
        "fig16",
        "Cholesky on KNL (order x tile)",
        lambda order, tile: CholeskyKernel(order=order, tile=tile),
        "knl",
        quick=quick,
    )
