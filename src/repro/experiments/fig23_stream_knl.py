"""Figure 23: STREAM TRIAD on KNL across MCDRAM modes."""

from __future__ import annotations

from repro.experiments.curves import curve_experiment
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import stream_sizes
from repro.kernels import StreamKernel


@register("fig23", "Stream on KNL", "Figure 23")
def run(quick: bool = True) -> ExperimentResult:
    sizes = stream_sizes("knl", quick=quick)
    # Extend beyond MCDRAM capacity to expose the flat-mode cliff.
    sizes = sizes + [sizes[-1] * 4, sizes[-1] * 16]
    configs = [StreamKernel(n=n) for n in sizes]
    fps = [3 * 8 * n / 2**20 for n in sizes]
    return curve_experiment(
        "fig23", "STREAM TRIAD on KNL", configs, fps, "knl"
    )
