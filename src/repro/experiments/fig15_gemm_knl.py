"""Figure 15: GEMM heatmaps on KNL across the four MCDRAM modes."""

from __future__ import annotations

from repro.experiments.dense import heatmap_experiment
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.kernels import GemmKernel


@register("fig15", "GEMM on KNL (4-mode heatmaps)", "Figure 15")
def run(quick: bool = True) -> ExperimentResult:
    return heatmap_experiment(
        "fig15",
        "GEMM on KNL (order x tile)",
        lambda order, tile: GemmKernel(order=order, tile=tile),
        "knl",
        quick=quick,
    )
