"""Extension study: was the paper right to evaluate in quadrant mode?

Section 3.3 fixes the KNL cluster mode to quadrant, asserting it
"normally achieves the optimal performance without explicit NUMA
complexity". This experiment checks the assertion in the model: the
kernel suite under all-to-all, quadrant, and SNC-4 at naive (0.25) and
perfect (1.0) NUMA locality.

Expected shape: quadrant beats all-to-all everywhere; SNC-4 beats
quadrant only with NUMA-tuned placement, and then by little — vindicating
the paper's choice for black-box application binaries.
"""

from __future__ import annotations

from repro.engine.exectime import estimate
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import representative_kernels
from repro.platforms import McdramMode, knl
from repro.platforms.cluster import ClusterMode, apply_cluster_mode

CONFIGS = (
    ("all-to-all", ClusterMode.ALL2ALL, 0.25),
    ("quadrant", ClusterMode.QUADRANT, 0.25),
    ("SNC-4 naive", ClusterMode.SNC4, 0.25),
    ("SNC-4 tuned", ClusterMode.SNC4, 1.0),
)


@register("ext7", "KNL cluster modes", "Extension (Section 3.3)")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext7",
        title="Cluster modes: all-to-all vs quadrant vs SNC-4 (flat MCDRAM)",
    )
    base = knl()
    rows = []
    for kernel_name, factory in representative_kernels("knl").items():
        profile = factory().profile()
        gflops = {}
        for label, mode, local in CONFIGS:
            machine = apply_cluster_mode(base, mode, local_fraction=local)
            gflops[label] = estimate(
                profile, machine, mcdram=McdramMode.FLAT
            ).gflops
        rows.append((kernel_name, *(gflops[label] for label, _, _ in CONFIGS)))
    result.add_table(
        "modes",
        ("kernel", *(label for label, _, _ in CONFIGS)),
        rows,
    )
    wins_a2a = sum(1 for r in rows if r[2] >= r[1] - 1e-9)
    snc_naive_loses = sum(1 for r in rows if r[3] <= r[2] + 1e-9)
    tuned_gain = max(
        (r[4] / r[2] for r in rows if r[2] > 0), default=1.0
    )
    result.notes.append(
        f"Quadrant >= all-to-all on {wins_a2a}/{len(rows)} kernels; "
        f"naive SNC-4 <= quadrant on {snc_naive_loses}/{len(rows)}; "
        f"perfectly tuned SNC-4 gains at most {tuned_gain:.2f}x over "
        "quadrant — supporting the paper's Section 3.3 default."
    )
    return result
