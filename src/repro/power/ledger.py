"""Per-level energy accounting on top of the trace-driven simulator.

The RAPL model in :mod:`repro.power.rapl` prices a run from the outside
(two average-power domains over the wall time). This module prices it
from the inside: every hit, miss, fill and writeback the exact simulator
counted at every hierarchy level is multiplied by that level's
:class:`~repro.platforms.spec.EnergyCoefficients`, yielding joules *per
level* — the breakdown the paper's Section 5 can only infer from the two
RAPL counters.

The ledger obeys the same discipline as the dirty-flow ledger it is
built on (:meth:`repro.memory.hierarchy.Hierarchy.dirty_ledger`): the
books must close. :meth:`EnergyLedger.conservation_violations` audits

* **energy**: the per-level itemized sums equal the independently
  accumulated grand total (the two totals are summed in different
  association orders, so a bookkeeping slip in either shows up as a
  floating-point mismatch far above tolerance);
* **writebacks**: the writebacks priced at the memory levels equal the
  hierarchy's :meth:`~repro.memory.hierarchy.Hierarchy.memory_writebacks`
  — energy is only charged for dirty lines that really arrived;
* **dirty flow**: the underlying hierarchy's own conservation laws held
  when the ledger was cut (violations are carried into the audit).

:func:`price_run` combines the ledger with a bandwidth-bottleneck time
model into one energy/time point, the unit of the ``ext8`` Pareto sweep
and the ``repro energy`` CLI.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING

from repro import telemetry
from repro.memory.allocator import PAGE, NumaAllocator
from repro.memory.hierarchy import (
    Hierarchy,
    for_broadwell,
    for_knl,
    hierarchy_allocator,
)
from repro.memory.stats import HierarchyStats
from repro.platforms import broadwell, knl
from repro.platforms.spec import EnergyCoefficients, MachineSpec
from repro.platforms.tuning import McdramMode
from repro.power.rapl import _dram_coefficients
from repro.telemetry import names as tm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.base import Kernel

#: Relative tolerance for the energy-conservation law. The two totals
#: differ only in floating-point association order, so anything beyond a
#: few ulps of drift indicates a genuine bookkeeping bug.
CONSERVATION_REL_TOL = 1e-9


@dataclasses.dataclass(frozen=True)
class LevelEnergy:
    """One hierarchy level's counters priced into joules."""

    name: str
    accesses: int
    hits: int
    misses: int
    fills: int
    writebacks: int
    hit_j: float
    miss_j: float
    fill_j: float
    writeback_j: float

    @property
    def dynamic_j(self) -> float:
        """Total dynamic joules charged to this level."""
        return self.hit_j + self.miss_j + self.fill_j + self.writeback_j

    def as_dict(self) -> dict[str, float | int | str]:
        return {
            "name": self.name,
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "writebacks": self.writebacks,
            "hit_j": self.hit_j,
            "miss_j": self.miss_j,
            "fill_j": self.fill_j,
            "writeback_j": self.writeback_j,
            "dynamic_j": self.dynamic_j,
        }


@dataclasses.dataclass(frozen=True)
class EnergyLedger:
    """Per-level dynamic energy of one simulated run.

    ``total_dynamic_j`` is accumulated independently of the per-level
    itemization (grouped by counter kind across levels rather than by
    level), so the conservation audit cross-checks two genuinely
    different summations of the same counters.
    """

    kernel: str
    machine: str
    levels: tuple[LevelEnergy, ...]
    total_dynamic_j: float
    #: Level names that count as memory for the writeback law (DRAM and,
    #: on flat/hybrid KNL, the flat MCDRAM partition).
    memory_level_names: tuple[str, ...]
    #: ``Hierarchy.memory_writebacks()`` at the time the ledger was cut.
    memory_writebacks: int
    #: ``Hierarchy.conservation_violations()`` at the same instant.
    hierarchy_violations: tuple[str, ...]

    def __getitem__(self, name: str) -> LevelEnergy:
        for level in self.levels:
            if level.name == name:
                return level
        raise KeyError(name)

    @property
    def dynamic_j(self) -> float:
        """Itemized total: sum of the per-level energies."""
        return sum(level.dynamic_j for level in self.levels)

    @property
    def memory_writeback_j(self) -> float:
        """Joules paid writing dirty lines back at the memory levels."""
        return sum(
            level.writeback_j
            for level in self.levels
            if level.name in self.memory_level_names
        )

    def conservation_violations(
        self, *, rel_tol: float = CONSERVATION_REL_TOL
    ) -> list[str]:
        """Audit the ledger; an empty list means the books close."""
        violations = list(self.hierarchy_violations)
        itemized = self.dynamic_j
        if not math.isclose(
            itemized, self.total_dynamic_j, rel_tol=rel_tol, abs_tol=1e-18
        ):
            violations.append(
                f"energy: per-level sum {itemized!r} J != "
                f"independent total {self.total_dynamic_j!r} J"
            )
        priced_wb = sum(
            level.writebacks
            for level in self.levels
            if level.name in self.memory_level_names
        )
        if priced_wb != self.memory_writebacks:
            violations.append(
                f"writebacks: priced {priced_wb} at memory levels "
                f"{list(self.memory_level_names)} != "
                f"{self.memory_writebacks} counted by the hierarchy"
            )
        return violations

    def as_dict(self) -> dict[str, object]:
        return {
            "kernel": self.kernel,
            "machine": self.machine,
            "levels": [level.as_dict() for level in self.levels],
            "total_dynamic_j": self.total_dynamic_j,
            "memory_writebacks": self.memory_writebacks,
            "memory_writeback_j": self.memory_writeback_j,
        }


def _energy_table(machine: MachineSpec) -> dict[str, EnergyCoefficients | None]:
    """Map every level name the simulator can emit to its coefficients."""
    table: dict[str, EnergyCoefficients | None] = {
        lvl.name: lvl.energy for lvl in machine.caches
    }
    if machine.opm is not None:
        # The OPM spec prices all of its guises: the Broadwell victim
        # cache (stats carry the OPM's own name), cache-mode MCDRAM, and
        # the flat MCDRAM partition.
        table[machine.opm.name] = machine.opm.energy
        table["MCDRAM"] = machine.opm.energy
        table["MCDRAM-flat"] = machine.opm.energy
    table[machine.dram.name] = machine.dram.energy
    return table


def ledger_from_hierarchy(
    hierarchy: Hierarchy,
    machine: MachineSpec,
    *,
    kernel: str = "trace",
) -> EnergyLedger:
    """Price a simulated hierarchy's counters into an :class:`EnergyLedger`.

    Every level the simulation touched must carry
    :class:`~repro.platforms.spec.EnergyCoefficients` on ``machine``;
    a level without them fails loudly (same contract as the DRAM power
    coefficients in :mod:`repro.power.rapl` — no implicit defaults).
    """
    with telemetry.span(
        tm.SPAN_POWER_LEDGER, machine=machine.name, kernel=kernel
    ) as sp:
        stats = hierarchy.stats()
        table = _energy_table(machine)
        levels: list[LevelEnergy] = []
        # Independent accumulation, grouped by counter kind (picojoules
        # until the single final scaling) — see EnergyLedger docstring.
        hit_pj = miss_pj = fill_pj = wb_pj = 0.0
        for lvl in stats.levels:
            if lvl.name not in table:
                raise ValueError(
                    f"level {lvl.name!r}: machine {machine.name!r} "
                    f"describes no such level (knows {sorted(table)})"
                )
            coef = table[lvl.name]
            if coef is None:
                raise ValueError(
                    f"level {lvl.name!r} on machine {machine.name!r} "
                    "declares no energy coefficients: set "
                    "MemLevelSpec.energy / OpmSpec.energy to price it"
                )
            levels.append(
                LevelEnergy(
                    name=lvl.name,
                    accesses=lvl.accesses,
                    hits=lvl.hits,
                    misses=lvl.misses,
                    fills=lvl.fills,
                    writebacks=lvl.writebacks,
                    hit_j=coef.price(hits=lvl.hits),
                    miss_j=coef.price(misses=lvl.misses),
                    fill_j=coef.price(fills=lvl.fills),
                    writeback_j=coef.price(writebacks=lvl.writebacks),
                )
            )
            hit_pj += lvl.hits * coef.hit_pj
            miss_pj += lvl.misses * coef.miss_pj
            fill_pj += lvl.fills * coef.fill_pj
            wb_pj += lvl.writebacks * coef.writeback_pj
        memory_names = tuple(
            name
            for name in (machine.dram.name, "MCDRAM-flat")
            if any(lvl.name == name for lvl in stats.levels)
        )
        ledger = EnergyLedger(
            kernel=kernel,
            machine=machine.name,
            levels=tuple(levels),
            total_dynamic_j=1e-12 * (hit_pj + miss_pj + fill_pj + wb_pj),
            memory_level_names=memory_names,
            memory_writebacks=hierarchy.memory_writebacks(),
            hierarchy_violations=tuple(hierarchy.conservation_violations()),
        )
        sp.set_attr("levels", len(ledger.levels))
        sp.set_attr("dynamic_j", ledger.total_dynamic_j)
    telemetry.counter(tm.METRIC_POWER_LEDGERS).inc()
    violations = ledger.conservation_violations()
    if violations:
        telemetry.counter(tm.METRIC_POWER_CONSERVATION_FAILURES).inc(
            len(violations)
        )
    for level in ledger.levels:
        telemetry.record_counts(
            tm.power_level_prefix(level.name),
            {
                "hit_j": level.hit_j,
                "miss_j": level.miss_j,
                "fill_j": level.fill_j,
                "writeback_j": level.writeback_j,
            },
        )
    return ledger


# -- energy/time pricing of one configuration --------------------------------


@dataclasses.dataclass(frozen=True)
class PricedRun:
    """One kernel on one platform/mode, priced on both axes.

    ``seconds`` comes from a bandwidth-bottleneck model over the
    simulated per-level traffic (floored by the compute time at DP
    peak); ``energy_j`` is background power times that wall time plus
    the ledger's per-access dynamic energy.
    """

    kernel: str
    platform: str
    mode: str
    machine: str
    seconds: float
    background_w: float
    energy_j: float
    flops: float
    ledger: EnergyLedger

    @property
    def dynamic_j(self) -> float:
        return self.ledger.total_dynamic_j

    @property
    def gflops(self) -> float:
        return self.flops / self.seconds / 1e9

    @property
    def edp_js(self) -> float:
        """Energy-delay product (J*s)."""
        return self.energy_j * self.seconds

    @property
    def gflops_per_watt(self) -> float:
        """Energy efficiency; equals gflops / average watts."""
        return self.flops / 1e9 / self.energy_j

    def as_dict(self) -> dict[str, object]:
        return {
            "kernel": self.kernel,
            "platform": self.platform,
            "mode": self.mode,
            "machine": self.machine,
            "seconds": self.seconds,
            "background_w": self.background_w,
            "dynamic_j": self.dynamic_j,
            "energy_j": self.energy_j,
            "edp_js": self.edp_js,
            "gflops": self.gflops,
            "gflops_per_watt": self.gflops_per_watt,
        }


def _modelled_seconds(
    stats: HierarchyStats, machine: MachineSpec, flops: float
) -> float:
    """Bandwidth-bottleneck wall time for one simulated run.

    Each level's traffic must stream through its bandwidth; the slowest
    level sets the pace, floored by the compute time at DP peak so a
    run that touches almost no memory still takes non-zero time.
    """
    bw_gbs: dict[str, float] = {lvl.name: lvl.bandwidth for lvl in machine.caches}
    if machine.opm is not None:
        bw_gbs[machine.opm.name] = machine.opm.bandwidth
        bw_gbs["MCDRAM"] = machine.opm.bandwidth
        bw_gbs["MCDRAM-flat"] = machine.opm.bandwidth
    bw_gbs[machine.dram.name] = machine.dram.bandwidth
    transfer = max(
        (lvl.traffic_bytes / (bw_gbs[lvl.name] * 1e9) for lvl in stats.levels),
        default=0.0,
    )
    compute = flops / (machine.dp_peak_gflops * 1e9)
    return max(transfer, compute)


def price_run(
    kernel: "Kernel",
    machine: MachineSpec,
    hierarchy: Hierarchy,
    *,
    platform: str,
    mode: str,
    opm_powered: bool = True,
    reps: int = 1,
) -> PricedRun:
    """Simulate ``kernel`` on ``hierarchy`` and price the run end to end."""
    stats = kernel.simulate_batched(hierarchy, reps=reps)
    ledger = ledger_from_hierarchy(hierarchy, machine, kernel=kernel.name)
    flops = float(kernel.flops()) * reps
    seconds = _modelled_seconds(stats, machine, flops)
    achieved = min(1.0, flops / seconds / 1e9 / machine.dp_peak_gflops)
    standby_w, _ = _dram_coefficients(machine)
    background_w = (
        machine.base_package_power_w
        + machine.max_dynamic_power_w * achieved
        + standby_w
    )
    if machine.opm is not None and opm_powered:
        background_w += machine.opm.static_power_w
    return PricedRun(
        kernel=kernel.name,
        platform=platform,
        mode=mode,
        machine=machine.name,
        seconds=seconds,
        background_w=background_w,
        energy_j=background_w * seconds + ledger.total_dynamic_j,
        flops=flops,
        ledger=ledger,
    )


# -- platform configurations and demo kernels ---------------------------------

#: The six (platform, mode) points of the energy Pareto sweep: both
#: Broadwell eDRAM BIOS settings and the four KNL MCDRAM modes the
#: paper evaluates.
ENERGY_CONFIGS: tuple[tuple[str, str], ...] = (
    ("broadwell", "off"),
    ("broadwell", "on"),
    ("knl", "off"),
    ("knl", "cache"),
    ("knl", "flat"),
    ("knl", "hybrid"),
)


def build_config(
    platform: str,
    mode: str,
    *,
    scale: float = 0.001,
    flat_capacity: int | None = None,
) -> tuple[MachineSpec, Hierarchy, bool]:
    """Resolve one sweep point to ``(machine, hierarchy, opm_powered)``.

    ``scale`` shrinks the simulated capacities (the standard scaled-down
    technique of the conservation tests) so small kernel instances
    exercise realistic hit ratios. ``flat_capacity`` overrides the flat
    MCDRAM partition's byte capacity on flat/hybrid KNL (ignored
    elsewhere) — :func:`price_config` uses it to put the kernel under
    the capacity pressure the paper studies at full scale.
    """
    if platform == "broadwell":
        if mode not in ("off", "on"):
            raise ValueError(
                f"mode = {mode!r}: broadwell eDRAM modes are 'off' and 'on'"
            )
        edram = mode == "on"
        machine = broadwell(edram=edram)
        return machine, for_broadwell(machine, edram=edram, scale=scale), edram
    if platform == "knl":
        try:
            mcdram = McdramMode(mode)
        except ValueError:
            raise ValueError(
                f"mode = {mode!r}: KNL modes are "
                f"{', '.join(m.value for m in McdramMode)}"
            ) from None
        machine = knl(mcdram)
        allocator = None
        if flat_capacity is not None and mcdram.flat_fraction > 0:
            assert machine.dram.capacity is not None
            allocator = NumaAllocator(
                flat_capacity, machine.dram.capacity, prefer_mcdram=True
            )
        hierarchy = for_knl(machine, mcdram, allocator=allocator, scale=scale)
        # MCDRAM cannot be powered down — static draw even in OFF mode.
        return machine, hierarchy, True
    raise ValueError(
        f"platform = {platform!r}: energy configs cover 'broadwell' and 'knl'"
    )


def demo_kernel(name: str) -> "Kernel":
    """A small, fast-to-simulate instance of one paper kernel.

    Sized like the differential-test zoo: big enough to spill the scaled
    hierarchies of :func:`build_config`, small enough that pricing all
    six configurations stays interactive (the ``repro energy`` CLI and
    the quick ``ext8`` sweep both build kernels here).
    """
    from repro.kernels import (
        CholeskyKernel,
        FftKernel,
        GemmKernel,
        SpmvKernel,
        SptransKernel,
        SptrsvKernel,
        StencilKernel,
        StreamKernel,
    )
    from repro.sparse import generators

    builders = {
        "stream": lambda: StreamKernel(n=1500),
        "gemm": lambda: GemmKernel(order=20, tile=8),
        "cholesky": lambda: CholeskyKernel(order=20, tile=8),
        "spmv": lambda: SpmvKernel.from_matrix(
            generators.random_uniform(150, 900, seed=1)
        ),
        "sptrans": lambda: SptransKernel.from_matrix(
            generators.random_uniform(120, 600, seed=2)
        ),
        "sptrsv": lambda: SptrsvKernel.from_matrix(
            generators.banded(120, 600, seed=3)
        ),
        "stencil": lambda: StencilKernel(nx=18, ny=18, nz=18, steps=1),
        "fft": lambda: FftKernel(size=8),
    }
    if name not in builders:
        raise ValueError(
            f"kernel = {name!r}: choose from {', '.join(sorted(builders))}"
        )
    return builders[name]()


def price_config(
    kernel: "Kernel",
    platform: str,
    mode: str,
    *,
    scale: float = 0.001,
    reps: int = 1,
) -> PricedRun:
    """Build one configuration and price ``kernel`` on it.

    On flat/hybrid KNL the kernel's footprint is placed through the
    hierarchy's NUMA allocator first (MCDRAM-preferred, like ``numactl
    -p``): the trace layout and the allocator both hand out consecutive
    page-aligned addresses from the same origin, so the allocation
    covers exactly the span the trace touches. The flat partition is
    sized to the mode's flat fraction of that footprint, reproducing at
    demo scale the capacity-pressure regime the paper studies at full
    scale (flat mode fits the problem; hybrid spills half to DDR).
    """
    footprint = int(kernel.profile().footprint_bytes)
    flat_capacity = None
    if platform == "knl":
        # Page-ceil plus one page of headroom, so flat mode (fraction
        # 1.0) really fits the whole page-rounded trace layout while
        # hybrid holds only its half.
        wanted = int(McdramMode(mode).flat_fraction * footprint)
        flat_capacity = -(-wanted // PAGE) * PAGE + PAGE
    machine, hierarchy, opm_powered = build_config(
        platform, mode, scale=scale, flat_capacity=flat_capacity
    )
    allocator = hierarchy_allocator(hierarchy)
    if allocator is not None:
        # Margin absorbs the trace layout's per-array page rounding.
        allocator.allocate(kernel.name, footprint + 16 * PAGE)
    return price_run(
        kernel,
        machine,
        hierarchy,
        platform=platform,
        mode=mode,
        opm_powered=opm_powered,
        reps=reps,
    )


def pareto_front(runs: list[PricedRun]) -> list[bool]:
    """Non-domination flags on the (seconds, energy_j) plane.

    ``runs[i]`` is dominated when some other run is no worse on both
    axes and strictly better on at least one.
    """
    flags = []
    for p in runs:
        dominated = any(
            q is not p
            and q.seconds <= p.seconds
            and q.energy_j <= p.energy_j
            and (q.seconds < p.seconds or q.energy_j < p.energy_j)
            for q in runs
        )
        flags.append(not dominated)
    return flags
