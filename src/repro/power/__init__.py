"""Power and energy modelling (RAPL-style domains, Eq. (1) breakeven)."""

from repro.power.energy import (
    EnergyComparison,
    breakeven_gain,
    compare,
    energy_delay_product,
    energy_ratio,
)
from repro.power.rapl import PowerSample, measure

__all__ = [
    "EnergyComparison",
    "PowerSample",
    "breakeven_gain",
    "compare",
    "energy_delay_product",
    "energy_ratio",
    "measure",
]
