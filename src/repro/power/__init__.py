"""Power and energy modelling (RAPL-style domains, Eq. (1) breakeven,
per-level energy ledgers)."""

from repro.power.energy import (
    EnergyComparison,
    breakeven_gain,
    compare,
    energy_delay_product,
    energy_ratio,
)
from repro.power.ledger import (
    ENERGY_CONFIGS,
    EnergyLedger,
    LevelEnergy,
    PricedRun,
    build_config,
    demo_kernel,
    ledger_from_hierarchy,
    pareto_front,
    price_config,
    price_run,
)
from repro.power.rapl import PowerSample, measure

__all__ = [
    "ENERGY_CONFIGS",
    "EnergyComparison",
    "EnergyLedger",
    "LevelEnergy",
    "PowerSample",
    "PricedRun",
    "breakeven_gain",
    "build_config",
    "compare",
    "demo_kernel",
    "energy_delay_product",
    "energy_ratio",
    "ledger_from_hierarchy",
    "measure",
    "pareto_front",
    "price_config",
    "price_run",
]
