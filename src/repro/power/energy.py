"""Energy analysis — the paper's Equation (1) and energy-delay products.

Equation (1): with the OPM bringing a performance gain of ``P`` (fraction)
at the cost of ``W`` (fraction) extra average power,

    E_w/OPM / E_w/oOPM = (1 + W) / (1 + P) < 1

so the OPM saves energy exactly when the performance gain exceeds the
power increase. The paper's measured averages — +8.6% power for eDRAM,
+6.9% for MCDRAM flat — set the breakeven speedups it quotes.
"""

from __future__ import annotations

import dataclasses

from repro.power.rapl import PowerSample


@dataclasses.dataclass(frozen=True)
class EnergyComparison:
    """OPM-on vs OPM-off energy accounting for one kernel."""

    kernel: str
    perf_gain: float  # P: fractional speedup from the OPM
    power_increase: float  # W: fractional average-power increase
    energy_ratio: float  # E_opm / E_base (< 1 means the OPM saves energy)

    @property
    def saves_energy(self) -> bool:
        return self.energy_ratio < 1.0


def energy_ratio(perf_gain: float, power_increase: float) -> float:
    """Equation (1): E_w/OPM / E_w/oOPM = (1 + W) / (1 + P)."""
    if perf_gain <= -1.0:
        raise ValueError("perf_gain must be > -1")
    return (1.0 + power_increase) / (1.0 + perf_gain)


def breakeven_gain(power_increase: float) -> float:
    """Minimum fractional speedup for the OPM to save energy (= W)."""
    return power_increase


def compare(
    with_opm: PowerSample, without_opm: PowerSample
) -> EnergyComparison:
    """Build the Eq. (1) comparison from two modelled runs.

    Degenerate samples (zero duration or zero power — and hence zero
    energy) cannot form the equation's ratios; they are rejected with a
    :class:`ValueError` naming the offending field instead of surfacing
    as a bare ``ZeroDivisionError`` from deep inside the arithmetic.
    """
    if with_opm.kernel != without_opm.kernel:
        raise ValueError("samples must be of the same kernel")
    for label, sample in (("with_opm", with_opm), ("without_opm", without_opm)):
        if sample.seconds <= 0:
            raise ValueError(
                f"{label}.seconds = {sample.seconds}: "
                "sample duration must be positive to form Eq. (1) ratios"
            )
        if sample.total_w <= 0:
            raise ValueError(
                f"{label}.total_w = {sample.total_w}: "
                "sample power must be positive to form Eq. (1) ratios"
            )
    perf_gain = without_opm.seconds / with_opm.seconds - 1.0
    power_increase = with_opm.total_w / without_opm.total_w - 1.0
    return EnergyComparison(
        kernel=with_opm.kernel,
        perf_gain=perf_gain,
        power_increase=power_increase,
        energy_ratio=with_opm.energy_j / without_opm.energy_j,
    )


def energy_delay_product(sample: PowerSample, *, exponent: int = 1) -> float:
    """EDP (or ED^2P with exponent=2) — the alternative metric the paper
    mentions for users weighting performance against energy."""
    if exponent < 1:
        raise ValueError("exponent must be >= 1")
    return sample.energy_j * sample.seconds**exponent
