"""RAPL-style power model (paper Section 5.2, Figures 26/27).

The paper measures package and DRAM power with RAPL/PAPI. We model the
same two domains from quantities the execution engine already produces:

* **Package** = baseline + dynamic (proportional to achieved fraction of
  FLOP peak) + OPM contribution. The OPM draws static power whenever it
  is powered — eDRAM can be physically disabled in BIOS (no static draw
  when off), MCDRAM cannot (its static power is burned even in the
  "w/o MCDRAM" configuration) — plus an activity term proportional to its
  bandwidth utilization (``OpmSpec.active_power_w``).
* **DRAM** = standby + a per-GB/s activity term. Using the OPM *reduces*
  DRAM power by absorbing traffic, which is how the paper's Figure 27
  shows flat-mode MCDRAM sometimes lowering DDR (and even total) power.

Every coefficient lives on the platform spec
(:class:`~repro.platforms.spec.MachineSpec` for the DRAM domain,
:class:`~repro.platforms.spec.OpmSpec` for the OPM terms). A platform
that has not declared its DRAM coefficients fails loudly here — the old
behaviour of silently assuming Broadwell-ish defaults gave wrong power
for any new machine without any signal.
"""

from __future__ import annotations

import dataclasses

from repro.engine.exectime import RunResult
from repro.platforms.spec import MachineSpec


@dataclasses.dataclass(frozen=True)
class PowerSample:
    """Average power over one kernel run, RAPL-domain style."""

    kernel: str
    machine: str
    package_w: float
    dram_w: float
    seconds: float

    @property
    def total_w(self) -> float:
        return self.package_w + self.dram_w

    @property
    def energy_j(self) -> float:
        return self.total_w * self.seconds


def _dram_coefficients(machine: MachineSpec) -> tuple[float, float]:
    """The machine's declared (standby W, W per GB/s) pair, or raise."""
    if machine.dram_standby_w is None or machine.dram_w_per_gbs is None:
        raise ValueError(
            f"machine {machine.name!r} (arch {machine.arch!r}) declares no "
            "DRAM power coefficients: set dram_standby_w and dram_w_per_gbs "
            "on its MachineSpec (the bundled broadwell/knl/skylake models "
            "declare them; there are no implicit defaults)"
        )
    return machine.dram_standby_w, machine.dram_w_per_gbs


def measure(
    result: RunResult,
    machine: MachineSpec,
    *,
    opm_powered: bool = True,
    achieved_fraction: float | None = None,
) -> PowerSample:
    """Model the average power of a completed run.

    ``opm_powered`` reflects the BIOS switch: False only for eDRAM-off
    runs (MCDRAM cannot be powered down; pass True even for the
    "w/o MCDRAM" mode, per paper Section 5.2).
    """
    if achieved_fraction is None:
        achieved_fraction = min(1.0, result.gflops / machine.dp_peak_gflops)
    standby_w, w_per_gbs = _dram_coefficients(machine)
    package = (
        machine.base_package_power_w
        + machine.max_dynamic_power_w * achieved_fraction
    )
    if machine.opm is not None and opm_powered:
        package += machine.opm.static_power_w
        opm_rate_gbs = (
            result.opm_bytes / result.seconds / 1e9 if result.seconds > 0 else 0.0
        )
        utilization = min(1.0, opm_rate_gbs / machine.opm.bandwidth)
        package += machine.opm.active_power_w * utilization
    dram_rate_gbs = (
        result.dram_bytes / result.seconds / 1e9 if result.seconds > 0 else 0.0
    )
    dram = standby_w + w_per_gbs * min(dram_rate_gbs, machine.dram.bandwidth)
    return PowerSample(
        kernel=result.kernel,
        machine=machine.name,
        package_w=package,
        dram_w=dram,
        seconds=result.seconds,
    )
