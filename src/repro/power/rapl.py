"""RAPL-style power model (paper Section 5.2, Figures 26/27).

The paper measures package and DRAM power with RAPL/PAPI. We model the
same two domains from quantities the execution engine already produces:

* **Package** = baseline + dynamic (proportional to achieved fraction of
  FLOP peak) + OPM contribution. The OPM draws static power whenever it
  is powered — eDRAM can be physically disabled in BIOS (no static draw
  when off), MCDRAM cannot (its static power is burned even in the
  "w/o MCDRAM" configuration) — plus an activity term proportional to its
  bandwidth utilization.
* **DRAM** = standby + a per-GB/s activity term. Using the OPM *reduces*
  DRAM power by absorbing traffic, which is how the paper's Figure 27
  shows flat-mode MCDRAM sometimes lowering DDR (and even total) power.
"""

from __future__ import annotations

import dataclasses

from repro.engine.exectime import RunResult
from repro.platforms.spec import MachineSpec

#: OPM activity power at full bandwidth utilization (watts).
EDRAM_ACTIVE_W = 5.0
MCDRAM_ACTIVE_W = 12.0

#: DRAM domain: standby plus per-GB/s activity.
DRAM_STANDBY_W = {"Broadwell": 1.8, "Knights Landing": 6.0}
DRAM_W_PER_GBS = {"Broadwell": 0.09, "Knights Landing": 0.06}


@dataclasses.dataclass(frozen=True)
class PowerSample:
    """Average power over one kernel run, RAPL-domain style."""

    kernel: str
    machine: str
    package_w: float
    dram_w: float
    seconds: float

    @property
    def total_w(self) -> float:
        return self.package_w + self.dram_w

    @property
    def energy_j(self) -> float:
        return self.total_w * self.seconds


def measure(
    result: RunResult,
    machine: MachineSpec,
    *,
    opm_powered: bool = True,
    achieved_fraction: float | None = None,
) -> PowerSample:
    """Model the average power of a completed run.

    ``opm_powered`` reflects the BIOS switch: False only for eDRAM-off
    runs (MCDRAM cannot be powered down; pass True even for the
    "w/o MCDRAM" mode, per paper Section 5.2).
    """
    if achieved_fraction is None:
        achieved_fraction = min(1.0, result.gflops / machine.dp_peak_gflops)
    package = (
        machine.base_package_power_w
        + machine.max_dynamic_power_w * achieved_fraction
    )
    if machine.opm is not None and opm_powered:
        package += machine.opm.static_power_w
        opm_rate_gbs = (
            result.opm_bytes / result.seconds / 1e9 if result.seconds > 0 else 0.0
        )
        utilization = min(1.0, opm_rate_gbs / machine.opm.bandwidth)
        active = (
            EDRAM_ACTIVE_W
            if machine.opm.kind == "victim-cache"
            else MCDRAM_ACTIVE_W
        )
        package += active * utilization
    dram_rate_gbs = (
        result.dram_bytes / result.seconds / 1e9 if result.seconds > 0 else 0.0
    )
    dram = DRAM_STANDBY_W.get(machine.arch, 2.0) + DRAM_W_PER_GBS.get(
        machine.arch, 0.08
    ) * min(dram_rate_gbs, machine.dram.bandwidth)
    return PowerSample(
        kernel=result.kernel,
        machine=machine.name,
        package_w=package,
        dram_w=dram,
        seconds=result.seconds,
    )
