"""Artifact-style runners — the paper's Appendix A interface.

The SC '17 artifact runs each kernel as a standalone executable with
documented arguments and a three-part output: "Dataset statistics,
elapsed execution time, GFLOPs throughput", collected into the
``opm_rawdata`` repository. This module reproduces that interface on top
of the model so downstream tooling written against the original artifact
format keeps working: one ``run_*`` function per kernel taking the
appendix's argument names, producing :class:`ArtifactRecord` rows, and
:func:`write_raw_data` laying them out as per-kernel/per-mode CSV files.

Example (appendix A.2.1: ``./test_dgemm --m=4096 --n=4096 --k=4096
--nb=256`` on BRD)::

    rec = run_dgemm(m=4096, n=4096, k=4096, nb=256, platform="broadwell",
                    mode="on")
    print(rec.render())
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Sequence

from repro.engine.exectime import estimate
from repro.kernels import (
    CholeskyKernel,
    FftKernel,
    GemmKernel,
    SpmvKernel,
    SptransKernel,
    SptrsvKernel,
    StencilKernel,
    StreamKernel,
)
from repro.platforms import McdramMode, broadwell, knl
from repro.sparse import CSRMatrix, MatrixDescriptor, from_matrix, read_mm
from repro.viz.csvout import write_csv

#: Mode vocabulary: Broadwell accepts on/off; KNL accepts the Table 1 set.
BROADWELL_MODES = ("off", "on")
KNL_MODES = ("off", "cache", "flat", "hybrid")


@dataclasses.dataclass(frozen=True)
class ArtifactRecord:
    """One artifact-style output row."""

    kernel: str
    platform: str
    mode: str
    arguments: str
    dataset_stats: str
    elapsed_seconds: float
    gflops: float

    def render(self) -> str:
        """The appendix's three-part output format."""
        return (
            f"{self.dataset_stats}\n"
            f"elapsed execution time: {self.elapsed_seconds:.6f} s\n"
            f"GFLOPs throughput: {self.gflops:.4f}"
        )

    def as_row(self) -> tuple:
        return (
            self.kernel,
            self.platform,
            self.mode,
            self.arguments,
            self.dataset_stats,
            self.elapsed_seconds,
            self.gflops,
        )


_COLUMNS = (
    "kernel",
    "platform",
    "mode",
    "arguments",
    "dataset_stats",
    "elapsed_seconds",
    "gflops",
)


def _evaluate(profile, platform: str, mode: str):
    if platform == "broadwell":
        if mode not in BROADWELL_MODES:
            raise ValueError(f"Broadwell mode must be one of {BROADWELL_MODES}")
        machine = broadwell()
        return machine, estimate(profile, machine, edram=(mode == "on"))
    if platform == "knl":
        if mode not in KNL_MODES:
            raise ValueError(f"KNL mode must be one of {KNL_MODES}")
        machine = knl()
        return machine, estimate(profile, machine, mcdram=McdramMode(mode))
    raise ValueError(f"unknown platform {platform!r}")


def run_dgemm(*, m: int, n: int, k: int, nb: int, platform: str, mode: str) -> ArtifactRecord:
    """Appendix A.2.1: ``./test_dgemm --m= --n= --k= --nb=``."""
    if not (m == n == k):
        raise ValueError("the study sweeps square GEMM (m == n == k)")
    kernel = GemmKernel(order=m, tile=nb)
    _, result = _evaluate(kernel.profile(), platform, mode)
    return ArtifactRecord(
        kernel="dgemm",
        platform=platform,
        mode=mode,
        arguments=f"--m={m} --n={n} --k={k} --nb={nb}",
        dataset_stats=f"dense matrix {m}x{n}, random values",
        elapsed_seconds=result.seconds,
        gflops=result.gflops,
    )


def run_dpotrf(*, m: int, n: int, k: int, nb: int, platform: str, mode: str) -> ArtifactRecord:
    """Appendix A.2.2: ``./test_dpotrf --m= --n= --k= --nb=``."""
    kernel = CholeskyKernel(order=m, tile=nb)
    _, result = _evaluate(kernel.profile(), platform, mode)
    return ArtifactRecord(
        kernel="dpotrf",
        platform=platform,
        mode=mode,
        arguments=f"--m={m} --n={n} --k={k} --nb={nb}",
        dataset_stats=f"SPD matrix {m}x{m}, random values",
        elapsed_seconds=result.seconds,
        gflops=result.gflops,
    )


def _sparse_record(
    name: str,
    kernel_cls,
    matrix: CSRMatrix | MatrixDescriptor | str | Path,
    platform: str,
    mode: str,
    **kernel_kwargs,
) -> ArtifactRecord:
    if isinstance(matrix, (str, Path)):
        csr = read_mm(matrix)
        descriptor = from_matrix(Path(matrix).stem, csr)
        kernel = kernel_cls(descriptor=descriptor, matrix=csr, **kernel_kwargs)
        arg = str(matrix)
    elif isinstance(matrix, CSRMatrix):
        descriptor = from_matrix("input", matrix)
        kernel = kernel_cls(descriptor=descriptor, matrix=matrix, **kernel_kwargs)
        arg = "<in-memory matrix>"
    else:
        descriptor = matrix
        kernel = kernel_cls(descriptor=descriptor, **kernel_kwargs)
        arg = f"<descriptor {descriptor.name}>"
    _, result = _evaluate(kernel.profile(), platform, mode)
    return ArtifactRecord(
        kernel=name,
        platform=platform,
        mode=mode,
        arguments=arg,
        dataset_stats=(
            f"matrix {descriptor.n_rows}x{descriptor.n_rows}, "
            f"nnz={descriptor.nnz}"
        ),
        elapsed_seconds=result.seconds,
        gflops=result.gflops,
    )


def run_spmv(matrix, *, platform: str, mode: str) -> ArtifactRecord:
    """Appendix A.2.3: ``./spmv matrix.mtx``."""
    return _sparse_record("spmv", SpmvKernel, matrix, platform, mode)


def run_sptranspose(matrix, *, platform: str, mode: str) -> ArtifactRecord:
    """Appendix A.2.4: ``VER=5|7 ./sptranspose matrix.mtx`` —
    ScanTrans on Broadwell, MergeTrans on KNL, as the artifact selects."""
    algorithm = "scan" if platform == "broadwell" else "merge"
    return _sparse_record(
        "sptrans", SptransKernel, matrix, platform, mode, algorithm=algorithm
    )


def run_trsv(matrix, *, platform: str, mode: str) -> ArtifactRecord:
    """Appendix A.2.5: ``./trsv_test matrix.mtx`` (lower triangle)."""
    return _sparse_record("sptrsv", SptrsvKernel, matrix, platform, mode)


def run_stencil(*, gridsz: tuple[int, int, int], platform: str, mode: str) -> ArtifactRecord:
    """Appendix A.2.6: ``./stencil-run.sh ... gridsz -b 64 -bz 96``."""
    threads = 8 if platform == "broadwell" else 256
    kernel = StencilKernel(*gridsz, threads=threads)
    _, result = _evaluate(kernel.profile(), platform, mode)
    return ArtifactRecord(
        kernel="stencil",
        platform=platform,
        mode=mode,
        arguments=f"-g {gridsz[0]}x{gridsz[1]}x{gridsz[2]} -b 64 -bz 96",
        dataset_stats=f"3D grid {gridsz[0]}x{gridsz[1]}x{gridsz[2]}, random values",
        elapsed_seconds=result.seconds,
        gflops=result.gflops,
    )


def run_fft(*, size: int, platform: str, mode: str) -> ArtifactRecord:
    """Appendix A.2.7: ``./bench -s irf{size}x{size}x{size} -opatient``."""
    kernel = FftKernel(size=size)
    _, result = _evaluate(kernel.profile(), platform, mode)
    threads = 8 if platform == "broadwell" else 256
    return ArtifactRecord(
        kernel="fft",
        platform=platform,
        mode=mode,
        arguments=f"-s irf{size}x{size}x{size} -opatient -onthreads={threads}",
        dataset_stats=f"3D dataset {size}^3, random values",
        elapsed_seconds=result.seconds,
        gflops=result.gflops,
    )


def run_stream(*, arraysz: int, platform: str, mode: str) -> ArtifactRecord:
    """Appendix A.2.8: STREAM compiled with ``-DSTREAM_ARRAY_SIZE=...``."""
    kernel = StreamKernel(n=arraysz)
    _, result = _evaluate(kernel.profile(), platform, mode)
    return ArtifactRecord(
        kernel="stream",
        platform=platform,
        mode=mode,
        arguments=f"-DSTREAM_ARRAY_SIZE={arraysz}",
        dataset_stats=f"array of {arraysz} doubles, random values",
        elapsed_seconds=result.seconds,
        gflops=result.gflops,
    )


def write_raw_data(records: Sequence[ArtifactRecord], out_dir: str | Path) -> list[Path]:
    """Lay records out like the ``opm_rawdata`` repository: one CSV per
    (kernel, platform), rows spanning modes and inputs."""
    out = Path(out_dir)
    groups: dict[tuple[str, str], list[ArtifactRecord]] = {}
    for rec in records:
        groups.setdefault((rec.kernel, rec.platform), []).append(rec)
    paths = []
    for (kernel, platform), recs in sorted(groups.items()):
        path = out / platform / f"{kernel}.csv"
        write_csv(path, _COLUMNS, [r.as_row() for r in recs])
        paths.append(path)
    return paths
