"""Minimal HTTP/1.1 on asyncio streams.

The service speaks plain HTTP so ``curl`` and any load generator work
against it, but the repo takes no new runtime dependencies: this module
hand-rolls the small, strict subset the advisor needs — JSON request
bodies, JSON responses, ``Content-Length`` framing, keep-alive. It is
deliberately not a general server: no chunked encoding, no pipelining
guarantees beyond serial request/response on one connection, and hard
limits on header and body sizes so a misbehaving client cannot balloon
memory.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

#: Hard limits; exceeding either is a protocol error (400/413).
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

#: The status lines we actually emit.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Malformed HTTP from the client; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request: method, path, headers, decoded JSON body."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """Decode the body as JSON (empty body reads as ``None``)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}") from exc

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise ProtocolError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    path = target.split("?", 1)[0] or "/"

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise ProtocolError(400, "chunked transfer encoding not supported")
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError as exc:
        raise ProtocolError(400, f"bad Content-Length: {raw_length!r}") from exc
    if length < 0:
        raise ProtocolError(400, f"bad Content-Length: {raw_length!r}")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"body exceeds {MAX_BODY_BYTES} bytes")

    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(400, "truncated request body") from exc
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def render_response(
    status: int, payload: Any, *, keep_alive: bool = True
) -> bytes:
    """Serialize one JSON response with Content-Length framing.

    ``sort_keys`` keeps the wire bytes deterministic for a given payload,
    which is what lets the differential tests compare served answers
    byte-for-byte against the offline engine path.
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    reason = STATUS_REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def error_payload(status: int, message: str) -> dict[str, Any]:
    """The uniform JSON error body."""
    return {"error": {"status": status, "message": message}}
