"""repro.serve: the memory-advisor service.

Turns the analytic engine into a traffic-serving system. Four layers,
each a thin module:

* **Advisor** (:mod:`repro.serve.advisor`) — the query surface: validate
  and normalize an advise request, derive its content-addressed cache
  key, and rank candidate ``platform/mode`` configurations by predicted
  execution time. Everything else is transport around this module.
* **HTTP** (:mod:`repro.serve.http`) — a hand-rolled HTTP/1.1 layer on
  asyncio streams (stdlib only; no new runtime dependencies).
* **Batcher** (:mod:`repro.serve.batcher`) — coalesces identical
  in-flight queries onto one execution and micro-batches distinct ones.
* **Pool** (:mod:`repro.serve.pool`) — a sharded worker-process pool
  reusing the scheduler's timeout/recycle machinery, with cross-process
  trace propagation so every request yields one rooted span tree.

:mod:`repro.serve.app` wires the layers into :class:`ServeApp`, fronted
by the shared result cache; :mod:`repro.serve.bench` is the load harness
behind ``repro serve-bench``.
"""

from repro.serve.advisor import (
    ADVISE_SCHEMA_VERSION,
    QueryError,
    advise,
    default_candidates,
    evaluate,
    normalize,
    query_key,
)
from repro.serve.app import ServeApp, ServeConfig, run_server

__all__ = [
    "ADVISE_SCHEMA_VERSION",
    "QueryError",
    "ServeApp",
    "ServeConfig",
    "advise",
    "default_candidates",
    "evaluate",
    "normalize",
    "query_key",
    "run_server",
]
