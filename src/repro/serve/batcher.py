"""Coalescing micro-batcher.

Traffic to an advisor is heavily repetitive: many clients ask about the
same (kernel, size, candidates) tuple at once. The batcher exploits that
in two ways:

* **Coalescing** — queries with the same canonical cache key share one
  in-flight execution. N identical concurrent requests cost exactly one
  engine evaluation; the other N-1 await the same future and count into
  ``serve.requests.coalesced``.
* **Micro-batching** — distinct keys that arrive within one drain window
  are grouped and dispatched together, giving the worker pool a batch to
  spread across shards instead of a trickle.

Everything runs on the event-loop thread, so the invariants are enforced
by *not awaiting* between checking and updating the in-flight map: a key
is claimed (inserted) synchronously on first sight, and resolved (popped
and completed) synchronously when its execution finishes.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro import telemetry
from repro.telemetry import names as tm

#: One queued query: its canonical key plus the opaque job the executor
#: understands (the batcher never inspects job payloads).
@dataclass
class _Pending:
    key: str
    job: Any
    future: asyncio.Future = field(repr=False)


class Batcher:
    """Deduplicate identical in-flight queries and drain micro-batches.

    ``execute`` receives a list of (key, job) pairs — one per *distinct*
    key — and must return one result per pair, in order; an item's slot
    may hold an exception instance, which resolves that key's waiters
    exceptionally without failing its batch-mates. An exception *raised*
    by ``execute`` fans out to every waiter of every key in the batch.
    """

    def __init__(
        self,
        execute: Callable[[list[tuple[str, Any]]], Awaitable[list[Any]]],
        *,
        max_batch: int = 16,
        window_s: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._execute = execute
        self._max_batch = max_batch
        self._window_s = window_s
        #: key -> future shared by every waiter of that key.
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: list[_Pending] = []
        self._drainer: asyncio.Task | None = None
        self.coalesced = 0
        self.dispatched = 0
        self.batches = 0

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    async def submit(self, key: str, job: Any) -> Any:
        """Resolve one query, sharing work with identical in-flight ones."""
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            telemetry.counter(tm.METRIC_SERVE_COALESCED).inc()
            # shield: one waiter being cancelled must not cancel the
            # shared execution other waiters depend on.
            return await asyncio.shield(existing)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._queue.append(_Pending(key=key, job=job, future=future))
        if self._drainer is None or self._drainer.done():
            self._drainer = loop.create_task(self._drain())
        return await asyncio.shield(future)

    async def _drain(self) -> None:
        while self._queue:
            if len(self._queue) < self._max_batch and self._window_s > 0:
                # Let one window of concurrent arrivals pile up so they
                # ship as one batch.
                await asyncio.sleep(self._window_s)
            batch, self._queue = (
                self._queue[: self._max_batch],
                self._queue[self._max_batch :],
            )
            if not batch:
                continue
            self.batches += 1
            self.dispatched += len(batch)
            telemetry.histogram(tm.METRIC_SERVE_BATCH_SIZE).observe(
                float(len(batch))
            )
            sp = telemetry.get_tracer().begin(
                tm.SPAN_SERVE_BATCH, size=len(batch)
            )
            try:
                results = await self._execute(
                    [(p.key, p.job) for p in batch]
                )
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"executor returned {len(results)} results "
                        f"for {len(batch)} jobs"
                    )
            except BaseException as exc:
                for p in batch:
                    self._inflight.pop(p.key, None)
                    if not p.future.done():
                        p.future.set_exception(exc)
                telemetry.get_tracer().finish(sp)
                if isinstance(exc, asyncio.CancelledError):
                    raise
                continue
            telemetry.get_tracer().finish(sp)
            # Pop + resolve with no await in between: a request for the
            # same key arriving after this point starts a fresh
            # execution instead of latching onto a completed future.
            for p, result in zip(batch, results):
                self._inflight.pop(p.key, None)
                if p.future.done():
                    continue
                if isinstance(result, BaseException):
                    p.future.set_exception(result)
                else:
                    p.future.set_result(result)
