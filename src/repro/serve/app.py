"""The memory-advisor service: routes, caching, and the asyncio server.

Request path for ``POST /v1/advise``::

    parse HTTP → normalize query → cache key
        → shared cache (LRU hot tier → disk)          [hit: answer]
        → coalescing batcher (identical key in flight → share it)
        → worker pool (sharded by key) → engine evaluate
        → cache fill → answer

The answer body is byte-identical to the offline
:func:`repro.serve.advisor.evaluate` output for the same normalized
query — serving-only information (which tier answered, wall time, trace
id) rides in a separate top-level ``meta`` field, so differential tests
can strip ``meta`` and compare the rest byte-for-byte.

``POST /v1/experiment`` serves registered experiments through the same
batcher/pool/cache path, sharing content-addressed keys with the offline
``repro run`` scheduler: an experiment cached by a batch run replays
from the serve cache and vice versa.

Spans here use manual lifecycles (``Tracer.begin``/``finish``): the
asyncio handlers interleave many requests on one thread, which a
``with``-scoped span cannot express.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.runtime.cache import SharedResultCache
from repro.serve import advisor
from repro.serve.batcher import Batcher
from repro.serve.http import (
    ProtocolError,
    Request,
    error_payload,
    read_request,
    render_response,
)
from repro.serve.pool import PoolError, PoolTimeout, ServePool
from repro.telemetry import collect, names as tm


@dataclasses.dataclass
class ServeConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8177
    #: Worker shards; 0 executes inline on the loop (tests, debugging).
    jobs: int = 2
    #: Shared cache directory (None = the default user cache dir).
    cache_dir: Path | None = None
    #: Disable result caching entirely (every query executes).
    no_cache: bool = False
    #: Per-execution deadline; a shard past it is recycled.
    timeout_s: float | None = 30.0
    #: Extra attempts after a crashed execution.
    retries: int = 1
    #: Micro-batch limits for the coalescing batcher.
    max_batch: int = 16
    window_s: float = 0.002
    #: LRU hot-tier capacity (entries) in front of the disk cache.
    hot_capacity: int = 256
    #: Experiments run in quick mode by default (full on request).
    quick: bool = True


class ServeApp:
    """Route handling plus the coalesce → pool → cache machinery."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.cache: SharedResultCache | None = (
            None
            if self.config.no_cache
            else SharedResultCache(
                self.config.cache_dir, hot_capacity=self.config.hot_capacity
            )
        )
        self.pool = ServePool(
            self.config.jobs,
            timeout_s=self.config.timeout_s,
            retries=self.config.retries,
        )
        self.batcher = Batcher(
            self._execute_batch,
            max_batch=self.config.max_batch,
            window_s=self.config.window_s,
        )
        self.trace_id = collect.new_trace_id()
        self.started_unix_s = time.time()
        self.requests = 0
        self.errors = 0

    # -- execution backend ----------------------------------------------------

    async def _execute_batch(
        self, batch: list[tuple[str, Any]]
    ) -> list[Any]:
        """Batcher callback: run every job, per-item failure isolation."""

        async def one(key: str, job: dict[str, Any]) -> dict[str, Any]:
            envelope = await self.pool.run(
                job["kind"],
                job["payload"],
                quick=job["quick"],
                key=key,
                trace_id=self.trace_id,
                parent_span_id=job.get("parent_span_id"),
            )
            result = envelope["result"]
            if self.cache is not None:
                # Disk write off the loop: put_payload takes the cache
                # lock file and does file I/O, which would stall every
                # in-flight request if run inline.
                await asyncio.to_thread(
                    self.cache.put_payload,
                    key,
                    result,
                    kind=f"serve.{job['kind']}",
                )
            return result

        return await asyncio.gather(
            *(one(key, job) for key, job in batch), return_exceptions=True
        )

    async def _answer(
        self, key: str, job: dict[str, Any]
    ) -> tuple[dict[str, Any], str]:
        """Resolve one query; returns (result, cache tier)."""
        if self.cache is not None:
            before = (self.cache.hot_hits, self.cache.disk_hits)
            # Disk read off the loop (the hot tier answers from memory,
            # but a miss there falls through to file I/O).
            cached = await asyncio.to_thread(self.cache.get_payload, key)
            if cached is not None:
                tier = (
                    "hot" if self.cache.hot_hits > before[0] else "disk"
                )
                telemetry.counter(
                    tm.METRIC_SERVE_CACHE_HOT
                    if tier == "hot"
                    else tm.METRIC_SERVE_CACHE_DISK
                ).inc()
                return cached, tier
            telemetry.counter(tm.METRIC_SERVE_CACHE_MISSES).inc()
        else:
            telemetry.counter(tm.METRIC_SERVE_CACHE_MISSES).inc()
        result = await self.batcher.submit(key, job)
        return result, "miss"

    # -- routes ---------------------------------------------------------------

    async def handle(
        self, request: Request, span_id: int | None = None
    ) -> tuple[int, Any]:
        """Dispatch one parsed request to (status, JSON payload).

        ``span_id`` is the request's ``serve.request`` span: executions
        triggered by this request parent under it, so each request
        yields one rooted span tree (a coalesced execution roots under
        the request that started it).
        """
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return 200, self._healthz()
        if route == ("GET", "/metrics"):
            return 200, self._metrics()
        if route == ("POST", "/v1/advise"):
            return await self._advise(request, span_id)
        if route == ("POST", "/v1/experiment"):
            return await self._experiment(request, span_id)
        if request.path in ("/healthz", "/metrics", "/v1/advise", "/v1/experiment"):
            return 405, error_payload(405, f"{request.method} not allowed")
        return 404, error_payload(404, f"no route {request.path}")

    def _healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime_s": time.time() - self.started_unix_s,
            "jobs": self.config.jobs,
            "cache": self.cache is not None,
        }

    def _metrics(self) -> dict[str, Any]:
        snapshot = (
            telemetry.get_registry().snapshot()
            if telemetry.enabled()
            else {}
        )
        serve = {
            "requests": self.requests,
            "errors": self.errors,
            "coalesced": self.batcher.coalesced,
            "dispatched": self.batcher.dispatched,
            "batches": self.batcher.batches,
            "pool_recycles": self.pool.recycles,
        }
        if self.cache is not None:
            serve["cache"] = {
                "hot_hits": self.cache.hot_hits,
                "disk_hits": self.cache.disk_hits,
                "misses": self.cache.misses,
                "hot_entries": self.cache.hot_entries,
            }
        return {"serve": serve, "metrics": snapshot}

    async def _advise(
        self, request: Request, span_id: int | None = None
    ) -> tuple[int, Any]:
        try:
            canonical = advisor.normalize(request.json())
        except advisor.QueryError as exc:
            return 400, error_payload(400, str(exc))
        key = advisor.query_key(canonical)
        job = {
            "kind": "advise",
            "payload": canonical,
            "quick": True,
            "parent_span_id": span_id,
        }
        return await self._serve_job(key, job)

    async def _experiment(
        self, request: Request, span_id: int | None = None
    ) -> tuple[int, Any]:
        body = request.json()
        if not isinstance(body, dict):
            return 400, error_payload(400, "request body must be a JSON object")
        unknown = set(body) - {"experiment", "quick"}
        if unknown:
            return 400, error_payload(
                400, f"unknown fields: {', '.join(sorted(unknown))}"
            )
        exp_id = body.get("experiment")
        quick = body.get("quick", self.config.quick)
        if not isinstance(quick, bool):
            return 400, error_payload(400, "quick must be a boolean")
        from repro.experiments import registry

        try:
            spec = registry.get(str(exp_id))
        except KeyError:
            return 400, error_payload(400, f"unknown experiment {exp_id!r}")
        key = spec.task_key(quick=quick)
        job = {
            "kind": "experiment",
            "payload": spec.experiment_id,
            "quick": quick,
            "parent_span_id": span_id,
        }
        return await self._serve_job(key, job)

    async def _serve_job(
        self, key: str, job: dict[str, Any]
    ) -> tuple[int, Any]:
        start = time.perf_counter()
        try:
            result, tier = await self._answer(key, job)
        except PoolTimeout as exc:
            return 503, error_payload(503, str(exc))
        except PoolError as exc:
            return 500, error_payload(500, str(exc))
        except advisor.QueryError as exc:
            return 400, error_payload(400, str(exc))
        payload = dict(result)
        payload["meta"] = {
            "key": key,
            "cache": tier,
            "trace_id": self.trace_id,
            "wall_s": time.perf_counter() - start,
        }
        return 200, payload

    # -- connection handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(
                        render_response(
                            exc.status,
                            error_payload(exc.status, exc.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                status, payload = await self._dispatch(request)
                writer.write(
                    render_response(
                        status, payload, keep_alive=request.keep_alive
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        except asyncio.CancelledError:
            pass  # server shutting down with the connection open
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # torn down mid-close at loop shutdown

    async def _dispatch(self, request: Request) -> tuple[int, Any]:
        """One request with telemetry accounting around :meth:`handle`."""
        self.requests += 1
        telemetry.counter(tm.METRIC_SERVE_REQUESTS).inc()
        sp = None
        if telemetry.enabled():
            sp = telemetry.get_tracer().begin(
                tm.SPAN_SERVE_REQUEST,
                method=request.method,
                path=request.path,
            )
        start = time.perf_counter()
        status = 500
        try:
            status, payload = await request_safe(
                self.handle, request, sp.span_id if sp is not None else None
            )
        finally:
            wall_s = time.perf_counter() - start
            telemetry.histogram(tm.METRIC_SERVE_REQUEST_WALL_S).observe(
                wall_s
            )
            if sp is not None:
                sp.set_attr("status", status)
                telemetry.get_tracer().finish(sp)
        if status >= 400:
            self.errors += 1
            telemetry.counter(tm.METRIC_SERVE_ERRORS).inc()
        return status, payload

    def shutdown(self) -> None:
        self.pool.shutdown()

    async def serve(self) -> asyncio.AbstractServer:
        """Bind and return the listening server (caller owns lifetime)."""
        return await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )


async def request_safe(handler, *args) -> tuple[int, Any]:
    """Run one route handler; unexpected exceptions become a 500."""
    try:
        return await handler(*args)
    except ProtocolError as exc:
        return exc.status, error_payload(exc.status, exc.message)
    except asyncio.CancelledError:
        raise
    except Exception as exc:
        return 500, error_payload(500, f"internal error: {exc}")


async def run_server(config: ServeConfig | None = None) -> None:
    """``repro serve``: run until cancelled (Ctrl-C)."""
    app = ServeApp(config)
    server = await app.serve()
    addr = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server.sockets
    )
    print(f"serving memory advisor on {addr} (jobs={app.config.jobs})")
    try:
        async with server:
            await server.serve_forever()
    finally:
        app.shutdown()
