"""``repro serve-bench``: the serving load harness.

Starts a :class:`~repro.serve.app.ServeApp` in-process, drives it with
asyncio HTTP clients over real sockets, and writes ``BENCH_serve.json``
with the numbers CI gates on:

* **latency** — per-route p50/p99 wall time (client-observed);
* **throughput** — completed requests per second over the mixed phase;
* **coalescing proof** — N identical concurrent queries against a cold
  cache must produce *exactly one* engine execution, read from the
  ``serve.engine.executions`` counter via ``/metrics``;
* **hit ratios** — coalesced fraction and cache-tier hit fractions.

The workload mix is seeded and deterministic: a fixed population of
distinct advise queries, zipf-ish repetition so coalescing and the hot
tier both get exercised, all sizes small enough that a full bench run
stays in CI-friendly seconds.
"""

from __future__ import annotations

import asyncio
import json
import random
import statistics
import time
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.serve.app import ServeApp, ServeConfig
from repro.telemetry import names as tm

#: Default SLO the smoke job asserts: advise p99 under this many ms.
DEFAULT_SLO_P99_MS = 250.0


# -- minimal asyncio HTTP client ----------------------------------------------


class Client:
    """One keep-alive connection issuing serial JSON requests."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def request(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, Any]:
        assert self._reader is not None and self._writer is not None
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        raw = await self._reader.readuntil(b"\r\n\r\n")
        lines = raw.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        length = 0
        for line in lines[1:]:
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1])
        data = await self._reader.readexactly(length) if length else b""
        return status, (json.loads(data) if data else None)


# -- workload ------------------------------------------------------------------


def _query_population(seed: int, distinct: int) -> list[dict[str, Any]]:
    """A deterministic set of small advise queries across kernel types."""
    rng = random.Random(seed)
    kernels = [
        lambda: {"kernel": "stream", "params": {"n": rng.choice([1 << 18, 1 << 20, 1 << 22])}},
        lambda: {"kernel": "gemm", "params": {"order": rng.choice([128, 256, 384])}},
        lambda: {"kernel": "fft", "params": {"size": rng.choice([256, 512, 1024])}},
        lambda: {"kernel": "stencil", "params": {"nx": rng.choice([24, 32, 48])}},
        lambda: {"kernel": "spmv", "params": {"n_rows": rng.choice([2000, 5000, 10000])}},
    ]
    population = []
    seen = set()
    while len(population) < distinct:
        q = kernels[len(population) % len(kernels)]()
        fp = json.dumps(q, sort_keys=True)
        if fp in seen:
            q["params"] = {
                k: v + (2 if q["kernel"] == "stencil" else 1)
                for k, v in q["params"].items()
            }
            fp = json.dumps(q, sort_keys=True)
            if fp in seen:
                continue
        seen.add(fp)
        population.append(q)
    return population


def _percentiles(samples: list[float]) -> dict[str, float]:
    if not samples:
        return {"p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
    ordered = sorted(samples)
    qs = statistics.quantiles(ordered, n=100, method="inclusive") if len(ordered) > 1 else [ordered[0]] * 99
    return {
        "p50_ms": qs[49] * 1000.0,
        "p99_ms": qs[98] * 1000.0,
        "mean_ms": statistics.fmean(ordered) * 1000.0,
    }


async def _engine_executions(client: Client) -> int:
    """Read the coalescing-proof counter from ``/metrics``."""
    _, payload = await client.request("GET", "/metrics")
    metrics = (payload or {}).get("metrics", {})
    entry = metrics.get(tm.METRIC_SERVE_ENGINE_EXECUTIONS)
    if isinstance(entry, dict):
        return int(entry.get("value", 0))
    return 0


# -- the bench -----------------------------------------------------------------


async def _run(
    *,
    clients: int,
    requests_per_client: int,
    distinct: int,
    identical: int,
    seed: int,
    jobs: int,
    cache_dir: Path | None,
) -> dict[str, Any]:
    app = ServeApp(
        ServeConfig(port=0, jobs=jobs, cache_dir=cache_dir, window_s=0.001)
    )
    server = await app.serve()
    host, port = server.sockets[0].getsockname()[:2]
    population = _query_population(seed, distinct)
    rng = random.Random(seed + 1)

    try:
        control = Client(host, port)
        await control.connect()

        # Phase 1 — coalescing proof on a cold cache: N identical
        # concurrent queries must fold onto one engine execution.
        proof_query = {"kernel": "gemm", "params": {"order": 320}}
        before = await _engine_executions(control)

        async def one_identical() -> float:
            c = Client(host, port)
            await c.connect()
            t0 = time.perf_counter()
            status, _ = await c.request("POST", "/v1/advise", proof_query)
            dt = time.perf_counter() - t0
            await c.close()
            if status != 200:
                raise RuntimeError(f"proof query failed: HTTP {status}")
            return dt

        proof_lat = await asyncio.gather(
            *(one_identical() for _ in range(identical))
        )
        proof_executions = await _engine_executions(control) - before

        # Phase 2 — mixed sustained load: each client walks a seeded
        # schedule over the query population (repetition ~ zipf-ish by
        # construction: low indices are drawn more often).
        latencies: dict[str, list[float]] = {"advise": [], "metrics": [], "healthz": []}
        failures = 0

        async def one_client(cid: int) -> None:
            nonlocal failures
            crng = random.Random(seed + 100 + cid)
            c = Client(host, port)
            await c.connect()
            for i in range(requests_per_client):
                roll = crng.random()
                if roll < 0.9:
                    route = "advise"
                    idx = min(
                        int(crng.paretovariate(1.2)) - 1, len(population) - 1
                    )
                    method, path, payload = (
                        "POST", "/v1/advise", population[idx],
                    )
                elif roll < 0.95:
                    route, method, path, payload = (
                        "metrics", "GET", "/metrics", None,
                    )
                else:
                    route, method, path, payload = (
                        "healthz", "GET", "/healthz", None,
                    )
                t0 = time.perf_counter()
                status, _ = await c.request(method, path, payload)
                latencies[route].append(time.perf_counter() - t0)
                if status != 200:
                    failures += 1
            await c.close()

        t_start = time.perf_counter()
        await asyncio.gather(*(one_client(i) for i in range(clients)))
        elapsed_s = time.perf_counter() - t_start
        total_requests = sum(len(v) for v in latencies.values())

        _, metrics_payload = await control.request("GET", "/metrics")
        await control.close()
    finally:
        server.close()
        await server.wait_closed()
        app.shutdown()

    serve_stats = (metrics_payload or {}).get("serve", {})
    cache_stats = serve_stats.get("cache", {})
    answered = max(1, serve_stats.get("requests", 1))
    cache_hits = cache_stats.get("hot_hits", 0) + cache_stats.get("disk_hits", 0)
    return {
        "config": {
            "clients": clients,
            "requests_per_client": requests_per_client,
            "distinct_queries": distinct,
            "identical_concurrent": identical,
            "jobs": jobs,
            "seed": seed,
        },
        "proof": {
            "identical_concurrent": identical,
            "engine_executions": proof_executions,
            "latency": _percentiles(proof_lat),
        },
        "mixed": {
            "elapsed_s": elapsed_s,
            "requests": total_requests,
            "failures": failures,
            "throughput_rps": total_requests / elapsed_s if elapsed_s else 0.0,
            "routes": {
                route: {"n": len(v), **_percentiles(v)}
                for route, v in latencies.items()
            },
        },
        "ratios": {
            "coalesced": serve_stats.get("coalesced", 0) / answered,
            "cache_hit": cache_hits / answered,
            "hot_hit": cache_stats.get("hot_hits", 0) / answered,
        },
        "serve": serve_stats,
    }


def run_bench(
    *,
    out: Path,
    clients: int = 8,
    requests_per_client: int = 40,
    distinct: int = 24,
    identical: int = 100,
    seed: int = 7,
    jobs: int = 0,
    cache_dir: Path | None = None,
    slo_p99_ms: float = DEFAULT_SLO_P99_MS,
) -> dict[str, Any]:
    """Run the harness, write ``out``, and attach pass/fail verdicts.

    Telemetry is enabled for the duration (the proof needs the
    ``serve.engine.executions`` counter); the caller's telemetry state
    is restored on exit. With ``cache_dir=None`` the bench runs against
    a fresh temporary cache (the coalescing proof requires a cold key).
    """
    import contextlib as _ctx
    import tempfile

    with _ctx.ExitStack() as stack:
        if cache_dir is None:
            cache_dir = Path(
                stack.enter_context(tempfile.TemporaryDirectory())
            )
        stack.enter_context(telemetry.session())
        doc = asyncio.run(
            _run(
                clients=clients,
                requests_per_client=requests_per_client,
                distinct=distinct,
                identical=identical,
                seed=seed,
                jobs=jobs,
                cache_dir=cache_dir,
            )
        )
    advise_p99 = doc["mixed"]["routes"]["advise"]["p99_ms"]
    doc["verdict"] = {
        "slo_p99_ms": slo_p99_ms,
        "advise_p99_ms": advise_p99,
        "slo_ok": advise_p99 <= slo_p99_ms,
        "coalescing_ok": doc["proof"]["engine_executions"] == 1,
        "no_failures": doc["mixed"]["failures"] == 0,
    }
    doc["verdict"]["ok"] = all(
        doc["verdict"][k] for k in ("slo_ok", "coalescing_ok", "no_failures")
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return doc
