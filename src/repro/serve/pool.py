"""Sharded worker-process pool for the advisor service.

Executions leave the event loop: advisor evaluations and experiment
runs happen in worker processes so a slow query can never stall request
handling. The pool reuses the batch scheduler's machinery wholesale —
worker bootstrap (:func:`~repro.runtime.scheduler._worker_init`),
experiment execution (:func:`~repro.runtime.scheduler._worker_run`),
hung-worker reaping (:func:`~repro.runtime.scheduler._reap_pool`) — so
timeouts, retries, and fault injection behave identically under serve
and under ``repro run``.

Sharding: the pool is N *single-worker* executors, and a query's shard
is chosen by its cache key. Identical queries therefore serialize on one
shard (no duplicated work even across micro-batches), while distinct
keys spread uniformly. A shard whose worker hangs or dies is recycled —
terminated and replaced — without touching the other shards.

Telemetry: each execution gets a manual-lifecycle ``serve.execute``
span; a :class:`~repro.telemetry.collect.TraceContext` rides to the
worker, and the shipped spans/metrics are absorbed under the execute
span at resolution, so every served request yields one rooted span tree
exactly like a scheduled batch task.

``jobs=0`` runs executions inline (synchronously, on the caller's
thread) with the same collection scope — the test-and-debug mode.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any

from repro import telemetry
from repro.runtime import faults, scheduler
from repro.telemetry import collect, names as tm
from repro.telemetry.spans import Span

#: Extra attempts granted to an execution that crashed (not timed out:
#: a deterministic query that hung once will hang again).
DEFAULT_RETRIES = 1


class PoolError(RuntimeError):
    """An execution failed after exhausting its attempts (HTTP 500)."""


class PoolTimeout(PoolError):
    """An execution exceeded the per-query deadline (HTTP 503)."""


def _pool_worker(
    kind: str,
    payload: Any,
    quick: bool,
    ctx: collect.TraceContext | None = None,
) -> dict[str, Any]:
    """Executed in a worker process; returns a picklable envelope.

    ``kind="experiment"`` delegates to the scheduler's worker entry
    point verbatim (same envelope, same fault hooks, same collection).
    ``kind="advise"`` evaluates one canonical advisor query under the
    same collection scope; its fault hook is ``advise:<kernel>``.
    """
    if kind == "experiment":
        return scheduler._worker_run(payload, quick, ctx)
    if kind != "advise":
        raise ValueError(f"unknown execution kind {kind!r}")
    from repro.serve import advisor

    faults.apply(f"advise:{payload['kernel']}")
    with collect.worker_collection(ctx) as shipment:
        start = time.perf_counter()
        result = advisor.evaluate(payload)
        duration_s = time.perf_counter() - start
    return {
        "duration_s": duration_s,
        "result": result,
        "telemetry": shipment.export(),
    }


def _open_execute_span(
    kind: str, key: str, attempt: int, parent_span_id: int | None
) -> Span | None:
    """Manual-lifecycle span for one execution (interleaves on the loop).

    Parents under the requesting ``serve.request`` span when given (a
    coalesced execution roots under the request that triggered it).
    """
    if not telemetry.enabled():
        return None
    return telemetry.get_tracer().begin(
        tm.SPAN_SERVE_EXECUTE,
        parent_id=parent_span_id,
        kind=kind,
        key=key[:16],
        attempt=attempt,
    )


class ServePool:
    """N single-worker shards with timeout, recycle, and bounded retry."""

    def __init__(
        self,
        jobs: int,
        *,
        timeout_s: float | None = None,
        retries: int = DEFAULT_RETRIES,
    ) -> None:
        if jobs < 0:
            raise ValueError("jobs must be >= 0")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self._shards: list[ProcessPoolExecutor | None] = [None] * jobs
        self.recycles = 0

    # -- shard management -----------------------------------------------------

    def _shard_index(self, key: str) -> int:
        return int(key[:8], 16) % self.jobs

    def _shard(self, index: int) -> ProcessPoolExecutor:
        pool = self._shards[index]
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=1,
                initializer=scheduler._worker_init,
                initargs=(scheduler._package_parent(),),
            )
            self._shards[index] = pool
        return pool

    def _recycle(self, index: int, *, reason: str) -> None:
        pool = self._shards[index]
        self._shards[index] = None
        self.recycles += 1
        telemetry.counter(tm.METRIC_SERVE_RECYCLED).inc()
        if pool is not None:
            scheduler._reap_pool(pool, reason=reason, n_hung=1)

    def shutdown(self) -> None:
        """Terminate every shard (idempotent)."""
        for index, pool in enumerate(self._shards):
            self._shards[index] = None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    # -- execution ------------------------------------------------------------

    async def run(
        self,
        kind: str,
        payload: Any,
        *,
        quick: bool,
        key: str,
        trace_id: str,
        parent_span_id: int | None = None,
    ) -> dict[str, Any]:
        """Execute one query, retrying crashes; returns the envelope.

        Raises :class:`PoolTimeout` when the deadline expires (the hung
        shard is recycled; deterministic work is not retried after a
        timeout) and :class:`PoolError` after the final crash.
        """
        attempts = self.retries + 1
        last_error: BaseException | None = None
        for attempt in range(1, attempts + 1):
            sp = _open_execute_span(kind, key, attempt, parent_span_id)
            ctx = collect.current_context(
                f"{kind}:{key[:16]}",
                trace_id=trace_id,
                parent_span_id=sp.span_id if sp is not None else None,
            )
            try:
                envelope = await self._run_once(kind, payload, quick, key, ctx)
            except asyncio.TimeoutError:
                collect.close_task_span(sp, status="timeout")
                raise PoolTimeout(
                    f"execution exceeded {self.timeout_s}s deadline"
                ) from None
            except BrokenExecutor as exc:
                collect.close_task_span(sp, status="crashed")
                if self.jobs:
                    self._recycle(self._shard_index(key), reason="broken-pool")
                last_error = exc
                continue
            except Exception as exc:
                collect.close_task_span(sp, status="failed")
                last_error = exc
                continue
            collect.absorb(envelope.get("telemetry"), task_span=sp)
            collect.close_task_span(sp, status="done")
            return envelope
        raise PoolError(
            f"execution failed after {attempts} attempts: {last_error}"
        ) from last_error

    async def _run_once(
        self,
        kind: str,
        payload: Any,
        quick: bool,
        key: str,
        ctx: collect.TraceContext | None,
    ) -> dict[str, Any]:
        if self.jobs == 0:
            # Inline mode (tests/debugging) deliberately blocks the loop:
            # running the worker synchronously is what makes the global
            # tracer swap race-free (nothing else runs while it holds
            # the loop), and jobs=0 is never a production configuration.
            return _pool_worker(kind, payload, quick, ctx)  # audit: ignore[ASYNC001]
        index = self._shard_index(key)
        pool = self._shard(index)
        future = asyncio.wrap_future(
            pool.submit(_pool_worker, kind, payload, quick, ctx)
        )
        if self.timeout_s is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout=self.timeout_s)
        except asyncio.TimeoutError:
            self._recycle(index, reason="serve-timeout")
            raise
