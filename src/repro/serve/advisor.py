"""The memory-advisor query surface.

This module is the *entire* decision logic of the serve subsystem: given
a kernel, a problem size, and a set of candidate ``platform/mode``
configurations, rank the candidates by the analytic engine's predicted
execution time — or, with ``objective: "energy"``, by modelled
energy-to-solution (power sample x predicted seconds).

The HTTP layer, the batcher, and the worker pool are pure transport
around :func:`evaluate` — a served answer must be
byte-identical to calling :func:`evaluate` offline on the same
normalized query (the differential tests enforce this), so the serve
layer can cache and coalesce aggressively without ever changing numbers.

Queries normalize to a canonical dict (sorted params, deduplicated
candidates in registry order, defaults filled in), and the canonical
form plus the source digest of this module's import closure — which
reaches the engine, the kernels, and the platform tables — yields the
content-addressed cache key: editing any model code invalidates every
cached answer, exactly like experiment task keys.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Mapping

from repro import telemetry
from repro.engine.exectime import RunResult, estimate
from repro.kernels import (
    CholeskyKernel,
    FftKernel,
    GemmKernel,
    Kernel,
    SpmvKernel,
    SptransKernel,
    SptrsvKernel,
    StencilKernel,
    StreamKernel,
)
from repro.platforms import McdramMode, broadwell, knl, skylake
from repro.platforms.spec import MachineSpec
from repro.power import PowerSample, measure
from repro.sparse import descriptors, generators
from repro.telemetry import names as tm

#: Bump when the advise payload layout changes; cached answers from
#: older schemas read as misses. v2: per-candidate power_w/energy_j and
#: the ``objective`` knob (rank by time or energy-to-solution).
ADVISE_SCHEMA_VERSION = 2

#: objective name -> the candidate-row metric it minimizes.
OBJECTIVES: dict[str, str] = {"time": "seconds", "energy": "energy_j"}

#: Guard rails on problem sizes: the advisor is analytic, but absurd
#: inputs should fail fast with a clear message instead of overflowing.
_MAX_ELEMS = 2**40


class QueryError(ValueError):
    """A malformed or out-of-range advise query (HTTP 400)."""


# -- candidate configurations -------------------------------------------------

#: platform -> ordered tuple of admissible memory modes. The first
#: entry is the platform's "OPM off" baseline.
PLATFORM_MODES: dict[str, tuple[str, ...]] = {
    "broadwell": ("off", "on"),
    "skylake": ("off", "on"),
    "knl": ("off", "cache", "flat", "hybrid", "hybrid25"),
}


def _machine_for(platform: str, mode: str) -> tuple[MachineSpec, dict]:
    """Resolve one candidate into (machine spec, estimate kwargs)."""
    if platform == "broadwell":
        return broadwell(edram=mode == "on"), {"edram": mode == "on"}
    if platform == "skylake":
        return skylake(edram=mode == "on"), {"edram": mode == "on"}
    m = McdramMode(mode)
    return knl(m), {"mcdram": m}


def _opm_powered(platform: str, mode: str) -> bool:
    """Whether the OPM draws static power in this configuration.

    eDRAM can be disabled in BIOS (no draw when off); MCDRAM cannot be
    powered down, so every KNL mode pays its static power (paper 5.2).
    """
    return not (platform in ("broadwell", "skylake") and mode == "off")


def default_candidates() -> list[dict[str, str]]:
    """Every platform/mode combination, in registry order."""
    return [
        {"platform": platform, "mode": mode}
        for platform, modes in PLATFORM_MODES.items()
        for mode in modes
    ]


# -- kernel construction ------------------------------------------------------

_DENSE_DEFAULT_TILE = 128
_SPARSE_FAMILIES = generators.FAMILIES


def _int_param(
    params: Mapping[str, Any], name: str, *, default: int | None = None,
    lo: int = 1, hi: int = _MAX_ELEMS,
) -> int:
    value = params.get(name, default)
    if value is None:
        raise QueryError(f"missing required param {name!r}")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f"param {name!r} must be a number, got {value!r}")
    if float(value) != int(value):
        raise QueryError(f"param {name!r} must be an integer, got {value!r}")
    value = int(value)
    if not lo <= value <= hi:
        raise QueryError(
            f"param {name!r} out of range [{lo}, {hi}]: {value}"
        )
    return value


#: A builder maps raw request params to (kernel instance, canonical
#: fully-defaulted params). Canonical params rebuild the identical
#: kernel, so normalize is idempotent and the cache key is stable
#: however the caller spelled the defaults.
_Built = tuple[Kernel, dict[str, Any]]


def _sparse_descriptor(
    kernel: str, params: Mapping[str, Any]
) -> tuple[descriptors.MatrixDescriptor, dict[str, Any]]:
    n_rows = _int_param(params, "n_rows", lo=2)
    nnz = _int_param(params, "nnz", default=16 * n_rows)
    family = params.get("family", "random")
    if family not in _SPARSE_FAMILIES:
        raise QueryError(
            f"unknown matrix family {family!r}; "
            f"choose from {', '.join(_SPARSE_FAMILIES)}"
        )
    try:
        desc = descriptors.from_params(
            f"advise-{kernel}", family, n_rows, nnz, seed=0
        )
    except ValueError as exc:
        raise QueryError(str(exc)) from exc
    return desc, {"n_rows": n_rows, "nnz": nnz, "family": family}


def _build_stream(params: Mapping[str, Any]) -> _Built:
    n = _int_param(params, "n")
    return StreamKernel(n=n), {"n": n}


def _build_dense(cls: type, params: Mapping[str, Any]) -> _Built:
    order = _int_param(params, "order", lo=16)
    tile = _int_param(
        params, "tile", default=min(order, _DENSE_DEFAULT_TILE), hi=order
    )
    return cls(order=order, tile=tile), {"order": order, "tile": tile}


def _build_gemm(params: Mapping[str, Any]) -> _Built:
    return _build_dense(GemmKernel, params)


def _build_cholesky(params: Mapping[str, Any]) -> _Built:
    return _build_dense(CholeskyKernel, params)


def _build_fft(params: Mapping[str, Any]) -> _Built:
    size = _int_param(params, "size", lo=2, hi=2**13)
    return FftKernel(size=size), {"size": size}


def _build_stencil(params: Mapping[str, Any]) -> _Built:
    nx = _int_param(params, "nx", lo=17, hi=2**13)
    ny = _int_param(params, "ny", default=nx, lo=17, hi=2**13)
    nz = _int_param(params, "nz", default=nx, lo=17, hi=2**13)
    steps = _int_param(params, "steps", default=1, hi=64)
    return (
        StencilKernel(nx=nx, ny=ny, nz=nz, steps=steps),
        {"nx": nx, "ny": ny, "nz": nz, "steps": steps},
    )


def _build_spmv(params: Mapping[str, Any]) -> _Built:
    desc, canon = _sparse_descriptor("spmv", params)
    return SpmvKernel(descriptor=desc), canon


def _build_sptrans(params: Mapping[str, Any]) -> _Built:
    desc, canon = _sparse_descriptor("sptrans", params)
    return SptransKernel(descriptor=desc), canon


def _build_sptrsv(params: Mapping[str, Any]) -> _Built:
    desc, canon = _sparse_descriptor("sptrsv", params)
    return SptrsvKernel(descriptor=desc), canon


#: kernel name -> (builder, accepted param names).
KERNEL_BUILDERS: dict[
    str, tuple[Callable[[Mapping[str, Any]], _Built], tuple[str, ...]]
] = {
    "stream": (_build_stream, ("n",)),
    "gemm": (_build_gemm, ("order", "tile")),
    "cholesky": (_build_cholesky, ("order", "tile")),
    "fft": (_build_fft, ("size",)),
    "stencil": (_build_stencil, ("nx", "ny", "nz", "steps")),
    "spmv": (_build_spmv, ("n_rows", "nnz", "family")),
    "sptrans": (_build_sptrans, ("n_rows", "nnz", "family")),
    "sptrsv": (_build_sptrsv, ("n_rows", "nnz", "family")),
}


def build_kernel(kernel: str, params: Mapping[str, Any]) -> Kernel:
    """Instantiate the kernel a normalized query names."""
    builder, _ = KERNEL_BUILDERS[kernel]
    return builder(params)[0]


# -- normalization ------------------------------------------------------------


def _normalize_candidates(raw: Any) -> list[dict[str, str]]:
    if raw is None:
        return default_candidates()
    if not isinstance(raw, (list, tuple)) or not raw:
        raise QueryError("candidates must be a non-empty list")
    wanted: list[tuple[str, str]] = []
    for item in raw:
        if isinstance(item, str):
            platform, _, mode = item.partition("/")
        elif isinstance(item, Mapping):
            platform = item.get("platform", "")
            mode = item.get("mode", "")
        else:
            raise QueryError(f"bad candidate {item!r}")
        platform = str(platform)
        modes = PLATFORM_MODES.get(platform)
        if modes is None:
            raise QueryError(
                f"unknown platform {platform!r}; "
                f"choose from {', '.join(PLATFORM_MODES)}"
            )
        mode = str(mode) if mode else ""
        if mode:
            if mode not in modes:
                raise QueryError(
                    f"unknown mode {mode!r} for {platform}; "
                    f"choose from {', '.join(modes)}"
                )
            wanted.append((platform, mode))
        else:  # bare platform name expands to all of its modes
            wanted.extend((platform, m) for m in modes)
    # Deduplicate and order canonically (registry order), so logically
    # identical queries share one cache key.
    chosen = set(wanted)
    return [
        {"platform": platform, "mode": mode}
        for platform, modes in PLATFORM_MODES.items()
        for mode in modes
        if (platform, mode) in chosen
    ]


def normalize(payload: Any) -> dict[str, Any]:
    """Validate a raw advise request into its canonical query dict.

    Raises :class:`QueryError` on anything malformed. The canonical form
    is what :func:`evaluate` consumes and what the cache key hashes, so
    two requests that mean the same thing normalize identically.
    """
    if not isinstance(payload, Mapping):
        raise QueryError("request body must be a JSON object")
    unknown = set(payload) - {"kernel", "params", "candidates", "objective"}
    if unknown:
        raise QueryError(f"unknown fields: {', '.join(sorted(unknown))}")
    objective = payload.get("objective", "time")
    if objective not in OBJECTIVES:
        raise QueryError(
            f"unknown objective {objective!r}; "
            f"choose from {', '.join(OBJECTIVES)}"
        )
    kernel = payload.get("kernel")
    if kernel not in KERNEL_BUILDERS:
        raise QueryError(
            f"unknown kernel {kernel!r}; "
            f"choose from {', '.join(KERNEL_BUILDERS)}"
        )
    raw_params = payload.get("params") or {}
    if not isinstance(raw_params, Mapping):
        raise QueryError("params must be a JSON object")
    _, accepted = KERNEL_BUILDERS[kernel]
    bad = set(raw_params) - set(accepted)
    if bad:
        raise QueryError(
            f"unknown params for {kernel}: {', '.join(sorted(bad))} "
            f"(accepted: {', '.join(accepted)})"
        )
    builder, _ = KERNEL_BUILDERS[kernel]
    _, params = builder(raw_params)  # validates ranges, fills defaults
    return {
        "kernel": kernel,
        "params": {k: params[k] for k in sorted(params)},
        "candidates": _normalize_candidates(payload.get("candidates")),
        "objective": objective,
    }


def query_key(canonical: Mapping[str, Any]) -> str:
    """Content-addressed cache key for one canonical query.

    Covers the query itself, the payload schema, and the source digest
    of this module's in-package import closure (engine + kernels +
    platforms), so cached answers can never outlive the model code that
    produced them.
    """
    from repro.runtime.fingerprint import source_digest

    doc = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    digest = source_digest("repro.serve.advisor")
    raw = f"advise|{ADVISE_SCHEMA_VERSION}|{digest}|{doc}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


# -- evaluation ---------------------------------------------------------------


def _candidate_row(
    label: dict[str, str], result: RunResult, sample: PowerSample
) -> dict[str, Any]:
    return {
        "platform": label["platform"],
        "mode": label["mode"],
        "machine": result.machine,
        "seconds": result.seconds,
        "gflops": result.gflops,
        "bound": result.bound,
        "opm_bytes": result.opm_bytes,
        "dram_bytes": result.dram_bytes,
        "power_w": sample.total_w,
        "energy_j": sample.energy_j,
    }


def evaluate(canonical: Mapping[str, Any]) -> dict[str, Any]:
    """Answer one canonical query: ranked candidates with speedups.

    This is the offline reference path — the serve layer returns exactly
    this dict (plus a transport-only ``meta`` sibling). Deterministic by
    construction: the engine is a pure function of (profile, machine,
    knobs) and the noise knob is seeded per configuration.
    """
    kernel = build_kernel(canonical["kernel"], canonical["params"])
    candidates = canonical["candidates"]
    objective = canonical.get("objective", "time")
    metric = OBJECTIVES[objective]
    with telemetry.span(
        tm.SPAN_SERVE_ADVISE,
        kernel=canonical["kernel"],
        n_candidates=len(candidates),
    ):
        profile = kernel.profile()
        rows = []
        for cand in candidates:
            machine, kwargs = _machine_for(cand["platform"], cand["mode"])
            result = estimate(profile, machine, **kwargs)
            sample = measure(
                result,
                machine,
                opm_powered=_opm_powered(cand["platform"], cand["mode"]),
            )
            rows.append(_candidate_row(cand, result, sample))
    telemetry.counter(tm.METRIC_SERVE_ENGINE_EXECUTIONS).inc()
    ranked = sorted(rows, key=lambda r: (r[metric], r["platform"], r["mode"]))
    worst = ranked[-1][metric]
    best = ranked[0][metric]
    for rank, row in enumerate(ranked, start=1):
        row["rank"] = rank
        row["speedup_vs_worst"] = (
            worst / row[metric] if row[metric] > 0 else 0.0
        )
        row["slowdown_vs_best"] = (
            row[metric] / best if best > 0 else 0.0
        )
    return {
        "schema": ADVISE_SCHEMA_VERSION,
        "kernel": canonical["kernel"],
        "params": dict(canonical["params"]),
        "footprint_bytes": int(profile.footprint_bytes),
        "objective": objective,
        "winner": {
            "platform": ranked[0]["platform"],
            "mode": ranked[0]["mode"],
            "seconds": ranked[0]["seconds"],
            "energy_j": ranked[0]["energy_j"],
            "speedup_vs_worst": ranked[0]["speedup_vs_worst"],
        },
        "ranked": ranked,
    }


def advise(payload: Any) -> dict[str, Any]:
    """Offline one-shot: normalize + evaluate (the CLI/differential path)."""
    return evaluate(normalize(payload))
