"""JSONL encoding of telemetry records.

One record per line; every record is a flat-ish JSON object with a
``type`` discriminator (``span``, ``manifest``, ``metric``). The sink is
append-only and flushes per record so a crashed run still leaves a valid,
truncatable trace file behind.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Iterator


def _default(obj: Any) -> Any:
    """Best-effort encoder for numpy scalars and stray objects."""
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    if hasattr(obj, "as_dict"):
        return obj.as_dict()
    return repr(obj)


def dumps(record: dict) -> str:
    return json.dumps(record, default=_default, separators=(",", ":"))


class JsonlSink:
    """Thread-safe append-only JSONL writer."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self._lock = threading.Lock()
        self.n_records = 0

    def write(self, record: dict) -> None:
        line = dumps(record)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()
            self.n_records += 1

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield every record in a trace file (skipping blank lines)."""
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def records_of_type(path: str | Path, record_type: str) -> list[dict]:
    return [r for r in read_jsonl(path) if r.get("type") == record_type]
