"""JSONL encoding of telemetry records.

One record per line; every record is a flat-ish JSON object with a
``type`` discriminator (``span``, ``manifest``, ``metric``). The sink is
append-only and flushes per record so a crashed run still leaves a valid,
truncatable trace file behind.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Iterator


def _default(obj: Any) -> Any:
    """Best-effort encoder for numpy scalars and stray objects."""
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    if hasattr(obj, "as_dict"):
        return obj.as_dict()
    return repr(obj)


def dumps(record: dict) -> str:
    return json.dumps(record, default=_default, separators=(",", ":"))


class JsonlSink:
    """Thread-safe append-only JSONL writer."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self._lock = threading.Lock()
        self.n_records = 0

    def write(self, record: dict) -> None:
        line = dumps(record)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()
            self.n_records += 1

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: str | Path, *, errors: str = "skip") -> Iterator[dict]:
    """Yield every record in a trace file (skipping blank lines).

    A worker crashed or reaped mid-write leaves a truncated final line;
    with the default ``errors="skip"`` such undecodable lines are
    silently dropped (use :func:`scan_jsonl` to also get their count,
    which ``repro trace`` surfaces). ``errors="strict"`` restores the
    raising behaviour for callers that need write integrity.
    """
    if errors not in ("skip", "strict"):
        raise ValueError(f"errors must be 'skip' or 'strict', not {errors!r}")
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                if errors == "strict":
                    raise


def scan_jsonl(path: str | Path) -> tuple[list[dict], int]:
    """(records, n_skipped): decode a trace, counting undecodable lines."""
    records: list[dict] = []
    n_skipped = 0
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                n_skipped += 1
    return records, n_skipped


def records_of_type(path: str | Path, record_type: str) -> list[dict]:
    return [r for r in read_jsonl(path) if r.get("type") == record_type]
