"""Run manifests: provenance for one experiment invocation.

Every ``opm-repro run`` / ``report`` invocation with telemetry enabled
produces one :class:`RunManifest` per experiment: which experiment, which
sweep mode, which software stack, how long it took, and how much memory
the process peaked at. A result CSV plus its manifest record is a
self-contained reproduction claim — the paper's measurements are only as
trustworthy as this kind of bookkeeping (Section 5's methodology).
"""

from __future__ import annotations

import dataclasses
import hashlib
import platform as _platform
import sys
import time
import uuid
from typing import Any

try:  # Unix-only; absent on some platforms — manifests then omit peak RSS.
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None  # type: ignore[assignment]


def _numpy_version() -> str:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        return "unavailable"
    return numpy.__version__


def peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, in bytes (None if unknown)."""
    if resource is None:  # pragma: no cover - non-POSIX
        return None
    ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return ru if sys.platform == "darwin" else ru * 1024


def platform_spec_hash(spec: Any) -> str:
    """Stable short hash of a MachineSpec-like object's repr.

    The dataclass repr includes every capacity/bandwidth/latency knob, so
    two runs share a hash iff they simulated the same platform table.
    """
    return hashlib.sha256(repr(spec).encode()).hexdigest()[:16]


@dataclasses.dataclass
class RunManifest:
    """Provenance record for one experiment invocation."""

    run_id: str
    experiment_id: str
    quick: bool
    package_version: str
    python_version: str
    numpy_version: str
    platform: str
    platform_spec_hashes: dict[str, str] = dataclasses.field(default_factory=dict)
    started_unix_s: float = 0.0
    wall_time_s: float | None = None
    peak_rss_bytes: int | None = None
    n_spans: int = 0
    status: str = "running"

    @classmethod
    def start(cls, experiment_id: str, *, quick: bool) -> "RunManifest":
        from repro._version import __version__

        return cls(
            run_id=uuid.uuid4().hex[:12],
            experiment_id=experiment_id,
            quick=quick,
            package_version=__version__,
            python_version=_platform.python_version(),
            numpy_version=_numpy_version(),
            platform=_platform.platform(),
            started_unix_s=time.time(),
        )

    def add_platform(self, name: str, spec: Any) -> None:
        """Record the hash of a machine spec this run simulated."""
        self.platform_spec_hashes[name] = platform_spec_hash(spec)

    def finish(self, *, status: str = "ok", n_spans: int = 0) -> "RunManifest":
        self.wall_time_s = time.time() - self.started_unix_s
        self.peak_rss_bytes = peak_rss_bytes()
        self.n_spans = n_spans
        self.status = status
        return self

    def as_dict(self) -> dict[str, Any]:
        d = dataclasses.asdict(self)
        d["type"] = "manifest"
        return d
