"""Trace-analysis toolkit: mine a JSONL span trace offline.

The JSONL sink (:mod:`repro.telemetry.export`) streams spans in close
order; this module rebuilds the forest and answers the questions the
paper's methodology keeps asking of hardware — *where did the time go*
— about the pipeline itself:

* :func:`render_tree` — indented waterfall of every span with start
  offsets, durations, and attributes;
* :func:`critical_path` — the longest parent→child chain under a root,
  the direct lever for shaving batch wall time;
* :func:`aggregate_spans` — per-name count / total / p50 / p99, the
  shape CI assertions and SLO gates consume;
* :func:`fold_stacks` — folded-stack lines (``a;b;c <µs>``) consumable
  by standard flamegraph tooling.

Traces may contain several runs appended to one file (the sink opens in
append mode); span ids restart per process, so the loader splits the
record stream into *generations* whenever an id repeats and roots each
generation independently. Undecodable lines (a worker or parent killed
mid-write) are counted, not fatal — ``repro trace`` surfaces the count.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.telemetry.export import scan_jsonl


@dataclasses.dataclass
class SpanNode:
    """One span rebuilt from the trace file, linked into its tree."""

    span_id: int
    parent_id: int | None
    name: str
    attrs: dict[str, Any]
    start_s: float
    duration_s: float
    children: list["SpanNode"] = dataclasses.field(default_factory=list)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def self_s(self) -> float:
        """Duration minus direct children's durations (clamped at 0)."""
        return max(
            0.0, self.duration_s - sum(c.duration_s for c in self.children)
        )


@dataclasses.dataclass
class TraceFile:
    """Parsed trace: the span forest plus file-health bookkeeping."""

    path: str
    spans: list[SpanNode]
    roots: list[SpanNode]
    n_records: int
    n_manifests: int
    n_skipped_lines: int


def load_trace(path: str | Path) -> TraceFile:
    """Parse a JSONL trace into a rooted forest.

    Records stream in close order (children before parents), so linking
    happens after all of a generation's nodes exist. A repeated span id
    starts a new generation: ids are monotone within one process, so a
    repeat can only mean another run appended to the same file.
    """
    records, n_skipped = scan_jsonl(path)
    n_manifests = sum(1 for r in records if r.get("type") == "manifest")
    generations: list[dict[int, SpanNode]] = []
    current: dict[int, SpanNode] = {}
    for rec in records:
        if rec.get("type") != "span":
            continue
        sid = rec["span_id"]
        if sid in current:
            generations.append(current)
            current = {}
        current[sid] = SpanNode(
            span_id=sid,
            parent_id=rec.get("parent_id"),
            name=rec.get("name", "?"),
            attrs=dict(rec.get("attrs") or {}),
            start_s=float(rec.get("start_s", 0.0)),
            duration_s=float(rec.get("duration_s", 0.0)),
        )
    if current:
        generations.append(current)

    spans: list[SpanNode] = []
    roots: list[SpanNode] = []
    for generation in generations:
        for node in generation.values():
            spans.append(node)
            parent = (
                generation.get(node.parent_id)
                if node.parent_id is not None
                else None
            )
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        for node in generation.values():
            node.children.sort(key=lambda c: (c.start_s, c.span_id))
    roots.sort(key=lambda r: (r.start_s, r.span_id))
    return TraceFile(
        path=str(path),
        spans=spans,
        roots=roots,
        n_records=len(records),
        n_manifests=n_manifests,
        n_skipped_lines=n_skipped,
    )


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _fmt_attrs(attrs: dict[str, Any], *, limit: int = 60) -> str:
    parts = [f"{k}={v}" for k, v in sorted(attrs.items())]
    text = " ".join(parts)
    return text if len(text) <= limit else text[: limit - 3] + "..."


# -- tree ---------------------------------------------------------------------


def render_tree(trace: TraceFile, *, max_depth: int | None = None) -> str:
    """Indented waterfall: offset from root, duration, name, attrs."""
    if not trace.spans:
        return "(no spans in trace)"
    lines: list[str] = []
    for root in trace.roots:
        for node, depth in _walk(root, max_depth):
            offset_s = node.start_s - root.start_s
            lines.append(
                f"{'+' + _fmt_duration(offset_s):>10}  "
                f"{_fmt_duration(node.duration_s):>9}  "
                f"{'  ' * depth}{node.name}"
                + (f"  [{_fmt_attrs(node.attrs)}]" if node.attrs else "")
            )
    return "\n".join(lines)


def _walk(
    node: SpanNode, max_depth: int | None, depth: int = 0
) -> Iterator[tuple[SpanNode, int]]:
    yield node, depth
    if max_depth is not None and depth >= max_depth:
        return
    for child in node.children:
        yield from _walk(child, max_depth, depth + 1)


# -- critical path ------------------------------------------------------------


@dataclasses.dataclass
class PathStep:
    """One hop of a critical path with its own on-path contribution."""

    node: SpanNode
    self_on_path_s: float  # duration minus the on-path child's duration


def critical_path(trace: TraceFile, root: SpanNode | None = None) -> list[PathStep]:
    """Longest parent→child chain under ``root`` (default: longest root).

    From the root, repeatedly descend into the child that *finishes
    last* — the child gating the parent's close. Each step reports how
    much of its duration is its own (not covered by the next hop), i.e.
    where shaving time actually shortens the batch.
    """
    if root is None:
        batches = [r for r in trace.roots if r.name == "batch"]
        candidates = batches or trace.roots
        if not candidates:
            return []
        root = max(candidates, key=lambda r: r.duration_s)
    steps: list[PathStep] = []
    node = root
    while True:
        if not node.children:
            steps.append(PathStep(node, node.duration_s))
            break
        gating = max(node.children, key=lambda c: (c.end_s, c.duration_s))
        steps.append(
            PathStep(node, max(0.0, node.duration_s - gating.duration_s))
        )
        node = gating
    return steps


def render_critical_path(steps: Sequence[PathStep]) -> str:
    if not steps:
        return "(no spans in trace)"
    total_s = steps[0].node.duration_s or 1.0
    lines = [
        f"critical path: {len(steps)} span(s), "
        f"{_fmt_duration(steps[0].node.duration_s)} end to end"
    ]
    for depth, step in enumerate(steps):
        share = step.self_on_path_s / total_s
        lines.append(
            f"{_fmt_duration(step.node.duration_s):>9}  "
            f"{_fmt_duration(step.self_on_path_s):>9} self ({share:>5.1%})  "
            f"{'  ' * depth}{step.node.name}"
            + (
                f"  [{_fmt_attrs(step.node.attrs)}]"
                if step.node.attrs
                else ""
            )
        )
    return "\n".join(lines)


# -- per-name aggregation -----------------------------------------------------


@dataclasses.dataclass
class AggRow:
    """Aggregated durations for all spans sharing one name."""

    name: str
    count: int
    total_s: float
    p50_s: float
    p99_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values), max(1, math.ceil(q * len(sorted_values))))
    return sorted_values[rank - 1]


def aggregate_spans(trace: TraceFile) -> list[AggRow]:
    """Per-name count/total/p50/p99/max, ordered by total wall time."""
    by_name: dict[str, list[float]] = {}
    for node in trace.spans:
        by_name.setdefault(node.name, []).append(node.duration_s)
    rows = []
    for name, durations in by_name.items():
        durations.sort()
        rows.append(
            AggRow(
                name=name,
                count=len(durations),
                total_s=sum(durations),
                p50_s=_percentile(durations, 0.50),
                p99_s=_percentile(durations, 0.99),
                max_s=durations[-1],
            )
        )
    return sorted(rows, key=lambda r: r.total_s, reverse=True)


def render_top(rows: Sequence[AggRow]) -> str:
    if not rows:
        return "(no spans in trace)"
    name_w = max(len(r.name) for r in rows)
    lines = [
        f"{'span':<{name_w}}  {'count':>6}  {'total':>9}  {'mean':>9}  "
        f"{'p50':>9}  {'p99':>9}  {'max':>9}"
    ]
    for r in rows:
        lines.append(
            f"{r.name:<{name_w}}  {r.count:>6}  "
            f"{_fmt_duration(r.total_s):>9}  {_fmt_duration(r.mean_s):>9}  "
            f"{_fmt_duration(r.p50_s):>9}  {_fmt_duration(r.p99_s):>9}  "
            f"{_fmt_duration(r.max_s):>9}"
        )
    return "\n".join(lines)


def top_as_json(trace: TraceFile, rows: Sequence[AggRow]) -> str:
    payload = {
        "path": trace.path,
        "n_spans": len(trace.spans),
        "n_skipped_lines": trace.n_skipped_lines,
        "rows": [
            {
                "name": r.name,
                "count": r.count,
                "total_s": r.total_s,
                "mean_s": r.mean_s,
                "p50_s": r.p50_s,
                "p99_s": r.p99_s,
                "max_s": r.max_s,
            }
            for r in rows
        ],
    }
    return json.dumps(payload, indent=2)


def critical_path_as_json(
    trace: TraceFile, steps: Sequence[PathStep]
) -> str:
    payload = {
        "path": trace.path,
        "n_skipped_lines": trace.n_skipped_lines,
        "steps": [
            {
                "name": s.node.name,
                "attrs": s.node.attrs,
                "duration_s": s.node.duration_s,
                "self_on_path_s": s.self_on_path_s,
            }
            for s in steps
        ],
    }
    return json.dumps(payload, indent=2)


# -- flame graphs -------------------------------------------------------------


def fold_stacks(trace: TraceFile) -> list[str]:
    """Folded-stack lines (``root;child;leaf <self-µs>``) per stack.

    The value is *self* time in integer microseconds, the convention
    flamegraph.pl / speedscope / inferno all consume; identical stacks
    aggregate.
    """
    folded: dict[str, int] = {}
    for root in trace.roots:
        _fold(root, (), folded)
    return [
        f"{stack} {value}"
        for stack, value in sorted(folded.items())
        if value > 0
    ]


def _fold(
    node: SpanNode, prefix: tuple[str, ...], folded: dict[str, int]
) -> None:
    stack = (*prefix, node.name)
    key = ";".join(stack)
    folded[key] = folded.get(key, 0) + int(round(node.self_s * 1e6))
    for child in node.children:
        _fold(child, stack, folded)
