"""Cross-process trace propagation and worker telemetry collection.

``run all --jobs N`` forks tasks into pool workers; without help, every
span and counter a worker records dies with its process and the batch
trace is a scheduler skeleton with no organs. This module is the
courier between the two processes:

* **Parent, at submission** — :func:`open_task_span` opens a real
  ``task`` span (manual lifecycle, off the nesting stack) and
  :func:`current_context` packs a :class:`TraceContext` (trace id,
  parent span id, span budget) into the task's arguments.
* **Worker, around the task** — :func:`worker_collection` swaps in a
  fresh process-local tracer and metrics registry (so nothing inherited
  from the parent — in particular a fork-shared JSONL sink — is
  touched), bounded by the context's span budget, and exports the
  finished spans + metrics snapshot for the (already-serialized) result
  envelope.
* **Parent, at resolution** — :func:`absorb` remaps worker span ids
  onto the parent tracer's id space, reparents worker roots under the
  task span, rebases worker timestamps onto the parent clock, merges
  the metric deltas (``Counter``/``Gauge``/``Histogram.merge``), and
  accounts budget overflow in ``runtime.telemetry.dropped``.

Clock rebasing: ``time.perf_counter`` epochs are per-process, so worker
timestamps are shipped relative to a ``clock_origin_s`` captured at
task start and re-anchored at the parent task span's ``start_s``. The
offset between "task submitted" and "worker began" (pickle + queue
latency) is therefore folded into the anchor — sub-millisecond in
practice, and irrelevant to durations, which ship verbatim.

Failure semantics: a worker that raises or is reaped ships nothing (the
envelope never returns), so its spans are lost — by design; the
parent's ``task`` span still records the attempt with its status.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
import uuid
from typing import Any, Iterator

from repro import telemetry
from repro.telemetry import names as tm
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span, Tracer

#: Finished spans one task may ship home; the overflow (oldest first)
#: is counted into ``runtime.telemetry.dropped`` so a pathological task
#: cannot balloon the parent's ring buffer or trace file.
DEFAULT_SPAN_BUDGET = 2048


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """What a worker needs to parent its spans under the batch trace."""

    trace_id: str
    experiment_id: str
    parent_span_id: int | None
    span_budget: int = DEFAULT_SPAN_BUDGET

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TraceContext":
        return cls(**payload)


def new_trace_id() -> str:
    """Fresh id tying one batch's spans together across processes."""
    return uuid.uuid4().hex[:16]


def current_context(
    experiment_id: str,
    *,
    trace_id: str,
    parent_span_id: int | None,
    span_budget: int = DEFAULT_SPAN_BUDGET,
) -> TraceContext | None:
    """Context to ship with one task (None when telemetry is off)."""
    if not telemetry.enabled():
        return None
    return TraceContext(
        trace_id=trace_id,
        experiment_id=experiment_id,
        parent_span_id=parent_span_id,
        span_budget=span_budget,
    )


# -- parent side: task spans --------------------------------------------------


def open_task_span(
    experiment_id: str, *, quick: bool, attempt: int
) -> Span | None:
    """Open the scheduler-side ``task`` span for one pool submission.

    Manual lifecycle (:meth:`Tracer.begin`): the span opens when the
    task reaches a worker and closes attempts later at resolution,
    possibly interleaved with other tasks on the scheduler thread — a
    ``with`` block cannot express that. Parented under the innermost
    open span (the ``batch`` span during pool execution).
    """
    if not telemetry.enabled():
        return None
    tracer = telemetry.get_tracer()
    current = tracer.current()
    return tracer.begin(
        tm.SPAN_TASK,
        parent_id=current.span_id if current is not None else None,
        id=experiment_id,
        quick=quick,
        attempt=attempt,
    )


def close_task_span(span: Span | None, *, status: str) -> None:
    """Record a task span's terminal status and close it."""
    if span is None:
        return
    span.set_attr("status", status)
    telemetry.get_tracer().finish(span)


# -- worker side --------------------------------------------------------------


class WorkerShipment:
    """Carrier the worker fills as its collection scope closes."""

    __slots__ = ("payload",)

    def __init__(self) -> None:
        self.payload: dict[str, Any] | None = None

    def export(self) -> dict[str, Any] | None:
        """The envelope-ready telemetry payload (None when off)."""
        return self.payload


@contextlib.contextmanager
def worker_collection(ctx: TraceContext | None) -> Iterator[WorkerShipment]:
    """Collect one task's telemetry into a shippable payload.

    Installs a fresh tracer (ring capacity = the context's span budget)
    and metrics registry for the duration of the task, then restores
    whatever was there before. With ``ctx=None`` (telemetry off in the
    parent) this is a no-op scope and the shipment stays empty.
    """
    carrier = WorkerShipment()
    if ctx is None:
        yield carrier
        return
    state = telemetry._state()
    tracer = Tracer(capacity=ctx.span_budget)
    registry = MetricsRegistry()
    clock_origin_s = time.perf_counter()
    prev = state.adopt(enabled=True, tracer=tracer, registry=registry)
    try:
        yield carrier
    finally:
        state.restore(prev)
        carrier.payload = {
            "trace_id": ctx.trace_id,
            "experiment_id": ctx.experiment_id,
            "clock_origin_s": clock_origin_s,
            "spans": [sp.as_dict() for sp in tracer.finished()],
            "n_dropped": tracer.n_dropped,
            "metrics": registry.snapshot(),
        }


# -- parent side: merging -----------------------------------------------------


def absorb(shipment: dict[str, Any] | None, *, task_span: Span | None) -> int:
    """Merge one worker's shipped telemetry; returns spans merged.

    Worker span ids are remapped onto this tracer's id space (internal
    parent/child links preserved); roots — and children whose parent
    fell to the span budget — re-parent under ``task_span``. Worker
    timestamps rebase so each span keeps its offset from task start on
    the parent's clock. Metric deltas fold into the live registry, and
    budget overflow increments ``runtime.telemetry.dropped``.
    """
    if shipment is None or not telemetry.enabled():
        return 0
    tracer = telemetry.get_tracer()
    records = shipment.get("spans") or ()
    root_parent = task_span.span_id if task_span is not None else None
    origin_s = shipment.get("clock_origin_s", 0.0)
    anchor_s = task_span.start_s if task_span is not None else origin_s
    id_map = {rec["span_id"]: tracer.allocate_id() for rec in records}
    merged = 0
    for rec in records:
        start_s = anchor_s + (rec["start_s"] - origin_s)
        sp = Span(
            span_id=id_map[rec["span_id"]],
            parent_id=id_map.get(rec.get("parent_id"), root_parent),
            name=rec["name"],
            attrs=dict(rec.get("attrs") or {}),
            start_s=start_s,
            end_s=start_s + rec.get("duration_s", 0.0),
        )
        tracer.ingest(sp)
        merged += 1
    if merged:
        telemetry.counter(tm.METRIC_TELEMETRY_MERGED).inc(merged)
    dropped = shipment.get("n_dropped", 0)
    if dropped:
        telemetry.counter(tm.METRIC_TELEMETRY_DROPPED).inc(dropped)
    metrics = shipment.get("metrics")
    if metrics:
        telemetry.get_registry().merge_snapshot(metrics)
    return merged
