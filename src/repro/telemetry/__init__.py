"""Telemetry: span tracing, metrics, and run provenance for the pipeline.

The paper's contribution is measurement; this package is the measurement
of the measurement pipeline itself. Three cooperating pieces:

* **Spans** (:mod:`repro.telemetry.spans`) — nested timed regions opened
  with ``with telemetry.span("simulate", kernel="spmv"):``, kept in a
  ring buffer and optionally streamed as JSONL.
* **Metrics** (:mod:`repro.telemetry.metrics`) — a process-wide registry
  of counters/gauges/histograms (cache hits, trace events, ...).
* **Manifests** (:mod:`repro.telemetry.manifest`) — provenance records
  tying every experiment invocation to its software stack, wall time and
  peak RSS.

Telemetry is **off by default** and the disabled fast path is one global
check: ``span()`` returns a shared no-op context manager and ``counter()``
a shared no-op metric, so instrumented code costs effectively nothing in
ordinary runs. Enable per-process with :func:`configure` or scoped with
:func:`session`::

    with telemetry.session(trace_path="run.jsonl"):
        run("fig6")

Thread-safety: the span stack is thread-local (each thread nests its own
spans); the ring buffer, registry, and JSONL sink are lock-protected.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Mapping

from repro.telemetry import names
from repro.telemetry.export import JsonlSink, read_jsonl, records_of_type, scan_jsonl
from repro.telemetry.manifest import RunManifest, platform_spec_hash
from repro.telemetry.metrics import (
    NOOP_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import NOOP_SPAN, Span, Tracer, traced

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "Tracer",
    "configure",
    "counter",
    "disable",
    "enabled",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "manifests",
    "names",
    "note_platform",
    "platform_spec_hash",
    "read_jsonl",
    "record_counts",
    "records_of_type",
    "reset",
    "scan_jsonl",
    "session",
    "span",
    "traced",
]


class _State:
    """Process-wide telemetry state (one per interpreter)."""

    def __init__(self) -> None:
        self.enabled = False
        self.attach_summary = True
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self.sink: JsonlSink | None = None
        self.manifests: list[RunManifest] = []

    def adopt(
        self, *, enabled: bool, tracer: Tracer, registry: MetricsRegistry
    ) -> tuple:
        """Swap in process-local tracer/registry; returns the prior state.

        Used by :mod:`repro.telemetry.collect` when a pool worker starts
        a task: the worker must not inherit the parent's ring buffer or
        (under fork) its open JSONL sink — spans travel home inside the
        task result envelope instead. The swap is plain attribute
        rebinding on this one object, so worker-purity holds: nothing at
        module level is reassigned.
        """
        prev = (self.enabled, self.tracer, self.registry, self.sink)
        self.enabled = enabled
        self.tracer = tracer
        self.registry = registry
        self.sink = None
        return prev

    def restore(self, prev: tuple) -> None:
        """Undo :meth:`adopt` (worker task finished or died trying)."""
        self.enabled, self.tracer, self.registry, self.sink = prev


_STATE = _State()


def _state() -> _State:
    """The live process-wide state (internal; for the collect module)."""
    return _STATE


# -- configuration -----------------------------------------------------------


def configure(
    *,
    enabled: bool = True,
    trace_path: str | None = None,
    attach_summary: bool | None = None,
) -> None:
    """Turn telemetry on/off; optionally stream spans/manifests as JSONL."""
    _STATE.enabled = enabled
    if attach_summary is not None:
        _STATE.attach_summary = attach_summary
    if _STATE.sink is not None:
        _STATE.sink.close()
        _STATE.sink = None
    if trace_path is not None:
        _STATE.sink = JsonlSink(trace_path)
    _STATE.tracer.attach_sink(_STATE.sink if enabled else None)


def disable() -> None:
    configure(enabled=False)


def enabled() -> bool:
    return _STATE.enabled


def reset() -> None:
    """Clear spans, metrics and manifests (keeps the enabled flag)."""
    _STATE.tracer.clear()
    _STATE.registry.clear()
    _STATE.manifests.clear()


@contextlib.contextmanager
def session(
    *, trace_path: str | None = None, attach_summary: bool | None = None
) -> Iterator[_State]:
    """Scoped enablement: fresh spans/metrics inside, prior state after."""
    prev_enabled = _STATE.enabled
    prev_attach = _STATE.attach_summary
    reset()
    configure(enabled=True, trace_path=trace_path, attach_summary=attach_summary)
    try:
        yield _STATE
    finally:
        configure(enabled=prev_enabled, attach_summary=prev_attach)


# -- spans -------------------------------------------------------------------


def get_tracer() -> Tracer:
    return _STATE.tracer


def span(name: str, **attrs: Any):
    """Open a nested span (no-op context manager when disabled)."""
    if not _STATE.enabled:
        return NOOP_SPAN
    return _STATE.tracer.span(name, **attrs)


# -- metrics -----------------------------------------------------------------


def get_registry() -> MetricsRegistry:
    return _STATE.registry


def counter(name: str):
    return _STATE.registry.counter(name) if _STATE.enabled else NOOP_METRIC


def gauge(name: str):
    return _STATE.registry.gauge(name) if _STATE.enabled else NOOP_METRIC


def histogram(name: str, buckets=None):
    if not _STATE.enabled:
        return NOOP_METRIC
    if buckets is None:
        return _STATE.registry.histogram(name)
    return _STATE.registry.histogram(name, buckets)


def record_counts(prefix: str, counts: Mapping[str, int | float]) -> None:
    """Bulk-publish integer counters under ``prefix`` (no-op when off)."""
    if _STATE.enabled:
        _STATE.registry.record_counts(prefix, counts)


# -- manifests ---------------------------------------------------------------


def start_manifest(experiment_id: str, *, quick: bool) -> RunManifest | None:
    """Open a provenance record for one experiment (None when disabled)."""
    if not _STATE.enabled:
        return None
    m = RunManifest.start(experiment_id, quick=quick)
    _STATE.manifests.append(m)
    return m


def finish_manifest(m: RunManifest | None, *, status: str = "ok") -> None:
    """Close a manifest and stream it to the sink, if any."""
    if m is None:
        return
    m.finish(status=status, n_spans=_STATE.tracer.n_started)
    if _STATE.sink is not None:
        _STATE.sink.write(m.as_dict())


def manifests() -> list[RunManifest]:
    return list(_STATE.manifests)


def note_platform(spec: Any) -> None:
    """Record a simulated platform's spec hash on the open manifest.

    Called by the platform factories (:func:`repro.platforms.broadwell`
    etc.); a no-op unless a manifest is currently running.
    """
    if not _STATE.enabled or not _STATE.manifests:
        return
    m = _STATE.manifests[-1]
    if m.status == "running" and getattr(spec, "name", None):
        m.add_platform(spec.name, spec)


def attach_summary_enabled() -> bool:
    """Whether experiment results should carry a telemetry summary table."""
    return _STATE.enabled and _STATE.attach_summary
