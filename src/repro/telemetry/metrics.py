"""Process-wide metrics registry: counters, gauges, histograms.

Metric names are dot-separated paths ("memory.L1.hits",
"kernel.trace.events"). The registry hands out metric objects that are
cheap to update — counters and gauges are a single attribute update under
the GIL; histograms do one bisect per observation. A shared no-op variant
of each metric type backs the disabled mode, so call sites can cache a
handle once and never branch again.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterable, Mapping


def _record_of(other: Any, expected_type: str) -> dict:
    """Normalize a metric object or its ``as_dict`` record for merging."""
    record = other.as_dict() if hasattr(other, "as_dict") else dict(other)
    if record.get("type") != expected_type:
        raise TypeError(
            f"cannot merge a {record.get('type')!r} record into a "
            f"{expected_type}"
        )
    return record

#: Default histogram buckets: powers of ten from 1 µs to 100 s, in seconds.
DEFAULT_TIME_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        self.value += amount

    def merge(self, other: "Counter | Mapping") -> None:
        """Fold in another counter's total (sum law: order-independent)."""
        self.inc(_record_of(other, "counter")["value"])

    def as_dict(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """Last-written value (may go up or down)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def merge(self, other: "Gauge | Mapping") -> None:
        """Adopt the other gauge's value (last-writer-wins law).

        The worker observed strictly after this process last wrote (its
        delta ships only when the task finishes), so the incoming value
        is the later write by construction.
        """
        self.set(_record_of(other, "gauge")["value"])

    def as_dict(self) -> dict:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Cumulative histogram over explicit, sorted bucket upper bounds.

    ``counts[i]`` counts observations ``<= bounds[i]``; one overflow slot
    counts the rest. Tracks sum/count/min/max for mean and range readouts.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count", "min", "max")

    def __init__(self, name: str, buckets: Iterable[float] = DEFAULT_TIME_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper bound of the bucket holding rank q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def merge(self, other: "Histogram | Mapping") -> None:
        """Fold in another histogram observed over the same buckets.

        Bucket-wise sums plus sum/count/min/max combination make
        ``merge(a, b)`` equal to observing both series interleaved in
        any order.
        """
        record = _record_of(other, "histogram")
        if tuple(record["buckets"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds differ "
                f"({record['buckets']} vs {list(self.bounds)})"
            )
        self.counts = [a + b for a, b in zip(self.counts, record["counts"])]
        self.total += record["sum"]
        self.count += record["count"]
        if record["count"]:
            if record["min"] < self.min:
                self.min = record["min"]
            if record["max"] > self.max:
                self.max = record["max"]

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class _NoopMetric:
    """Accepts every update and stores nothing; shared across call sites."""

    __slots__ = ()
    name = "<noop>"
    value = 0

    def inc(self, amount: int | float = 1) -> None: ...
    def set(self, value: float) -> None: ...
    def add(self, delta: float) -> None: ...
    def observe(self, value: float) -> None: ...


NOOP_METRIC = _NoopMetric()


class MetricsRegistry:
    """Named metrics with get-or-create semantics, safe across threads."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory) -> Counter | Gauge | Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = self._metrics[name] = factory()
        return metric

    def counter(self, name: str) -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name))
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a Counter")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name))
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a Gauge")
        return metric

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        metric = self._get_or_create(name, lambda: Histogram(name, buckets))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a Histogram")
        return metric

    def get(self, name: str) -> Counter | Gauge | Histogram:
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """Name -> as_dict() for every metric, sorted by name."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: m.as_dict() for name, m in items}

    def merge_snapshot(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold a :meth:`snapshot`-shaped mapping into this registry.

        The bridge for cross-process collection: a worker ships its
        registry snapshot inside the task result envelope and the parent
        merges it here. Unknown names are created on first sight (with
        the shipped bucket bounds for histograms), so worker-only
        metrics survive the hop.
        """
        for name, record in snapshot.items():
            kind = record.get("type")
            if kind == "counter":
                self.counter(name).merge(record)
            elif kind == "gauge":
                self.gauge(name).merge(record)
            elif kind == "histogram":
                self.histogram(name, record["buckets"]).merge(record)
            else:
                raise TypeError(
                    f"metric {name!r}: unknown record type {kind!r}"
                )

    def record_counts(self, prefix: str, counts: Mapping[str, int | float]) -> None:
        """Bulk-increment ``<prefix>.<key>`` counters from a mapping.

        The bridge used by :mod:`repro.memory` to publish
        :class:`~repro.memory.stats.LevelStats`-shaped dicts without the
        memory layer importing metric classes.
        """
        for key, value in counts.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.counter(f"{prefix}.{key}").inc(value)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
