"""Canonical telemetry span and metric names.

Every span opened and every counter/gauge/histogram published by the
pipeline takes its name from this module, so the names that
``report.py``, ``telemetry.summary``, CI assertions, and external trace
consumers key on cannot silently drift from the names the code emits.
``repro audit`` rule SPAN001 enforces the contract statically: a span or
metric opened with a string literal must use one of the names registered
here (or a prefix produced by one of the helper functions below).

Adding a new span or metric is a two-line change: define the constant
(or extend a prefix helper) and use it at the call site.
"""

from __future__ import annotations

# -- spans --------------------------------------------------------------------

#: One scheduler batch (``repro.runtime.scheduler.run_batch``).
SPAN_BATCH = "batch"
#: One content-addressed cache probe for a task.
SPAN_CACHE_LOOKUP = "cache.lookup"
#: One inline task execution under the scheduler.
SPAN_TASK = "task"
#: Resolution of one pooled task (done / failed / timeout).
SPAN_TASK_WAIT = "task.wait"
#: Executor recycling after a hung worker or broken pool.
SPAN_POOL_REAP = "pool.reap"
#: One experiment driver invocation (``repro.experiments.registry.run``).
SPAN_EXPERIMENT = "experiment"
#: One stepping-model curve (``repro.engine.stepping.curve``).
SPAN_STEPPING_CURVE = "stepping.curve"
#: Kernel access-trace generation (scalar and batched paths).
SPAN_KERNEL_TRACE = "kernel.trace"
#: Scalar kernel simulation (trace + hierarchy walk).
SPAN_KERNEL_SIMULATE = "kernel.simulate"
#: Batched (ndarray) kernel simulation.
SPAN_KERNEL_SIMULATE_BATCHED = "kernel.simulate_batched"
#: One kernel evaluated inside a Broadwell/KNL sweep.
SPAN_SWEEP_KERNEL = "sweep.kernel"
#: One hierarchy trace replay (scalar run/run_lines and batched paths).
SPAN_HIERARCHY_RUN = "hierarchy.run"
#: One HTTP request handled by the memory-advisor service (manual
#: lifecycle: the asyncio handler interleaves requests on one thread).
SPAN_SERVE_REQUEST = "serve.request"
#: One coalesced micro-batch drained by the serve batcher.
SPAN_SERVE_BATCH = "serve.batch"
#: One query executed on a serve worker shard (manual lifecycle).
SPAN_SERVE_EXECUTE = "serve.execute"
#: One advisor engine evaluation (worker side, with-scoped).
SPAN_SERVE_ADVISE = "serve.advise"
#: Building one per-level energy ledger from a simulated hierarchy.
SPAN_POWER_LEDGER = "power.ledger"

#: Every canonical span name (SPAN001 checks literals against this set).
SPAN_NAMES = frozenset(
    {
        SPAN_BATCH,
        SPAN_CACHE_LOOKUP,
        SPAN_TASK,
        SPAN_TASK_WAIT,
        SPAN_POOL_REAP,
        SPAN_EXPERIMENT,
        SPAN_STEPPING_CURVE,
        SPAN_KERNEL_TRACE,
        SPAN_KERNEL_SIMULATE,
        SPAN_KERNEL_SIMULATE_BATCHED,
        SPAN_SWEEP_KERNEL,
        SPAN_HIERARCHY_RUN,
        SPAN_SERVE_REQUEST,
        SPAN_SERVE_BATCH,
        SPAN_SERVE_EXECUTE,
        SPAN_SERVE_ADVISE,
        SPAN_POWER_LEDGER,
    }
)

# -- metrics ------------------------------------------------------------------

#: Gauge: worker processes configured for the current batch.
METRIC_RUNTIME_WORKERS = "runtime.workers"
#: Counter: tasks skipped because a resume journal marked them done.
METRIC_TASKS_RESUMED = "runtime.tasks.resumed"
#: Counter: result-cache hits during batch scheduling.
METRIC_CACHE_HITS = "runtime.cache.hits"
#: Counter: result-cache misses during batch scheduling.
METRIC_CACHE_MISSES = "runtime.cache.misses"
#: Counter: tasks that finished with a result.
METRIC_TASKS_COMPLETED = "runtime.tasks.completed"
#: Counter: tasks whose final attempt raised.
METRIC_TASKS_FAILED = "runtime.tasks.failed"
#: Counter: retry requeues (failures and timeouts with attempts left).
METRIC_TASKS_RETRIED = "runtime.tasks.retried"
#: Counter: per-occurrence task deadline expiries.
METRIC_TASKS_TIMEOUT = "runtime.tasks.timeout"
#: Counter: executor recycles (hung worker / broken pool).
METRIC_POOL_RECYCLED = "runtime.pool.recycled"
#: Counter: worker-side spans merged into the parent trace.
METRIC_TELEMETRY_MERGED = "runtime.telemetry.spans_merged"
#: Counter: worker-side spans dropped by the per-task span budget.
METRIC_TELEMETRY_DROPPED = "runtime.telemetry.dropped"
#: Histogram: wall seconds per completed task.
METRIC_TASK_WALL_S = "runtime.task_wall_s"
#: Counter: points evaluated by the stepping engine.
METRIC_STEPPING_POINTS = "engine.stepping.points"
#: Counter: experiment driver invocations through the registry.
METRIC_EXPERIMENT_RUNS = "experiments.runs"
#: Counter: sweep points evaluated (Broadwell + KNL sweeps).
METRIC_SWEEP_POINTS = "sweep.points"
#: Counter: HTTP requests accepted by the advisor service.
METRIC_SERVE_REQUESTS = "serve.requests.total"
#: Counter: requests answered with a non-2xx status.
METRIC_SERVE_ERRORS = "serve.requests.errors"
#: Counter: requests folded onto an identical in-flight execution.
METRIC_SERVE_COALESCED = "serve.requests.coalesced"
#: Counter: serve answers produced without touching disk (LRU hot tier).
METRIC_SERVE_CACHE_HOT = "serve.cache.hot_hits"
#: Counter: serve answers replayed from the shared on-disk cache.
METRIC_SERVE_CACHE_DISK = "serve.cache.disk_hits"
#: Counter: serve queries that required an engine execution.
METRIC_SERVE_CACHE_MISSES = "serve.cache.misses"
#: Counter: advisor engine evaluations (the coalescing-proof number).
METRIC_SERVE_ENGINE_EXECUTIONS = "serve.engine.executions"
#: Counter: worker executions recycled after a timeout or pool break.
METRIC_SERVE_RECYCLED = "serve.pool.recycled"
#: Histogram: wall seconds per served request.
METRIC_SERVE_REQUEST_WALL_S = "serve.request_wall_s"
#: Histogram: queries per drained micro-batch.
METRIC_SERVE_BATCH_SIZE = "serve.batch_size"
#: Counter: energy ledgers built from simulated hierarchies.
METRIC_POWER_LEDGERS = "power.ledgers"
#: Counter: energy-conservation violations detected while building
#: ledgers (should stay at zero; non-zero means the books do not close).
METRIC_POWER_CONSERVATION_FAILURES = "power.conservation.failures"

#: Every canonical static metric name.
METRIC_NAMES = frozenset(
    {
        METRIC_RUNTIME_WORKERS,
        METRIC_TASKS_RESUMED,
        METRIC_CACHE_HITS,
        METRIC_CACHE_MISSES,
        METRIC_TASKS_COMPLETED,
        METRIC_TASKS_FAILED,
        METRIC_TASKS_RETRIED,
        METRIC_TASKS_TIMEOUT,
        METRIC_POOL_RECYCLED,
        METRIC_TELEMETRY_MERGED,
        METRIC_TELEMETRY_DROPPED,
        METRIC_TASK_WALL_S,
        METRIC_STEPPING_POINTS,
        METRIC_EXPERIMENT_RUNS,
        METRIC_SWEEP_POINTS,
        METRIC_SERVE_REQUESTS,
        METRIC_SERVE_ERRORS,
        METRIC_SERVE_COALESCED,
        METRIC_SERVE_CACHE_HOT,
        METRIC_SERVE_CACHE_DISK,
        METRIC_SERVE_CACHE_MISSES,
        METRIC_SERVE_ENGINE_EXECUTIONS,
        METRIC_SERVE_RECYCLED,
        METRIC_SERVE_REQUEST_WALL_S,
        METRIC_SERVE_BATCH_SIZE,
        METRIC_POWER_LEDGERS,
        METRIC_POWER_CONSERVATION_FAILURES,
    }
)

#: Allowed prefixes for dynamically constructed metric names (built by
#: the helper functions below; SPAN001 accepts literals under these).
METRIC_PREFIXES = ("kernel.", "memory.", "power.")


def kernel_trace_events(kernel: str) -> str:
    """Counter name for one kernel's generated trace events."""
    return f"kernel.{kernel}.trace_events"


def memory_level_prefix(level: str) -> str:
    """``record_counts`` prefix for one hierarchy level's traffic."""
    return f"memory.{level}"


def memory_cache_prefix(level: str) -> str:
    """``record_counts`` prefix for one level's internal cache counters."""
    return f"memory.{level}.cache"


def power_level_prefix(level: str) -> str:
    """``record_counts`` prefix for one level's priced energy."""
    return f"power.{level}"
