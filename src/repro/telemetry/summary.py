"""Aggregate spans and metrics into human-readable breakdown tables.

The profile view groups finished spans by name and reports wall time and
*self* time (wall minus time spent in direct children), the numbers that
actually say where an ``opm-repro run`` spent its life. Tables come back
as (columns, rows) pairs so the experiments layer can wrap them in
:class:`~repro.experiments.results.DataTable` without a circular import.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.telemetry.spans import Span

PHASE_COLUMNS = (
    "phase", "count", "total_s", "self_s", "mean_ms", "share", "attrs"
)

METRIC_COLUMNS = ("metric", "value")


@dataclasses.dataclass
class PhaseRow:
    """Aggregated timings for all spans sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    example_attrs: str = ""

    @property
    def mean_ms(self) -> float:
        return (self.total_s / self.count) * 1e3 if self.count else 0.0


def _self_times(spans: Sequence[Span]) -> dict[int, float]:
    """span_id -> duration minus direct children's durations."""
    self_s = {sp.span_id: sp.duration_s for sp in spans}
    for sp in spans:
        if sp.parent_id is not None and sp.parent_id in self_s:
            self_s[sp.parent_id] -= sp.duration_s
    return {sid: max(0.0, t) for sid, t in self_s.items()}


def aggregate_phases(spans: Sequence[Span]) -> list[PhaseRow]:
    """Group finished spans by name, ordered by total wall time."""
    self_s = _self_times(spans)
    rows: dict[str, PhaseRow] = {}
    for sp in spans:
        row = rows.setdefault(sp.name, PhaseRow(name=sp.name))
        row.count += 1
        row.total_s += sp.duration_s
        row.self_s += self_s.get(sp.span_id, 0.0)
        if not row.example_attrs and sp.attrs:
            row.example_attrs = _fmt_attrs(sp.attrs)
    return sorted(rows.values(), key=lambda r: r.total_s, reverse=True)


def _fmt_attrs(attrs: dict) -> str:
    parts = [f"{k}={v}" for k, v in sorted(attrs.items()) if k != "error"]
    text = " ".join(parts)
    return text if len(text) <= 48 else text[:45] + "..."


def phase_table(spans: Sequence[Span]) -> tuple[tuple[str, ...], list[tuple]]:
    """(columns, rows) of the per-phase wall/self-time breakdown."""
    rows = aggregate_phases(spans)
    # Share of the run is measured against root-span wall time so nested
    # phases do not push the denominator past 100%.
    root_total = sum(sp.duration_s for sp in spans if sp.parent_id is None)
    denom = root_total or sum(r.self_s for r in rows) or 1.0
    out = [
        (
            r.name,
            r.count,
            round(r.total_s, 6),
            round(r.self_s, 6),
            round(r.mean_ms, 4),
            f"{r.self_s / denom:.1%}",
            r.example_attrs,
        )
        for r in rows
    ]
    return PHASE_COLUMNS, out


def metrics_table(snapshot: dict[str, dict]) -> tuple[tuple[str, ...], list[tuple]]:
    """(columns, rows) for a registry snapshot; histograms summarize."""
    rows: list[tuple] = []
    for name, record in snapshot.items():
        if record["type"] == "histogram":
            rows.append(
                (
                    name,
                    f"n={record['count']} sum={record['sum']:.4g} "
                    f"min={record['min']} max={record['max']}",
                )
            )
        else:
            value = record["value"]
            rows.append((name, f"{value:.6g}" if isinstance(value, float) else value))
    return METRIC_COLUMNS, rows


def render_profile(
    spans: Sequence[Span],
    snapshot: dict[str, dict] | None = None,
    *,
    width: int = 24,
) -> str:
    """Terminal rendering of the phase breakdown with self-time bars."""
    from repro.viz.ascii import hbar

    rows = aggregate_phases(spans)
    if not rows:
        return "(no spans recorded)"
    root_total = sum(sp.duration_s for sp in spans if sp.parent_id is None)
    denom = root_total or max(r.self_s for r in rows) or 1.0
    name_w = max(len(r.name) for r in rows)
    lines = [
        f"{'phase':<{name_w}}  {'count':>6}  {'total_s':>9}  {'self_s':>9}  "
        f"{'mean_ms':>9}  self-time"
    ]
    for r in rows:
        frac = min(1.0, r.self_s / denom)
        lines.append(
            f"{r.name:<{name_w}}  {r.count:>6}  {r.total_s:>9.4f}  "
            f"{r.self_s:>9.4f}  {r.mean_ms:>9.3f}  {hbar(frac, width)} {frac:>6.1%}"
        )
    if snapshot:
        lines.append("")
        lines.append("metrics:")
        _, metric_rows = metrics_table(snapshot)
        metric_w = max(len(str(m)) for m, _ in metric_rows)
        lines.extend(f"  {m:<{metric_w}}  {v}" for m, v in metric_rows)
    return "\n".join(lines)
