"""Span tracer: nested timed regions with attributes.

A *span* is one timed region of the pipeline ("experiment", "kernel.trace",
"hierarchy.run", ...) with free-form attributes. Spans nest: the tracer
keeps a per-thread stack, so a span opened while another is active records
that other span as its parent. Finished spans land in a bounded ring
buffer (cheap to keep around for summaries) and, when a sink is attached,
are streamed out as JSONL the moment they close.

The tracer itself is always functional; the *near-zero-cost disabled mode*
lives one layer up — :func:`repro.telemetry.span` hands out a shared no-op
context manager when telemetry is off, so the hot path pays one global
check and nothing else.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Iterator

#: Default ring-buffer capacity (finished spans retained for summaries).
DEFAULT_CAPACITY = 16384


@dataclasses.dataclass
class Span:
    """One timed region. ``end_s`` is None while the span is open."""

    span_id: int
    parent_id: int | None
    name: str
    attrs: dict[str, Any]
    start_s: float
    end_s: float | None = None

    @property
    def duration_s(self) -> float:
        """Wall time of the span (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set_attr(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute (e.g. a count known only at exit)."""
        self.attrs[key] = value

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": self.attrs,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }


class _NoopSpan:
    """Shared do-nothing stand-in returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager binding one :class:`Span` to a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        self._tracer._pop(self._span)


class Tracer:
    """Records nested spans into a ring buffer and an optional sink."""

    def __init__(self, *, capacity: int = DEFAULT_CAPACITY, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or time.perf_counter
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._sink: Any | None = None  # object with .write(dict)
        self.n_started = 0
        self.n_dropped = 0

    # -- configuration ------------------------------------------------------

    def attach_sink(self, sink: Any | None) -> None:
        """Stream every finished span to ``sink.write(record)`` (or stop)."""
        self._sink = sink

    # -- span lifecycle -----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a nested span; use as ``with tracer.span("phase") as sp:``."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        sp = Span(
            span_id=next(self._ids),
            parent_id=parent,
            name=name,
            attrs=dict(attrs),
            start_s=self._clock(),
        )
        return _ActiveSpan(self, sp)

    def _push(self, sp: Span) -> None:
        self.n_started += 1
        self._stack().append(sp)

    def _pop(self, sp: Span) -> None:
        sp.end_s = self._clock()
        stack = self._stack()
        # Tolerate out-of-order exits (generators finalized late): unwind
        # to the matching span rather than asserting.
        while stack:
            top = stack.pop()
            if top is sp:
                break
        self._record(sp)

    def _record(self, sp: Span) -> None:
        with self._lock:
            if len(self._finished) == self._finished.maxlen:
                self.n_dropped += 1
            self._finished.append(sp)
        if self._sink is not None:
            self._sink.write(sp.as_dict())

    # -- manual lifecycle ----------------------------------------------------
    #
    # The scheduler's pool path cannot use a ``with`` block: a task span
    # opens at submission on the parent's event loop but closes attempts
    # later, possibly after unrelated spans opened on the same thread.
    # ``begin``/``finish`` manage such a span explicitly, never touching
    # the thread-local stack, so interleaved lifetimes cannot misparent
    # stack-scoped spans.

    def begin(self, name: str, *, parent_id: int | None = None, **attrs: Any) -> Span:
        """Open a span with an explicit parent, off the nesting stack."""
        self.n_started += 1
        return Span(
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            attrs=dict(attrs),
            start_s=self._clock(),
        )

    def finish(self, sp: Span) -> None:
        """Close and record a span obtained from :meth:`begin`."""
        sp.end_s = self._clock()
        self._record(sp)

    def allocate_id(self) -> int:
        """Reserve a fresh span id (for adopting foreign spans)."""
        return next(self._ids)

    def ingest(self, sp: Span) -> None:
        """Adopt an externally built, already-finished span.

        Used by :mod:`repro.telemetry.collect` to merge worker-process
        spans (with remapped ids) into this tracer's buffer and sink.
        """
        self.n_started += 1
        self._record(sp)

    # -- introspection ------------------------------------------------------

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finished(self) -> list[Span]:
        """Snapshot of retained finished spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def iter_finished(self, name: str | None = None) -> Iterator[Span]:
        for sp in self.finished():
            if name is None or sp.name == name:
                yield sp

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
        self.n_started = 0
        self.n_dropped = 0


def traced(name: str | None = None, **attrs: Any) -> Callable:
    """Decorator: run the function inside a span named after it.

    Resolves the active tracer through :mod:`repro.telemetry` at call time,
    so decorated functions honour enable/disable without re-import.
    """

    def wrap(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def inner(*args: Any, **kwargs: Any) -> Any:
            from repro import telemetry

            with telemetry.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return inner

    return wrap
