"""Model-validation harness: analytic engine vs exact trace simulation.

DESIGN.md promises the analytic hit-rate model (reuse curve evaluated at
cumulative capacities) agrees with the exact set-associative simulator on
canonical access patterns. This module runs a *workload zoo* through
both paths and reports per-level hit-rate errors, giving the reproduction
a quantified accuracy statement (also enforced in
``tests/test_validation.py`` and surfaced via ``opm-repro validate``).

Method: for each zoo workload we (1) generate its address trace, (2) run
the scaled-down exact hierarchy, (3) compute the trace's *measured*
stack-distance curve, and (4) compare the cumulative hit fractions the
curve predicts at each level's cumulative capacity with the simulator's
measured ones. The curve-vs-simulator error isolates exactly the
approximations the analytic engine makes (full associativity, no
replacement-policy effects).

The harness runs entirely on the batched ndarray pipeline: the zoo's
``*_array`` generators feed :func:`repro.trace.expand_lines`, the
hierarchy's :meth:`~repro.memory.hierarchy.Hierarchy.run_array` fast
path, and the vectorized :func:`~repro.trace.stack_distances` — the same
numbers as the scalar path (differentially tested), several times faster.

For traces too large to materialize (full-scale kernel and UF-matrix
runs), :func:`validate_case_streamed` / :func:`validate_kernel_streamed`
tee a chunk stream into the simulator's batched replay and the
streaming window sampler (`repro.trace.reservoir`) in a single pass:
memory stays bounded by one chunk plus one sampling window, and the
analytic side uses the sampled stack-distance curve
(``repro validate --sampled`` drives this end to end).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.memory import for_broadwell
from repro.memory.hierarchy import Hierarchy
from repro.platforms import MachineSpec, broadwell
from repro.trace import (
    expand_lines,
    pointer_chase_array,
    repeated_sweep_array,
    stack_distances,
    strided_array,
    tiled_2d_array,
    uniform_random_array,
)
from repro.trace.reservoir import WindowSampler

#: Scale factor for fast exact simulation of realistic capacity ratios.
SCALE = 0.001


@dataclasses.dataclass(frozen=True)
class LevelError:
    level: str
    predicted_hit: float
    simulated_hit: float

    @property
    def abs_error(self) -> float:
        return abs(self.predicted_hit - self.simulated_hit)


@dataclasses.dataclass(frozen=True)
class ValidationCase:
    """One zoo workload's validation outcome."""

    name: str
    levels: tuple[LevelError, ...]

    @property
    def max_abs_error(self) -> float:
        return max((l.abs_error for l in self.levels), default=0.0)

    @property
    def mean_abs_error(self) -> float:
        if not self.levels:
            return 0.0
        return sum(l.abs_error for l in self.levels) / len(self.levels)


def workload_zoo() -> dict[str, Callable[[], tuple[np.ndarray, np.ndarray]]]:
    """Canonical patterns the kernels decompose into (byte-addr arrays)."""
    return {
        "sequential-stream": lambda: repeated_sweep_array(0, 20_000, 1),
        "repeated-sweep-small": lambda: repeated_sweep_array(0, 500, 8),
        "repeated-sweep-l3": lambda: repeated_sweep_array(0, 6_000, 6),
        "strided-512B": lambda: strided_array(0, 8_000, 512),
        "tiled-matrix": lambda: tiled_2d_array(0, 96, 96, 16, 16),
        "uniform-random": lambda: uniform_random_array(0, 3_000, 15_000, seed=3),
        "pointer-chase": lambda: pointer_chase_array(0, 2_000, 8_000, seed=4),
    }


def _level_errors(hierarchy: Hierarchy, profile) -> tuple[LevelError, ...]:
    """Per-level predicted-vs-simulated hit fractions (cumulative)."""
    total = hierarchy.stats().total_accesses
    errors = []
    cum_capacity = 0
    cum_hits = 0
    for stage in hierarchy._stages:
        cum_capacity += stage.cache.capacity
        cum_hits += stage.stats.hits
        predicted = profile.hit_rate(cum_capacity // 64)
        simulated = cum_hits / total if total else 0.0
        errors.append(
            LevelError(
                level=stage.name,
                predicted_hit=predicted,
                simulated_hit=simulated,
            )
        )
    return tuple(errors)


def validate_case(
    name: str,
    workload: tuple[np.ndarray, np.ndarray],
    machine: MachineSpec | None = None,
) -> ValidationCase:
    """Run one workload through both paths and collect per-level errors."""
    machine = machine if machine is not None else broadwell()
    hierarchy = for_broadwell(machine, scale=SCALE)
    addrs, wr = workload
    lines, line_writes = expand_lines(addrs, 8, wr)
    profile = stack_distances(lines)
    hierarchy.run_array(lines, line_writes)
    return ValidationCase(name=name, levels=_level_errors(hierarchy, profile))


def validate_case_streamed(
    name: str,
    chunks: Iterable[tuple[np.ndarray, np.ndarray]],
    machine: MachineSpec | None = None,
    *,
    window: int = 4096,
    period: int = 4,
    seed: int = 0,
    max_distances: int | None = None,
) -> ValidationCase:
    """Streamed validation: one pass, bounded memory, sampled curve.

    ``chunks`` yields ``(line_addrs, writes)`` pairs (the
    ``kernel_trace_chunks`` / ``chunk_arrays`` shape). Each chunk is
    teed into the exact hierarchy's batched replay AND the systematic
    window sampler, so the full trace never materializes — the
    estimator holds one window, the reservoir (if capped) holds
    ``max_distances`` distances. The analytic side uses the *sampled*
    stack-distance curve, which is what full-scale sweeps over
    UF-matrix-sized traces must do anyway.
    """
    machine = machine if machine is not None else broadwell()
    hierarchy = for_broadwell(machine, scale=SCALE)
    sampler = WindowSampler(window, period, seed, max_distances=max_distances)

    def tee() -> Iterator[tuple[np.ndarray, np.ndarray]]:
        for la, lw in chunks:
            sampler.push(np.asarray(la))
            yield la, lw

    hierarchy.run_batched(tee())
    profile = sampler.finish()
    return ValidationCase(name=name, levels=_level_errors(hierarchy, profile))


def validate_kernel_streamed(
    kernel,
    machine: MachineSpec | None = None,
    *,
    reps: int = 1,
    window: int = 4096,
    period: int = 4,
    seed: int = 0,
    max_distances: int | None = None,
) -> ValidationCase:
    """Streamed validation of one instrumented kernel's real trace."""
    from repro.kernels.traces import kernel_trace_chunks

    machine = machine if machine is not None else broadwell()
    chunks = kernel_trace_chunks(kernel, reps=reps, line=machine.dram.line)
    return validate_case_streamed(
        kernel.name,
        chunks,
        machine,
        window=window,
        period=period,
        seed=seed,
        max_distances=max_distances,
    )


def validate_all(machine: MachineSpec | None = None) -> list[ValidationCase]:
    """Validate the whole zoo; deterministic."""
    return [
        validate_case(name, factory(), machine)
        for name, factory in workload_zoo().items()
    ]


def report(cases: list[ValidationCase]) -> str:
    """Human-readable accuracy report."""
    lines = [
        "analytic-vs-exact hit-rate validation (Broadwell shape, scaled)",
        f"{'workload':<24} {'mean |err|':>10} {'max |err|':>10}",
    ]
    for case in cases:
        lines.append(
            f"{case.name:<24} {case.mean_abs_error:10.4f} "
            f"{case.max_abs_error:10.4f}"
        )
    worst = max(c.max_abs_error for c in cases) if cases else 0.0
    lines.append(f"worst-case per-level error: {worst:.4f}")
    return "\n".join(lines)
