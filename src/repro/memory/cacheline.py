"""Cache-line address arithmetic.

All simulator components operate on *line addresses* (byte address divided
by the line size). These helpers centralize the conversions so the line
size is never hard-coded in two places.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.platforms.spec import LINE_BYTES


def line_of(addr: int, line: int = LINE_BYTES) -> int:
    """Line address containing byte address ``addr``."""
    return addr // line


def line_base(addr: int, line: int = LINE_BYTES) -> int:
    """Byte address of the first byte of the line containing ``addr``."""
    return (addr // line) * line


def lines_touched(addr: int, size: int, line: int = LINE_BYTES) -> range:
    """Range of line addresses covered by ``size`` bytes at ``addr``."""
    if size <= 0:
        raise ValueError("size must be positive")
    first = addr // line
    last = (addr + size - 1) // line
    return range(first, last + 1)


def count_lines(size: int, line: int = LINE_BYTES) -> int:
    """Minimum number of lines needed to hold ``size`` bytes."""
    if size < 0:
        raise ValueError("size must be non-negative")
    return -(-size // line)


def expand(accesses: Iterable[tuple[int, int]], line: int = LINE_BYTES) -> Iterator[int]:
    """Expand (byte_addr, size) pairs into a stream of line addresses."""
    for addr, size in accesses:
        yield from lines_touched(addr, size, line)
