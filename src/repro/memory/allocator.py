"""NUMA-style allocation for MCDRAM flat/hybrid modes.

The paper runs KNL flat-mode experiments with ``numactl -p`` (Section 3.3):
allocations *prefer* the MCDRAM NUMA node and spill to DDR once it is
exhausted. We reproduce that policy over a simple virtual address space:
each named array becomes a contiguous region placed greedily on the
preferred node, falling back to DDR when the remaining MCDRAM cannot hold
the whole array — except that, like a first-touch page allocator, a region
larger than the remaining MCDRAM is *split* at page granularity, which is
exactly the straddling situation Section 4.2.1 (II) identifies as
pathological.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Mapping, Sequence

PAGE = 4096


class Node(enum.Enum):
    """Placement target for a page range."""

    MCDRAM = "mcdram"
    DDR = "ddr"


@dataclasses.dataclass(frozen=True)
class Extent:
    """A contiguous placed piece of one array."""

    base: int  # virtual byte address
    size: int  # bytes
    node: Node

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclasses.dataclass(frozen=True)
class Region:
    """One allocated array: name plus its (possibly split) extents."""

    name: str
    extents: tuple[Extent, ...]

    @property
    def base(self) -> int:
        return self.extents[0].base

    @property
    def size(self) -> int:
        return sum(e.size for e in self.extents)

    @property
    def straddles(self) -> bool:
        """True when the array spans both MCDRAM and DDR (the pathological
        case of paper Section 4.2.1 (II))."""
        nodes = {e.node for e in self.extents}
        return len(nodes) > 1

    def bytes_on(self, node: Node) -> int:
        return sum(e.size for e in self.extents if e.node is node)

    def node_of(self, offset: int) -> Node:
        """Which node backs byte ``offset`` within this array."""
        if not 0 <= offset < self.size:
            raise IndexError(f"offset {offset} outside region {self.name}")
        addr = self.base + offset
        for e in self.extents:
            if e.base <= addr < e.end:
                return e.node
        raise AssertionError("extents do not cover region")  # pragma: no cover


class NumaAllocator:
    """Greedy preferred-node allocator emulating ``numactl -p mcdram``.

    Parameters
    ----------
    mcdram_capacity:
        Bytes available on the preferred node (0 disables it: pure DDR).
    ddr_capacity:
        Bytes available on DDR; exceeded allocations raise ``MemoryError``.
    prefer_mcdram:
        The ``numactl -p`` switch. When False everything lands on DDR
        (the "w/o MCDRAM" configuration).
    """

    def __init__(
        self,
        mcdram_capacity: int,
        ddr_capacity: int,
        *,
        prefer_mcdram: bool = True,
    ) -> None:
        if mcdram_capacity < 0 or ddr_capacity <= 0:
            raise ValueError("capacities must be non-negative / positive")
        self.mcdram_capacity = mcdram_capacity
        self.ddr_capacity = ddr_capacity
        self.prefer_mcdram = prefer_mcdram and mcdram_capacity > 0
        self._mcdram_used = 0
        self._ddr_used = 0
        self._cursor = PAGE  # keep address 0 unmapped
        self._regions: dict[str, Region] = {}

    # -- allocation --------------------------------------------------------

    def allocate(self, name: str, size: int) -> Region:
        """Place ``size`` bytes under ``name`` and return the region."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if size <= 0:
            raise ValueError("size must be positive")
        size = -(-size // PAGE) * PAGE  # round to pages
        extents: list[Extent] = []
        remaining = size
        base = self._cursor
        if self.prefer_mcdram:
            on_fast = min(remaining, self.mcdram_capacity - self._mcdram_used)
            on_fast = (on_fast // PAGE) * PAGE
            if on_fast > 0:
                extents.append(Extent(base, on_fast, Node.MCDRAM))
                self._mcdram_used += on_fast
                remaining -= on_fast
        if remaining > 0:
            if self._ddr_used + remaining > self.ddr_capacity:
                raise MemoryError(
                    f"cannot place {name!r}: {remaining} bytes exceed DDR"
                )
            extents.append(Extent(base + size - remaining, remaining, Node.DDR))
            self._ddr_used += remaining
        region = Region(name=name, extents=tuple(extents))
        self._regions[name] = region
        self._cursor = base + size
        return region

    def allocate_all(self, sizes: Mapping[str, int] | Sequence[tuple[str, int]]) -> dict[str, Region]:
        """Allocate several arrays in order; returns name -> region."""
        items = sizes.items() if isinstance(sizes, Mapping) else sizes
        return {name: self.allocate(name, size) for name, size in items}

    # -- queries -----------------------------------------------------------

    @property
    def regions(self) -> dict[str, Region]:
        return dict(self._regions)

    @property
    def mcdram_used(self) -> int:
        return self._mcdram_used

    @property
    def ddr_used(self) -> int:
        return self._ddr_used

    def node_of(self, addr: int) -> Node:
        """Which node backs virtual byte address ``addr``."""
        for region in self._regions.values():
            for e in region.extents:
                if e.base <= addr < e.end:
                    return e.node
        # Unmapped addresses (e.g. synthetic traces) default to DDR.
        return Node.DDR

    def any_straddling(self) -> bool:
        """True if any array is split across nodes."""
        return any(r.straddles for r in self._regions.values())

    def mcdram_fraction(self) -> float:
        """Fraction of total allocated bytes resident on MCDRAM."""
        total = self._mcdram_used + self._ddr_used
        return self._mcdram_used / total if total else 0.0
