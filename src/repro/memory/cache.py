"""Set-associative cache with true-LRU replacement.

The trace-driven half of the reproduction (DESIGN.md Section 2, granularity
1) needs exact cache behaviour: set indexing, LRU stacks, dirty bits and
victim extraction. A direct-mapped cache — MCDRAM cache mode is
direct-mapped (paper Section 2.2) — is the ``ways=1`` special case.

Implementation notes: each set is a ``dict`` mapping tag -> dirty flag.
CPython dicts preserve insertion order, so "move to end on touch" gives an
exact LRU stack with O(1) amortized operations; this is the idiomatic
pure-Python equivalent of an intrusive LRU list.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator


@dataclasses.dataclass(frozen=True)
class Eviction:
    """A line pushed out of a cache, with its dirtiness."""

    line: int
    dirty: bool


class SetAssociativeCache:
    """An LRU set-associative cache over line addresses.

    Parameters
    ----------
    capacity:
        Total capacity in bytes.
    line:
        Line size in bytes (power of two).
    ways:
        Associativity; ``1`` means direct-mapped. If the requested
        geometry does not divide evenly, the set count is rounded down to
        the nearest power of two and capacity is preserved by widening the
        ways, mimicking how real designs absorb odd capacities.
    """

    def __init__(self, capacity: int, line: int = 64, ways: int = 8) -> None:
        if capacity < line:
            raise ValueError("capacity must hold at least one line")
        if line <= 0 or line & (line - 1):
            raise ValueError("line must be a power of two")
        if ways < 1:
            raise ValueError("ways must be >= 1")
        n_lines = capacity // line
        n_sets = max(1, n_lines // ways)
        # Round the set count down to a power of two for cheap indexing.
        n_sets = 1 << (n_sets.bit_length() - 1)
        self.line = line
        self.n_sets = n_sets
        self.ways = max(1, n_lines // n_sets)
        self.capacity = self.n_sets * self.ways * line
        self._sets: list[dict[int, bool]] = [dict() for _ in range(n_sets)]
        # Plain-int telemetry counters (int += costs nothing next to the
        # dict work above; published via Hierarchy -> metrics registry).
        self.n_evictions = 0
        self.n_dirty_evictions = 0
        self.n_invalidations = 0

    # -- core operations ---------------------------------------------------

    def _set_of(self, line_addr: int) -> dict[int, bool]:
        return self._sets[line_addr & (self.n_sets - 1)]

    def lookup(self, line_addr: int, *, touch: bool = True) -> bool:
        """Probe without filling. Returns hit; refreshes LRU if ``touch``."""
        s = self._set_of(line_addr)
        if line_addr not in s:
            return False
        if touch:
            s[line_addr] = s.pop(line_addr)  # move to MRU position
        return True

    def access(self, line_addr: int, *, write: bool = False) -> tuple[bool, Eviction | None]:
        """Reference a line: returns (hit, eviction-if-fill-displaced).

        Misses allocate (write-allocate policy); writes mark dirty.
        """
        s = self._set_of(line_addr)
        if line_addr in s:
            dirty = s.pop(line_addr) or write
            s[line_addr] = dirty
            return True, None
        evicted = None
        if len(s) >= self.ways:
            victim_line, victim_dirty = next(iter(s.items()))
            del s[victim_line]
            evicted = Eviction(victim_line, victim_dirty)
            self.n_evictions += 1
            self.n_dirty_evictions += victim_dirty
        s[line_addr] = write
        return False, evicted

    def insert(self, line_addr: int, *, dirty: bool = False) -> Eviction | None:
        """Install a line (e.g. a victim fill) without counting a reference."""
        s = self._set_of(line_addr)
        if line_addr in s:
            s[line_addr] = s.pop(line_addr) or dirty
            return None
        evicted = None
        if len(s) >= self.ways:
            victim_line, victim_dirty = next(iter(s.items()))
            del s[victim_line]
            evicted = Eviction(victim_line, victim_dirty)
            self.n_evictions += 1
            self.n_dirty_evictions += victim_dirty
        s[line_addr] = dirty
        return evicted

    def extract(self, line_addr: int) -> bool | None:
        """Remove a line, returning its dirty bit, or None if absent.

        Victim-cache promotion (eDRAM hit moves the line back up to L3 —
        paper Section 2.1) uses this.
        """
        s = self._set_of(line_addr)
        if line_addr in s:
            return s.pop(line_addr)
        return None

    def invalidate_all(self) -> None:
        """Drop all contents (used between experiment repetitions)."""
        for s in self._sets:
            s.clear()
        self.n_invalidations += 1

    def telemetry_counters(self) -> dict[str, int]:
        """Replacement-traffic counters for the metrics registry."""
        return {
            "evictions": self.n_evictions,
            "dirty_evictions": self.n_dirty_evictions,
            "invalidations": self.n_invalidations,
        }

    # -- introspection -----------------------------------------------------

    def __contains__(self, line_addr: int) -> bool:
        return line_addr in self._set_of(line_addr)

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> Iterator[int]:
        """All line addresses currently cached (unordered across sets)."""
        for s in self._sets:
            yield from s

    @property
    def is_direct_mapped(self) -> bool:
        return self.ways == 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SetAssociativeCache(capacity={self.capacity}, line={self.line}, "
            f"sets={self.n_sets}, ways={self.ways})"
        )


def direct_mapped(capacity: int, line: int = 64) -> SetAssociativeCache:
    """Convenience constructor for MCDRAM-cache-mode-style caches."""
    return SetAssociativeCache(capacity, line=line, ways=1)
