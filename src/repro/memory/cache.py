"""Set-associative cache with true-LRU replacement.

The trace-driven half of the reproduction (DESIGN.md Section 2, granularity
1) needs exact cache behaviour: set indexing, LRU stacks, dirty bits and
victim extraction. A direct-mapped cache — MCDRAM cache mode is
direct-mapped (paper Section 2.2) — is the ``ways=1`` special case.

Implementation notes: each set is a ``dict`` mapping tag -> dirty flag.
CPython dicts preserve insertion order, so "move to end on touch" gives an
exact LRU stack with O(1) amortized operations; this is the idiomatic
pure-Python equivalent of an intrusive LRU list.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple


class Eviction(NamedTuple):
    """A line pushed out of a cache, with its dirtiness.

    A NamedTuple rather than a frozen dataclass: evictions are minted on
    every replacement, and tuple construction is several times cheaper
    than ``object.__setattr__``-based frozen-dataclass init while keeping
    the same field access, equality, and repr surface.
    """

    line: int
    dirty: bool


class SetAssociativeCache:
    """An LRU set-associative cache over line addresses.

    Parameters
    ----------
    capacity:
        Total capacity in bytes.
    line:
        Line size in bytes (power of two).
    ways:
        Associativity; ``1`` means direct-mapped. If the requested
        geometry does not divide evenly, the set count is rounded down to
        the nearest power of two and capacity is preserved by widening the
        ways, mimicking how real designs absorb odd capacities.
    """

    def __init__(self, capacity: int, line: int = 64, ways: int = 8) -> None:
        if capacity < line:
            raise ValueError("capacity must hold at least one line")
        if line <= 0 or line & (line - 1):
            raise ValueError("line must be a power of two")
        if ways < 1:
            raise ValueError("ways must be >= 1")
        n_lines = capacity // line
        n_sets = max(1, n_lines // ways)
        # Round the set count down to a power of two for cheap indexing.
        n_sets = 1 << (n_sets.bit_length() - 1)
        self.line = line
        self.n_sets = n_sets
        self.ways = max(1, n_lines // n_sets)
        self.capacity = self.n_sets * self.ways * line
        self._sets: list[dict[int, bool]] = [dict() for _ in range(n_sets)]
        # Plain-int telemetry counters (int += costs nothing next to the
        # dict work above; published via Hierarchy -> metrics registry).
        self.n_evictions = 0
        self.n_dirty_evictions = 0
        self.n_invalidations = 0
        # Dirty-line flow ledger. Every dirty entry this cache ever holds
        # enters through exactly one of {created (a write access),
        # received (a dirty insert onto a clean/absent entry)} and leaves
        # through exactly one of {dirty eviction, extract, merge (a dirty
        # insert coalescing onto an already-dirty entry), invalidation} —
        # or is still resident. The hierarchy's writeback-conservation
        # property test closes the books over these counters.
        self.n_dirty_created = 0
        self.n_dirty_received = 0
        self.n_dirty_merged = 0
        self.n_dirty_extracted = 0
        self.n_dirty_invalidated = 0

    # -- core operations ---------------------------------------------------

    def _set_of(self, line_addr: int) -> dict[int, bool]:
        return self._sets[line_addr & (self.n_sets - 1)]

    def lookup(self, line_addr: int, *, touch: bool = True) -> bool:
        """Probe without filling. Returns hit; refreshes LRU if ``touch``."""
        s = self._set_of(line_addr)
        if line_addr not in s:
            return False
        if touch:
            s[line_addr] = s.pop(line_addr)  # move to MRU position
        return True

    def access(self, line_addr: int, *, write: bool = False) -> tuple[bool, Eviction | None]:
        """Reference a line: returns (hit, eviction-if-fill-displaced).

        Misses allocate (write-allocate policy); writes mark dirty.
        """
        s = self._sets[line_addr & (self.n_sets - 1)]  # _set_of, inlined (hot)
        if line_addr in s:
            was_dirty = s.pop(line_addr)
            if write and not was_dirty:
                self.n_dirty_created += 1
            s[line_addr] = was_dirty or write
            return True, None
        evicted = None
        if len(s) >= self.ways:
            victim_line, victim_dirty = next(iter(s.items()))
            del s[victim_line]
            evicted = Eviction(victim_line, victim_dirty)
            self.n_evictions += 1
            self.n_dirty_evictions += victim_dirty
        s[line_addr] = write
        if write:
            self.n_dirty_created += 1
        return False, evicted

    def insert(self, line_addr: int, *, dirty: bool = False) -> Eviction | None:
        """Install a line (e.g. a victim fill) without counting a reference."""
        s = self._sets[line_addr & (self.n_sets - 1)]  # _set_of, inlined (hot)
        if line_addr in s:
            was_dirty = s.pop(line_addr)
            if dirty:
                if was_dirty:
                    self.n_dirty_merged += 1
                else:
                    self.n_dirty_received += 1
            s[line_addr] = was_dirty or dirty
            return None
        evicted = None
        if len(s) >= self.ways:
            victim_line, victim_dirty = next(iter(s.items()))
            del s[victim_line]
            evicted = Eviction(victim_line, victim_dirty)
            self.n_evictions += 1
            self.n_dirty_evictions += victim_dirty
        s[line_addr] = dirty
        if dirty:
            self.n_dirty_received += 1
        return evicted

    def extract(self, line_addr: int) -> bool | None:
        """Remove a line, returning its dirty bit, or None if absent.

        Victim-cache promotion (eDRAM hit moves the line back up to L3 —
        paper Section 2.1) uses this.
        """
        s = self._set_of(line_addr)
        if line_addr in s:
            dirty = s.pop(line_addr)
            self.n_dirty_extracted += dirty
            return dirty
        return None

    def invalidate_all(self) -> None:
        """Drop all contents (used between experiment repetitions)."""
        for s in self._sets:
            self.n_dirty_invalidated += sum(1 for d in s.values() if d)
            s.clear()
        self.n_invalidations += 1

    def telemetry_counters(self) -> dict[str, int]:
        """Replacement-traffic counters for the metrics registry."""
        return {
            "evictions": self.n_evictions,
            "dirty_evictions": self.n_dirty_evictions,
            "invalidations": self.n_invalidations,
            "dirty_created": self.n_dirty_created,
            "dirty_received": self.n_dirty_received,
            "dirty_merged": self.n_dirty_merged,
            "dirty_extracted": self.n_dirty_extracted,
        }

    # -- introspection -----------------------------------------------------

    def __contains__(self, line_addr: int) -> bool:
        return line_addr in self._set_of(line_addr)

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> Iterator[int]:
        """All line addresses currently cached (unordered across sets)."""
        for s in self._sets:
            yield from s

    def dirty_lines(self) -> Iterator[int]:
        """Line addresses currently cached dirty (unordered across sets)."""
        for s in self._sets:
            for line_addr, dirty in s.items():
                if dirty:
                    yield line_addr

    def dirty_resident(self) -> int:
        """Number of dirty lines currently resident."""
        return sum(1 for _ in self.dirty_lines())

    def dirty_flows(self) -> dict[str, int]:
        """The dirty-line ledger (see the counter comment in __init__)."""
        return {
            "created": self.n_dirty_created,
            "received": self.n_dirty_received,
            "merged": self.n_dirty_merged,
            "extracted": self.n_dirty_extracted,
            "invalidated": self.n_dirty_invalidated,
            "dirty_evictions": self.n_dirty_evictions,
            "resident_dirty": self.dirty_resident(),
        }

    @property
    def is_direct_mapped(self) -> bool:
        return self.ways == 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SetAssociativeCache(capacity={self.capacity}, line={self.line}, "
            f"sets={self.n_sets}, ways={self.ways})"
        )


def direct_mapped(capacity: int, line: int = 64) -> SetAssociativeCache:
    """Convenience constructor for MCDRAM-cache-mode-style caches."""
    return SetAssociativeCache(capacity, line=line, ways=1)
