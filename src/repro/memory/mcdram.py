"""MCDRAM mode configuration (paper Table 1 + Section 2.2).

Translates a :class:`~repro.platforms.tuning.McdramMode` plus the physical
MCDRAM spec into the capacities the simulator and the analytic engine need:
how many bytes act as a direct-mapped memory-side cache and how many are
exposed as addressable flat memory.
"""

from __future__ import annotations

import dataclasses

from repro.platforms.spec import OpmSpec
from repro.platforms.tuning import McdramMode


@dataclasses.dataclass(frozen=True)
class McdramConfig:
    """Resolved MCDRAM configuration for one run."""

    mode: McdramMode
    cache_bytes: int
    flat_bytes: int
    bandwidth: float
    latency: float

    @classmethod
    def from_spec(cls, spec: OpmSpec, mode: McdramMode) -> "McdramConfig":
        if spec.kind != "memory-side":
            raise ValueError("McdramConfig requires a memory-side OPM spec")
        cap = spec.capacity or 0
        return cls(
            mode=mode,
            cache_bytes=int(cap * mode.cache_fraction),
            flat_bytes=int(cap * mode.flat_fraction),
            bandwidth=spec.bandwidth,
            latency=spec.latency,
        )

    @property
    def uses_cache(self) -> bool:
        return self.cache_bytes > 0

    @property
    def uses_flat(self) -> bool:
        return self.flat_bytes > 0

    @property
    def total_bytes(self) -> int:
        return self.cache_bytes + self.flat_bytes

    def describe(self) -> str:
        gib = 1024**3
        return (
            f"{self.mode}: cache {self.cache_bytes / gib:.0f} GiB, "
            f"flat {self.flat_bytes / gib:.0f} GiB, "
            f"{self.bandwidth:.0f} GB/s"
        )
