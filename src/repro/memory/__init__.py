"""Memory-hierarchy simulator (trace-driven ground truth).

Composable pieces: :class:`SetAssociativeCache` (LRU / direct-mapped),
:class:`VictimCache` (eDRAM L4 semantics), :class:`NumaAllocator`
(``numactl -p`` flat-mode placement), :class:`McdramConfig` (Table 1 mode
resolution) and :class:`Hierarchy` (the composed platform shapes).
"""

from repro.memory.allocator import PAGE, Extent, Node, NumaAllocator, Region
from repro.memory.cache import Eviction, SetAssociativeCache, direct_mapped
from repro.memory.cacheline import count_lines, expand, line_of, lines_touched
from repro.memory.hierarchy import (
    Hierarchy,
    for_broadwell,
    for_knl,
    hierarchy_allocator,
)
from repro.memory.mcdram import McdramConfig
from repro.memory.prefetch import NextLinePrefetcher, PrefetchStats, StridePrefetcher
from repro.memory.stats import HierarchyStats, LevelStats
from repro.memory.victim import VictimCache

__all__ = [
    "Eviction",
    "Extent",
    "Hierarchy",
    "HierarchyStats",
    "LevelStats",
    "McdramConfig",
    "NextLinePrefetcher",
    "Node",
    "NumaAllocator",
    "PAGE",
    "PrefetchStats",
    "Region",
    "SetAssociativeCache",
    "StridePrefetcher",
    "VictimCache",
    "count_lines",
    "direct_mapped",
    "expand",
    "for_broadwell",
    "for_knl",
    "hierarchy_allocator",
    "line_of",
    "lines_touched",
]
