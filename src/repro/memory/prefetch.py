"""Hardware prefetcher models for the trace-driven simulator.

The analytic engine's MLP story (valley model, SpTRSV inversion) rests on
how much latency the memory system can hide; on real parts the L2
prefetchers supply much of that concurrency. This module adds the two
classic designs to the exact simulator so their effect is measurable
rather than assumed:

* :class:`NextLinePrefetcher` — on access to line L, prefetch L+1..L+D.
* :class:`StridePrefetcher` — per-PC-less stride table: detects constant
  strides in the global reference stream and runs ahead of them.

Prefetches are issued into a target cache via ``insert`` (no reference
counted) and tracked for accuracy statistics: *useful* prefetches are
those whose line is touched before eviction.
"""

from __future__ import annotations

import dataclasses

from repro.memory.cache import SetAssociativeCache


@dataclasses.dataclass
class PrefetchStats:
    issued: int = 0
    useful: int = 0

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0


class NextLinePrefetcher:
    """Sequential prefetcher with configurable degree."""

    def __init__(self, cache: SetAssociativeCache, *, degree: int = 2) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.cache = cache
        self.degree = degree
        self.stats = PrefetchStats()
        self._outstanding: set[int] = set()

    def observe(self, line_addr: int) -> list[int]:
        """Notify of a demand access; returns lines prefetched now."""
        if line_addr in self._outstanding:
            self.stats.useful += 1
            self._outstanding.discard(line_addr)
        issued = []
        for d in range(1, self.degree + 1):
            target = line_addr + d
            if target in self.cache or target in self._outstanding:
                continue
            self.cache.insert(target)
            self._outstanding.add(target)
            self.stats.issued += 1
            issued.append(target)
        return issued


class StridePrefetcher:
    """Global-stream stride detector with run-ahead.

    Tracks the last address and last stride; after ``confirm`` identical
    strides it prefetches ``degree`` lines ahead along the stride. Covers
    the strided column scans of SpTRANS and the pencil walks of the FFT
    that a next-line prefetcher misses.
    """

    def __init__(
        self,
        cache: SetAssociativeCache,
        *,
        degree: int = 4,
        confirm: int = 2,
    ) -> None:
        if degree < 1 or confirm < 1:
            raise ValueError("degree and confirm must be >= 1")
        self.cache = cache
        self.degree = degree
        self.confirm = confirm
        self.stats = PrefetchStats()
        self._last_addr: int | None = None
        self._last_stride: int = 0
        self._streak: int = 0
        self._outstanding: set[int] = set()

    def observe(self, line_addr: int) -> list[int]:
        """Notify of a demand access; returns lines prefetched now."""
        if line_addr in self._outstanding:
            self.stats.useful += 1
            self._outstanding.discard(line_addr)
        issued: list[int] = []
        if self._last_addr is not None:
            stride = line_addr - self._last_addr
            if stride != 0 and stride == self._last_stride:
                self._streak += 1
            else:
                self._streak = 1 if stride != 0 else 0
                self._last_stride = stride
            if stride != 0 and self._streak >= self.confirm:
                for d in range(1, self.degree + 1):
                    target = line_addr + stride * d
                    if target < 0 or target in self.cache or target in self._outstanding:
                        continue
                    self.cache.insert(target)
                    self._outstanding.add(target)
                    self.stats.issued += 1
                    issued.append(target)
        self._last_addr = line_addr
        return issued
