"""Hardware prefetcher models for the trace-driven simulator.

The analytic engine's MLP story (valley model, SpTRSV inversion) rests on
how much latency the memory system can hide; on real parts the hardware
prefetchers supply much of that concurrency. This module adds the two
classic designs to the exact simulator so their effect is measurable
rather than assumed:

* :class:`NextLinePrefetcher` — on access to line L, prefetch L+1..L+D.
* :class:`StridePrefetcher` — per-PC-less stride table: detects constant
  strides in the global reference stream and runs ahead of them.

Both observe the demand stream of the hierarchy's *last-level* on-chip
cache and insert into that same cache (see
``repro.memory.hierarchy._make_prefetcher``). Prefetches are issued via
``insert`` (no reference counted) and tracked for accuracy statistics:
*useful* prefetches are those whose line is touched before eviction.

A prefetch fill can displace a victim from the target cache. The
displaced :class:`~repro.memory.cache.Eviction` is forwarded to the
``on_evict`` sink (the hierarchy wires this to its normal LLC eviction
handling) so dirty lines keep flowing to the victim cache / memory
instead of silently vanishing. Symmetrically, the hierarchy reports
demand-fill evictions from the target cache back via
:meth:`line_evicted`, which drops the line from the outstanding-prefetch
set — a later demand miss on an already-evicted prefetch must count as
wasted, not useful.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.memory.cache import Eviction, SetAssociativeCache


@dataclasses.dataclass
class PrefetchStats:
    issued: int = 0
    useful: int = 0

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0


class _PrefetcherBase:
    """Shared issue/track/evict plumbing for the concrete designs."""

    def __init__(self, cache: SetAssociativeCache) -> None:
        self.cache = cache
        self.stats = PrefetchStats()
        self._outstanding: set[int] = set()
        #: Sink for victims displaced by prefetch fills; the hierarchy
        #: routes these through its regular LLC eviction handling.
        self.on_evict: Callable[[Eviction], None] | None = None

    def _record_demand(self, line_addr: int) -> None:
        """Score a demand access against the outstanding-prefetch set."""
        if line_addr in self._outstanding:
            self.stats.useful += 1
            self._outstanding.discard(line_addr)

    def _install(self, target: int) -> None:
        """Insert one prefetched line, forwarding any displaced victim."""
        ev = self.cache.insert(target)
        self._outstanding.add(target)
        self.stats.issued += 1
        if ev is not None:
            # The displaced line may itself be an untouched prefetch.
            self._outstanding.discard(ev.line)
            if self.on_evict is not None:
                self.on_evict(ev)

    def line_evicted(self, line_addr: int) -> None:
        """Notify that the target cache evicted ``line_addr``.

        Keeps the outstanding set honest (and bounded by the cache's
        capacity): an evicted prefetch can no longer become useful.
        """
        self._outstanding.discard(line_addr)

    def reset(self) -> None:
        """Zero statistics and forget all predictor/outstanding state."""
        self.stats = PrefetchStats()
        self._outstanding.clear()


class NextLinePrefetcher(_PrefetcherBase):
    """Sequential prefetcher with configurable degree."""

    def __init__(self, cache: SetAssociativeCache, *, degree: int = 2) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        super().__init__(cache)
        self.degree = degree

    def observe(self, line_addr: int) -> list[int]:
        """Notify of a demand access; returns lines prefetched now."""
        self._record_demand(line_addr)
        issued = []
        for d in range(1, self.degree + 1):
            target = line_addr + d
            if target in self.cache or target in self._outstanding:
                continue
            self._install(target)
            issued.append(target)
        return issued


class StridePrefetcher(_PrefetcherBase):
    """Global-stream stride detector with run-ahead.

    Tracks the last address and last stride; after ``confirm`` identical
    strides it prefetches ``degree`` lines ahead along the stride. Covers
    the strided column scans of SpTRANS and the pencil walks of the FFT
    that a next-line prefetcher misses.
    """

    def __init__(
        self,
        cache: SetAssociativeCache,
        *,
        degree: int = 4,
        confirm: int = 2,
    ) -> None:
        if degree < 1 or confirm < 1:
            raise ValueError("degree and confirm must be >= 1")
        super().__init__(cache)
        self.degree = degree
        self.confirm = confirm
        self._last_addr: int | None = None
        self._last_stride: int = 0
        self._streak: int = 0

    def observe(self, line_addr: int) -> list[int]:
        """Notify of a demand access; returns lines prefetched now."""
        self._record_demand(line_addr)
        issued: list[int] = []
        if self._last_addr is not None:
            stride = line_addr - self._last_addr
            if stride != 0 and stride == self._last_stride:
                self._streak += 1
            else:
                self._streak = 1 if stride != 0 else 0
                self._last_stride = stride
            if stride != 0 and self._streak >= self.confirm:
                for d in range(1, self.degree + 1):
                    target = line_addr + stride * d
                    if target < 0 or target in self.cache or target in self._outstanding:
                        continue
                    self._install(target)
                    issued.append(target)
        self._last_addr = line_addr
        return issued

    def reset(self) -> None:
        super().reset()
        self._last_addr = None
        self._last_stride = 0
        self._streak = 0
