"""Trace-driven memory-hierarchy simulator.

Composes the pieces of :mod:`repro.memory` into the two platform shapes of
the paper:

* Broadwell: L1 -> L2 -> L3 -> [eDRAM victim L4] -> DDR3
* KNL:       L1 -> L2 -> [MCDRAM stage per mode] -> DDR4 / MCDRAM-flat

The simulator is exact (set indexing, LRU, victim promotion, direct-map
conflicts, NUMA placement) and is the ground truth the analytic engine in
:mod:`repro.engine` is validated against. It is meant for small traces;
full-scale sweeps use the analytic model (DESIGN.md Section 2).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro import telemetry
from repro.memory.allocator import Node, NumaAllocator
from repro.memory.cache import Eviction, SetAssociativeCache
from repro.memory.mcdram import McdramConfig
from repro.memory.stats import HierarchyStats, LevelStats
from repro.telemetry import names as tm
from repro.memory.victim import VictimCache
from repro.platforms.spec import MachineSpec
from repro.platforms.tuning import EdramMode, McdramMode


#: Sentinel distinguishing "absent" from a stored dirty flag in the
#: batched inner loop's single-operation set probes.
_MISS = object()

#: Below this many events a level pass skips set classification outright:
#: the np.unique + residency probe would cost more than the plain loop.
_CLASSIFY_MIN = 1024

#: Adaptive sub-block sizing for the batched path. Blocks start small so
#: a cold cache (where classification can't help) pays little overhead,
#: and double on mostly-vectorized blocks so a warm steady state amortizes
#: one classification pass over up to 64Ki references.
_BLOCK_MIN = 4096
_BLOCK_MAX = 1 << 16


class _CacheStage:
    """A standard inclusive-fill cache level with its counters."""

    def __init__(self, name: str, cache: SetAssociativeCache) -> None:
        self.name = name
        self.cache = cache
        self.stats = LevelStats(name=name, line=cache.line)


class Hierarchy:
    """A configured memory hierarchy accepting a line-address trace.

    Use the :func:`for_broadwell` / :func:`for_knl` builders rather than
    constructing directly.
    """

    def __init__(
        self,
        cache_stages: list[_CacheStage],
        *,
        line: int,
        victim: VictimCache | None = None,
        victim_name: str = "eDRAM",
        mcdram_cache: SetAssociativeCache | None = None,
        allocator: NumaAllocator | None = None,
        memory_names: tuple[str, str] = ("DRAM", "MCDRAM-flat"),
        prefetcher: object | None = None,
    ) -> None:
        if not cache_stages:
            raise ValueError("at least one cache stage required")
        self.line = line
        self._stages = cache_stages
        self._victim = victim
        self._victim_stats = (
            LevelStats(name=victim_name, line=line) if victim is not None else None
        )
        self._mcdram_cache = mcdram_cache
        self._mcdram_stats = (
            LevelStats(name="MCDRAM", line=line) if mcdram_cache is not None else None
        )
        self._allocator = allocator
        #: Optional prefetcher (repro.memory.prefetch) observing the core
        #: reference stream and inserting into the deepest on-chip cache
        #: (the last stage), mirroring an LLC-side hardware prefetcher.
        self._prefetcher = prefetcher
        if prefetcher is not None:
            # Victims displaced by prefetch fills take the same path as
            # demand-fill evictions at the target level; without this,
            # dirty LLC lines displaced by prefetches would vanish with
            # no writeback counted.
            prefetcher.on_evict = self._prefetch_displaced
        self._dram_stats = LevelStats(name=memory_names[0], line=line)
        self._flat_stats = (
            LevelStats(name=memory_names[1], line=line) if allocator is not None else None
        )
        # Last counter totals published to the metrics registry, so that
        # repeated run() calls on one hierarchy publish deltas, not
        # ever-growing cumulative sums.
        self._published: dict[str, dict[str, int]] = {}
        # Dirty-flow counter totals at the last reset(): the conservation
        # ledger reports per-epoch deltas while the underlying cache
        # counters stay monotone for telemetry.
        self._ledger_base: dict[str, dict[str, int]] = {}

    # -- simulation --------------------------------------------------------

    def access(self, line_addr: int, *, write: bool = False) -> str:
        """Reference one cache line; returns the servicing level's name.

        This is the scalar *oracle* path: one reference at a time, every
        stage probed through the generic walk. The batched
        :meth:`run_array` path must stay byte-identical to it
        (``tests/test_trace_batch.py`` enforces this differentially).
        """
        if self._prefetcher is not None:
            self._prefetch_observe(line_addr)
        return self._walk(0, line_addr, write)

    def run(self, trace: Iterable[tuple[int, bool]]) -> HierarchyStats:
        """Drive a whole (line_addr, is_write) trace and return the stats."""
        with telemetry.span(tm.SPAN_HIERARCHY_RUN, line=self.line) as sp:
            n = 0
            for line_addr, write in trace:
                self.access(line_addr, write=write)
                n += 1
            sp.set_attr("refs", n)
        self._publish_telemetry()
        return self.stats()

    def run_lines(self, lines: Iterable[int], *, write: bool = False) -> HierarchyStats:
        """Drive a read-only (or write-only) line-address stream."""
        with telemetry.span(tm.SPAN_HIERARCHY_RUN, line=self.line, write=write) as sp:
            n = 0
            for line_addr in lines:
                self.access(line_addr, write=write)
                n += 1
            sp.set_attr("refs", n)
        self._publish_telemetry()
        return self.stats()

    # -- batched fast path -------------------------------------------------

    def run_array(
        self,
        addrs: np.ndarray,
        writes: np.ndarray | bool | None = None,
    ) -> HierarchyStats:
        """Drive one ndarray chunk of line addresses (batched fast path).

        ``addrs`` is a 1-D integer array of line addresses; ``writes`` is
        a matching bool array, a scalar bool applied to every reference,
        or ``None`` (all reads). Telemetry is hoisted to chunk
        granularity and the inner loop binds every hot attribute to a
        local, but the simulated behaviour — cache contents, eviction
        order, every counter — is byte-identical to feeding the same
        references through :meth:`access` one at a time.
        """
        arr, warr = _coerce_chunk(addrs, writes)
        # Same span name as the scalar run(): consumers key on the
        # logical operation; the attribute says which path produced it.
        with telemetry.span(tm.SPAN_HIERARCHY_RUN, line=self.line, batched=True) as sp:
            self._run_chunk(arr, warr)
            sp.set_attr("refs", int(arr.shape[0]))
        self._publish_telemetry()
        return self.stats()

    def run_batched(
        self,
        chunks: Iterable[tuple[np.ndarray, np.ndarray | bool | None]],
    ) -> HierarchyStats:
        """Drive an iterable of ``(addrs, writes)`` ndarray chunks.

        The streaming companion to :meth:`run_array` — chunk generators
        (``repro.trace.batch``, ``repro.kernels.traces.kernel_trace_chunks``)
        plug in directly; one telemetry span covers the whole batch.
        """
        with telemetry.span(tm.SPAN_HIERARCHY_RUN, line=self.line, batched=True) as sp:
            total = 0
            for addrs, writes in chunks:
                arr, warr = _coerce_chunk(addrs, writes)
                self._run_chunk(arr, warr)
                total += int(arr.shape[0])
            sp.set_attr("refs", total)
        self._publish_telemetry()
        return self.stats()

    # -- internals ---------------------------------------------------------

    def _walk(self, start: int, line_addr: int, write: bool) -> str:
        """Probe stages ``start`` and below; fill on misses; service."""
        stages = self._stages
        last = len(stages) - 1
        for i in range(start, last + 1):
            stage = stages[i]
            st = stage.stats
            st.accesses += 1
            hit, ev = stage.cache.access(line_addr, write=write)
            if hit:
                st.hits += 1
                return stage.name
            st.misses += 1
            st.fills += 1
            # A clean victim of a non-last stage needs no handling
            # (_handle_eviction would fall straight through); skipping
            # the call is a pure fast-path, not a behaviour change.
            if ev is not None and (ev.dirty or i == last):
                self._handle_eviction(i, ev)
        return self._service_below(line_addr, write)

    def _prefetch_observe(self, line_addr: int) -> None:
        issued = self._prefetcher.observe(line_addr)
        if issued:
            # Prefetch fills are real traffic: they load the target
            # stage from memory (counted as DRAM reads + stage fills).
            self._stages[-1].stats.fills += len(issued)
            self._dram_stats.accesses += len(issued)
            self._dram_stats.hits += len(issued)

    def _prefetch_displaced(self, ev: Eviction) -> None:
        """Sink for victims displaced out of the LLC by prefetch fills."""
        self._handle_eviction(len(self._stages) - 1, ev)

    def _run_chunk(self, addrs: np.ndarray, writes: np.ndarray) -> None:
        # The batched inner loop: set-bucketed, level-by-level replay.
        #
        # Each sub-block makes one pass per cache level over an *event*
        # stream (demand accesses plus dirty-victim inserts bound for
        # that level). A pass classifies the level's sets: a set whose
        # distinct touched lines are all initially resident — and which
        # receives no victim inserts — can only produce hits, so its
        # final LRU order, dirty bits and counters are computed
        # wholesale from NumPy reductions (one dict pop/re-add per
        # *distinct* line instead of one per reference). Only events
        # landing in the remaining "slow" sets run the sequential loop;
        # their miss residue (the access plus any dirty victim, in
        # scalar propagation order) becomes the next level's event
        # stream. This is byte-identical to feeding access() one
        # reference at a time because levels never feed upward: victim
        # promotion only ever inserts into the set that just missed,
        # which is slow by construction.
        n = addrs.shape[0]
        if n == 0:
            return
        if self._prefetcher is not None:
            # Prefetcher runs interleave observe() with every reference;
            # drive them through the same observe+walk sequence as the
            # scalar oracle (identical by construction). Telemetry stays
            # hoisted to chunk granularity either way.
            observe = self._prefetch_observe
            walk = self._walk
            for addr, w in zip(addrs.tolist(), writes.tolist()):
                observe(addr)
                walk(0, addr, w)
            return
        # Adaptive sub-blocks: grow while the first level resolves
        # (almost) everything vectorized, shrink back the moment it
        # stops — a cold or thrashing phase then pays classification on
        # small blocks only.
        block = _BLOCK_MIN
        start = 0
        while start < n:
            end = start + block
            mostly_fast = self._run_block(addrs[start:end], writes[start:end])
            start = end
            block = min(block * 2, _BLOCK_MAX) if mostly_fast else _BLOCK_MIN

    def _run_block(self, lines: np.ndarray, flags: np.ndarray) -> bool:
        """Replay one sub-block through every level; returns whether the
        first level handled (nearly) all of it on the vectorized path."""
        ins: np.ndarray | None = None
        first_fast = False
        for i in range(len(self._stages)):
            lines, ins, flags, fast = self._level_pass(i, lines, ins, flags)
            if i == 0:
                first_fast = fast
            if lines is None:
                break
        return first_fast

    def _level_pass(
        self,
        i: int,
        lines: np.ndarray,
        ins: np.ndarray | None,
        flags: np.ndarray,
    ) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None, bool]:
        """Drive one level's event stream; return the next level's.

        ``lines`` holds the event line addresses in order; ``ins`` marks
        which events are dirty-victim inserts (None = pure access
        stream); ``flags`` carries the write bit for accesses and the
        dirty bit (always True) for inserts. Returns ``(lines, ins,
        flags, mostly_fast)`` for the next level, with ``lines is None``
        when nothing propagates deeper.
        """
        stage = self._stages[i]
        cache = stage.cache
        sets = cache._sets
        mask = cache.n_sets - 1
        ways = cache.ways
        last = i == len(self._stages) - 1
        st = stage.stats
        n = lines.shape[0]
        fast_ok = False
        if n >= _CLASSIFY_MIN:
            uniq, inv = np.unique(lines, return_inverse=True)
            nu = uniq.shape[0]
            if nu * 4 <= n:
                usets = uniq & mask
                ul = uniq.tolist()
                usl = usets.tolist()
                resident = np.fromiter(
                    (ln in sets[si] for ln, si in zip(ul, usl)),
                    dtype=bool,
                    count=nu,
                )
                # A set is slow if any of its touched lines starts
                # non-resident (a miss will evict there) or if a victim
                # insert targets it (inserts can displace residents).
                slow_sets = np.zeros(cache.n_sets, dtype=bool)
                slow_sets[usets[~resident]] = True
                if ins is not None:
                    slow_sets[lines[ins] & mask] = True
                ev_slow = slow_sets[lines & mask]
                n_slow = int(ev_slow.sum())
                if n_slow * 2 <= n:
                    # Vectorized wholesale update of the all-hit sets.
                    # Scalar LRU leaves untouched residents in front (in
                    # their original order) and touched lines behind
                    # them ordered by *last* touch; one pop/re-add per
                    # distinct line in global last-touch order lands the
                    # exact same dict state. Dirty bit: initial OR any
                    # write; n_dirty_created: first write to an
                    # initially-clean line.
                    n_fast = n - n_slow
                    wmask = flags if ins is None else flags & ~ins
                    wcnt = np.bincount(inv[wmask], minlength=nu)
                    lastpos = np.empty(nu, dtype=np.intp)
                    lastpos[inv] = np.arange(n, dtype=np.intp)
                    fast_u = np.flatnonzero(~slow_sets[usets])
                    order = fast_u[np.argsort(lastpos[fast_u])]
                    wrote = (wcnt > 0).tolist()
                    created_fast = 0
                    for ui in order.tolist():
                        ln = ul[ui]
                        s = sets[usl[ui]]
                        d = s.pop(ln)
                        if wrote[ui] and not d:
                            created_fast += 1
                            d = True
                        s[ln] = d
                    st.accesses += n_fast
                    st.hits += n_fast
                    cache.n_dirty_created += created_fast
                    if n_slow == 0:
                        return None, None, None, True
                    fast_ok = n_slow * 16 <= n
                    keep = np.flatnonzero(ev_slow)
                    lines = lines[keep]
                    flags = flags[keep]
                    if ins is not None:
                        ins = ins[keep]
                        if not ins.any():
                            ins = None
        # Sequential replay of the slow-set events. Four specialized
        # loops (pure-access vs mixed, last vs interior level) keep the
        # hot one lean; all accumulate counters in locals, flushed once.
        handle = self._handle_eviction
        service = self._service_below
        make_ev = Eviction
        miss = _MISS  # sentinel: probe + LRU-pop in one dict operation
        out_lines: list = []
        out_ins: list = []
        out_flags: list = []
        ol_append = out_lines.append
        oi_append = out_ins.append
        of_append = out_flags.append
        hits = created = evs = devs = wb = merged = received = 0
        sl = lines.tolist()
        fl = flags.tolist()
        if ins is None:
            accs = len(sl)
            if last:
                for addr, w in zip(sl, fl):
                    s = sets[addr & mask]
                    was_dirty = s.pop(addr, miss)
                    if was_dirty is not miss:
                        hits += 1
                        if w and not was_dirty:
                            created += 1
                            s[addr] = True
                        else:
                            s[addr] = was_dirty
                        continue
                    ev = None
                    if len(s) >= ways:
                        vl, vd = next(iter(s.items()))
                        del s[vl]
                        evs += 1
                        devs += vd
                        ev = make_ev(vl, vd)
                    s[addr] = w
                    if w:
                        created += 1
                    if ev is not None:
                        handle(i, ev)
                    service(addr, w)
            else:
                for addr, w in zip(sl, fl):
                    s = sets[addr & mask]
                    was_dirty = s.pop(addr, miss)
                    if was_dirty is not miss:
                        hits += 1
                        if w and not was_dirty:
                            created += 1
                            s[addr] = True
                        else:
                            s[addr] = was_dirty
                        continue
                    # Miss: any dirty victim's insert precedes the
                    # access in the next level's stream, exactly as
                    # _handle_eviction runs before the walk descends. A
                    # clean interior victim is dropped (pure fast-path:
                    # _handle_eviction would fall straight through).
                    if len(s) >= ways:
                        vl, vd = next(iter(s.items()))
                        del s[vl]
                        evs += 1
                        if vd:
                            devs += 1
                            wb += 1
                            ol_append(vl)
                            oi_append(True)
                            of_append(True)
                    s[addr] = w
                    if w:
                        created += 1
                    ol_append(addr)
                    oi_append(False)
                    of_append(w)
        else:
            il = ins.tolist()
            accs = len(sl) - int(ins.sum())
            if last:
                for addr, is_ins, fg in zip(sl, il, fl):
                    s = sets[addr & mask]
                    was_dirty = s.pop(addr, miss)
                    if is_ins:
                        if was_dirty is not miss:
                            if was_dirty:
                                merged += 1
                            else:
                                received += 1
                            s[addr] = True
                            continue
                        ev = None
                        if len(s) >= ways:
                            vl, vd = next(iter(s.items()))
                            del s[vl]
                            evs += 1
                            devs += vd
                            ev = make_ev(vl, vd)
                        s[addr] = True
                        received += 1
                        if ev is not None:
                            handle(i, ev)
                        continue
                    if was_dirty is not miss:
                        hits += 1
                        if fg and not was_dirty:
                            created += 1
                            s[addr] = True
                        else:
                            s[addr] = was_dirty
                        continue
                    ev = None
                    if len(s) >= ways:
                        vl, vd = next(iter(s.items()))
                        del s[vl]
                        evs += 1
                        devs += vd
                        ev = make_ev(vl, vd)
                    s[addr] = fg
                    if fg:
                        created += 1
                    if ev is not None:
                        handle(i, ev)
                    service(addr, fg)
            else:
                for addr, is_ins, fg in zip(sl, il, fl):
                    s = sets[addr & mask]
                    was_dirty = s.pop(addr, miss)
                    if is_ins:
                        if was_dirty is not miss:
                            if was_dirty:
                                merged += 1
                            else:
                                received += 1
                            s[addr] = True
                            continue
                        if len(s) >= ways:
                            vl, vd = next(iter(s.items()))
                            del s[vl]
                            evs += 1
                            if vd:
                                devs += 1
                                wb += 1
                                ol_append(vl)
                                oi_append(True)
                                of_append(True)
                        s[addr] = True
                        received += 1
                        continue
                    if was_dirty is not miss:
                        hits += 1
                        if fg and not was_dirty:
                            created += 1
                            s[addr] = True
                        else:
                            s[addr] = was_dirty
                        continue
                    if len(s) >= ways:
                        vl, vd = next(iter(s.items()))
                        del s[vl]
                        evs += 1
                        if vd:
                            devs += 1
                            wb += 1
                            ol_append(vl)
                            oi_append(True)
                            of_append(True)
                    s[addr] = fg
                    if fg:
                        created += 1
                    ol_append(addr)
                    oi_append(False)
                    of_append(fg)
        st.accesses += accs
        st.hits += hits
        misses = accs - hits
        st.misses += misses
        st.fills += misses
        st.writebacks += wb
        cache.n_evictions += evs
        cache.n_dirty_evictions += devs
        cache.n_dirty_created += created
        cache.n_dirty_received += received
        cache.n_dirty_merged += merged
        if last or not out_lines:
            return None, None, None, fast_ok
        nxt_ins = np.array(out_ins, dtype=bool)
        return (
            np.array(out_lines, dtype=np.int64),
            nxt_ins if nxt_ins.any() else None,
            np.array(out_flags, dtype=bool),
            fast_ok,
        )

    def _handle_eviction(self, level_idx: int, ev: Eviction | None) -> None:
        if ev is None:
            return
        stage = self._stages[level_idx]
        is_llc = level_idx == len(self._stages) - 1
        if is_llc and self._prefetcher is not None:
            # An evicted line can no longer redeem an outstanding
            # prefetch; forgetting this inflated accuracy and let the
            # outstanding set grow without bound.
            self._prefetcher.line_evicted(ev.line)
        if is_llc and self._victim is not None:
            # L3 eviction fills the eDRAM victim cache (paper Section 2.1).
            assert self._victim_stats is not None
            displaced = self._victim.fill(ev)
            self._victim_stats.fills += 1
            if displaced is not None and displaced.dirty:
                self._victim_stats.writebacks += 1
                self._dram_stats.writebacks += 1
            return
        if ev.dirty:
            stage.stats.writebacks += 1
            if not is_llc:
                # Propagate dirtiness to the next level's copy (it was
                # installed on the walk down for recently shared lines).
                # The insert itself may displace a victim; that victim
                # takes the same path as a demand-fill eviction at that
                # level — dropping it silently lost dirty writebacks.
                displaced = self._stages[level_idx + 1].cache.insert(
                    ev.line, dirty=True
                )
                self._handle_eviction(level_idx + 1, displaced)
            else:
                self._absorb_llc_writeback(ev)

    def _absorb_llc_writeback(self, ev: Eviction) -> None:
        """Route a dirty LLC eviction toward memory (KNL shapes)."""
        if self._mcdram_cache is not None:
            assert self._mcdram_stats is not None
            if self._cacheable_by_mcdram(ev.line):
                displaced = self._mcdram_cache.insert(ev.line, dirty=True)
                self._mcdram_stats.fills += 1
                if displaced is not None and displaced.dirty:
                    self._mcdram_stats.writebacks += 1
                    self._dram_stats.writebacks += 1
                return
        if self._allocator is not None and self._node_of(ev.line) is Node.MCDRAM:
            assert self._flat_stats is not None
            self._flat_stats.writebacks += 1
        else:
            self._dram_stats.writebacks += 1

    def _node_of(self, line_addr: int) -> Node:
        assert self._allocator is not None
        return self._allocator.node_of(line_addr * self.line)

    def _cacheable_by_mcdram(self, line_addr: int) -> bool:
        """Cache-mode MCDRAM caches only DDR-backed addresses; flat-half
        addresses bypass it (hybrid mode)."""
        if self._allocator is None:
            return True
        return self._node_of(line_addr) is Node.DDR

    def _service_below(self, line_addr: int, write: bool) -> str:
        # Broadwell shape: victim eDRAM, then DDR.
        if self._victim is not None:
            assert self._victim_stats is not None
            self._victim_stats.accesses += 1
            dirty = self._victim.probe(line_addr)
            if dirty is not None:
                self._victim_stats.hits += 1
                if dirty:
                    # Promotion keeps the dirty bit in the LLC copy. The
                    # walk above already installed the line in the LLC,
                    # so this merges in place and displaces nothing; the
                    # displaced-victim routing is defensive.
                    displaced = self._stages[-1].cache.insert(
                        line_addr, dirty=True
                    )
                    self._handle_eviction(len(self._stages) - 1, displaced)
                return self._victim_stats.name
            self._victim_stats.misses += 1
            self._dram_stats.accesses += 1
            self._dram_stats.hits += 1
            return self._dram_stats.name
        # KNL shapes.
        if self._allocator is not None and self._node_of(line_addr) is Node.MCDRAM:
            assert self._flat_stats is not None
            self._flat_stats.accesses += 1
            self._flat_stats.hits += 1
            return self._flat_stats.name
        if self._mcdram_cache is not None and self._cacheable_by_mcdram(line_addr):
            assert self._mcdram_stats is not None
            self._mcdram_stats.accesses += 1
            hit, ev = self._mcdram_cache.access(line_addr, write=write)
            if ev is not None and ev.dirty:
                self._mcdram_stats.writebacks += 1
                self._dram_stats.writebacks += 1
            if hit:
                self._mcdram_stats.hits += 1
                return self._mcdram_stats.name
            self._mcdram_stats.misses += 1
            self._mcdram_stats.fills += 1
            self._dram_stats.accesses += 1
            self._dram_stats.hits += 1
            return self._dram_stats.name
        self._dram_stats.accesses += 1
        self._dram_stats.hits += 1
        return self._dram_stats.name

    def _publish_telemetry(self) -> None:
        """Push per-level and per-cache counter deltas into the registry.

        This unifies :mod:`repro.memory.stats` with the telemetry metrics:
        every ``memory.<level>.<counter>`` name carries the access/hit/
        miss/fill/writeback traffic, and ``memory.<level>.cache.<counter>``
        the replacement traffic of the backing cache structure.
        """
        if not telemetry.enabled():
            return
        for lvl in self.stats().levels:
            self._publish_delta(tm.memory_level_prefix(lvl.name), lvl.name, lvl.counters())
        for stage in self._stages:
            self._publish_delta(
                tm.memory_cache_prefix(stage.name),
                f"cache:{stage.name}",
                stage.cache.telemetry_counters(),
            )

    def _publish_delta(
        self, prefix: str, key: str, totals: dict[str, int]
    ) -> None:
        prev = self._published.get(key, {})
        telemetry.record_counts(
            prefix, {k: v - prev.get(k, 0) for k, v in totals.items()}
        )
        self._published[key] = totals

    # -- results -----------------------------------------------------------

    def stats(self) -> HierarchyStats:
        levels = [s.stats for s in self._stages]
        if self._victim_stats is not None:
            levels.append(self._victim_stats)
        if self._mcdram_stats is not None:
            levels.append(self._mcdram_stats)
        if self._flat_stats is not None:
            levels.append(self._flat_stats)
        levels.append(self._dram_stats)
        return HierarchyStats(levels=levels)

    def reset(self) -> None:
        """Drop cache contents, zero all counters, forget predictor state."""
        for stage in self._stages:
            stage.cache.invalidate_all()
            stage.stats = LevelStats(name=stage.name, line=self.line)
        if self._victim is not None:
            self._victim.invalidate_all()
            self._victim_stats = LevelStats(
                name=self._victim_stats.name, line=self.line  # type: ignore[union-attr]
            )
        if self._mcdram_cache is not None:
            self._mcdram_cache.invalidate_all()
            self._mcdram_stats = LevelStats(name="MCDRAM", line=self.line)
        self._dram_stats = LevelStats(name=self._dram_stats.name, line=self.line)
        if self._flat_stats is not None:
            self._flat_stats = LevelStats(
                name=self._flat_stats.name, line=self.line
            )
        if self._prefetcher is not None:
            # Stale stride/outstanding state from a previous repetition
            # would leak prefetches (and accuracy) into the next one.
            self._prefetcher.reset()
        # Level counters restart at zero; drop their publish baselines
        # (cache replacement counters survive invalidate_all, keep theirs).
        self._published = {
            k: v for k, v in self._published.items() if k.startswith("cache:")
        }
        # Close the previous epoch's dirty-flow books (the invalidations
        # above consumed its resident dirty lines) and start fresh.
        self._ledger_base = {
            name: dict(cache.dirty_flows())
            for name, cache in self._dirty_caches()
        }

    # -- writeback conservation --------------------------------------------

    def _dirty_caches(self) -> list[tuple[str, SetAssociativeCache]]:
        caches = [(s.name, s.cache) for s in self._stages]
        if self._victim is not None:
            assert self._victim_stats is not None
            caches.append((self._victim_stats.name, self._victim.cache))
        if self._mcdram_cache is not None:
            caches.append(("MCDRAM", self._mcdram_cache))
        return caches

    def dirty_ledger(self) -> dict[str, dict[str, int]]:
        """Per-cache dirty-line flow counters for the current epoch.

        An epoch starts at construction or :meth:`reset`; the underlying
        cache counters stay monotone for telemetry, so the ledger
        subtracts the baseline captured at the last reset.
        """
        ledger: dict[str, dict[str, int]] = {}
        for name, cache in self._dirty_caches():
            flows = cache.dirty_flows()
            base = self._ledger_base.get(name)
            if base:
                flows = {k: v - base.get(k, 0) for k, v in flows.items()}
            ledger[name] = flows
        return ledger

    def memory_writebacks(self) -> int:
        """Dirty lines that arrived at memory (DRAM plus flat MCDRAM)."""
        total = self._dram_stats.writebacks
        if self._flat_stats is not None:
            total += self._flat_stats.writebacks
        return total

    def conservation_violations(self) -> list[str]:
        """Audit writeback conservation; an empty list means books close.

        Two laws that must hold for ANY trace on ANY platform shape:

        * per cache: dirty lines created by writes plus dirty lines
          received from above equal those still resident plus those
          evicted dirty, extracted (victim promotion), or invalidated
          (a merge coalesces the *arriving* line — booked as the
          sender's out-flow — without minting a new entry here);
        * across the hierarchy: every dirty line leaving a cache (dirty
          eviction or extraction) arrives somewhere — another cache
          (received/merged) or memory (writebacks counted at DRAM/flat).

        The historical bugs this guards against: dirtiness-propagation
        inserts and prefetch fills displacing dirty victims that were
        silently dropped (lines left a cache and arrived nowhere).
        """
        ledger = self.dirty_ledger()
        violations = []
        for name, f in ledger.items():
            lhs = f["created"] + f["received"]
            rhs = (
                f["resident_dirty"]
                + f["dirty_evictions"]
                + f["extracted"]
                + f["invalidated"]
            )
            if lhs != rhs:
                violations.append(
                    f"{name}: created+received={lhs} != accounted={rhs} ({f})"
                )
        out_flow = sum(
            f["dirty_evictions"] + f["extracted"] for f in ledger.values()
        )
        in_flow = sum(f["received"] + f["merged"] for f in ledger.values())
        mem = self.memory_writebacks()
        if out_flow != in_flow + mem:
            violations.append(
                f"hierarchy: dirty out-flow {out_flow} != "
                f"in-flow {in_flow} + memory writebacks {mem}"
            )
        return violations


def _coerce_chunk(
    addrs: np.ndarray,
    writes: np.ndarray | bool | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate and normalize one (addrs, writes) chunk to ndarrays.

    Returns ``(int64 line addresses, bool write mask)``. Everything a
    caller can get wrong is rejected here with a ``ValueError`` naming
    the offending element (mirroring the mmio parser's line-numbered
    errors) so a bad trace fails loudly at the boundary instead of
    corrupting set indexing deep in the replay:

    * 2-D (or 0-D) ``addrs``,
    * non-integer ``addrs`` dtypes (floats truncate silently),
    * negative line addresses (``addr & mask`` would alias a valid set),
    * ``writes`` whose shape does not match ``addrs``,
    * non-bool / non-integer ``writes`` dtypes.
    """
    arr = np.asarray(addrs)
    if arr.ndim != 1:
        raise ValueError(
            f"addrs must be a 1-D array of line addresses, got shape {arr.shape}"
        )
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(
            f"addrs must be integer line addresses, got dtype {arr.dtype}"
        )
    arr = arr.astype(np.int64, copy=False)
    n = arr.shape[0]
    if n and int(arr.min()) < 0:
        first = int(np.flatnonzero(arr < 0)[0])
        raise ValueError(
            f"addrs[{first}] = {int(arr[first])}: "
            "line addresses must be non-negative"
        )
    if writes is None:
        warr = np.zeros(n, dtype=bool)
    elif isinstance(writes, (bool, np.bool_)):
        warr = np.full(n, bool(writes), dtype=bool)
    else:
        warr = np.asarray(writes)
        if warr.shape != arr.shape:
            raise ValueError(
                f"writes shape {warr.shape} does not match addrs {arr.shape}"
            )
        if warr.dtype != np.bool_:
            if not np.issubdtype(warr.dtype, np.integer):
                raise ValueError(
                    f"writes must be bool (or 0/1 integers), got dtype {warr.dtype}"
                )
            warr = warr.astype(bool)
    return arr, warr


# -- builders ---------------------------------------------------------------


def _cache_stages(machine: MachineSpec, *, scale: float = 1.0) -> list[_CacheStage]:
    """Instantiate the on-chip levels of ``machine``.

    ``scale`` shrinks every capacity by a constant factor so that small,
    fast-to-simulate traces exercise the same *ratios* as the real machine
    (a standard scaled-down simulation technique); 1.0 keeps true sizes.
    """
    stages = []
    for lvl in machine.caches:
        assert lvl.capacity is not None
        cap = max(lvl.line * (lvl.ways or 8), int(lvl.capacity * scale))
        cache = SetAssociativeCache(cap, line=lvl.line, ways=lvl.ways or 8)
        stages.append(_CacheStage(lvl.name, cache))
    return stages


def for_broadwell(
    machine: MachineSpec,
    *,
    edram: bool | EdramMode = True,
    scale: float = 1.0,
    prefetch: str | None = None,
) -> Hierarchy:
    """Build the Broadwell-shaped hierarchy (optionally without eDRAM)."""
    if isinstance(edram, EdramMode):
        edram = edram.enabled
    victim = None
    if edram and machine.opm is not None:
        assert machine.opm.capacity is not None
        cap = max(
            machine.opm.line * (machine.opm.ways or 16),
            int(machine.opm.capacity * scale),
        )
        victim = VictimCache(cap, line=machine.opm.line, ways=machine.opm.ways or 16)
    stages = _cache_stages(machine, scale=scale)
    return Hierarchy(
        stages,
        line=machine.dram.line,
        victim=victim,
        victim_name=machine.opm.name if machine.opm else "eDRAM",
        memory_names=(machine.dram.name, "unused"),
        prefetcher=_make_prefetcher(prefetch, stages),
    )


def for_knl(
    machine: MachineSpec,
    mode: McdramMode,
    *,
    allocator: NumaAllocator | None = None,
    scale: float = 1.0,
) -> Hierarchy:
    """Build the KNL-shaped hierarchy for one MCDRAM mode.

    ``allocator`` carries flat/hybrid placements; when omitted one is
    created with the mode's flat capacity (callers then allocate arrays
    through ``hierarchy_allocator(h)``).
    """
    if machine.opm is None:
        raise ValueError("KNL machine spec must include MCDRAM")
    config = McdramConfig.from_spec(machine.opm, mode)
    mcdram_cache = None
    if config.uses_cache:
        ways = machine.opm.ways or 1  # MCDRAM: 1 (direct-mapped)
        cap = max(machine.opm.line * ways, int(config.cache_bytes * scale))
        mcdram_cache = SetAssociativeCache(cap, line=machine.opm.line, ways=ways)
    if allocator is None and config.uses_flat:
        assert machine.dram.capacity is not None
        allocator = NumaAllocator(
            int(config.flat_bytes * scale),
            machine.dram.capacity,
            prefer_mcdram=True,
        )
    stages = _cache_stages(machine, scale=scale)
    return Hierarchy(
        stages,
        line=machine.dram.line,
        mcdram_cache=mcdram_cache,
        allocator=allocator,
        memory_names=(machine.dram.name, "MCDRAM-flat"),
    )


def _make_prefetcher(kind: str | None, stages: list[_CacheStage]):
    """Instantiate an optional prefetcher targeting the deepest on-chip
    cache ('next-line' or 'stride'); None disables prefetching."""
    if kind is None:
        return None
    from repro.memory.prefetch import NextLinePrefetcher, StridePrefetcher

    target = stages[-1].cache
    if kind == "next-line":
        return NextLinePrefetcher(target)
    if kind == "stride":
        return StridePrefetcher(target)
    raise ValueError(f"unknown prefetcher kind {kind!r}")


def hierarchy_allocator(hierarchy: Hierarchy) -> NumaAllocator | None:
    """Expose the NUMA allocator of a flat/hybrid KNL hierarchy."""
    return hierarchy._allocator
