"""Trace-driven memory-hierarchy simulator.

Composes the pieces of :mod:`repro.memory` into the two platform shapes of
the paper:

* Broadwell: L1 -> L2 -> L3 -> [eDRAM victim L4] -> DDR3
* KNL:       L1 -> L2 -> [MCDRAM stage per mode] -> DDR4 / MCDRAM-flat

The simulator is exact (set indexing, LRU, victim promotion, direct-map
conflicts, NUMA placement) and is the ground truth the analytic engine in
:mod:`repro.engine` is validated against. It is meant for small traces;
full-scale sweeps use the analytic model (DESIGN.md Section 2).
"""

from __future__ import annotations

from typing import Iterable

from repro import telemetry
from repro.memory.allocator import Node, NumaAllocator
from repro.memory.cache import Eviction, SetAssociativeCache
from repro.memory.mcdram import McdramConfig
from repro.memory.stats import HierarchyStats, LevelStats
from repro.memory.victim import VictimCache
from repro.platforms.spec import MachineSpec
from repro.platforms.tuning import EdramMode, McdramMode


class _CacheStage:
    """A standard inclusive-fill cache level with its counters."""

    def __init__(self, name: str, cache: SetAssociativeCache) -> None:
        self.name = name
        self.cache = cache
        self.stats = LevelStats(name=name, line=cache.line)


class Hierarchy:
    """A configured memory hierarchy accepting a line-address trace.

    Use the :func:`for_broadwell` / :func:`for_knl` builders rather than
    constructing directly.
    """

    def __init__(
        self,
        cache_stages: list[_CacheStage],
        *,
        line: int,
        victim: VictimCache | None = None,
        victim_name: str = "eDRAM",
        mcdram_cache: SetAssociativeCache | None = None,
        allocator: NumaAllocator | None = None,
        memory_names: tuple[str, str] = ("DRAM", "MCDRAM-flat"),
        prefetcher: object | None = None,
    ) -> None:
        if not cache_stages:
            raise ValueError("at least one cache stage required")
        self.line = line
        self._stages = cache_stages
        self._victim = victim
        self._victim_stats = (
            LevelStats(name=victim_name, line=line) if victim is not None else None
        )
        self._mcdram_cache = mcdram_cache
        self._mcdram_stats = (
            LevelStats(name="MCDRAM", line=line) if mcdram_cache is not None else None
        )
        self._allocator = allocator
        #: Optional prefetcher (repro.memory.prefetch) observing the L2
        #: demand stream and inserting into the L2 stage's cache.
        self._prefetcher = prefetcher
        self._dram_stats = LevelStats(name=memory_names[0], line=line)
        self._flat_stats = (
            LevelStats(name=memory_names[1], line=line) if allocator is not None else None
        )
        # Last counter totals published to the metrics registry, so that
        # repeated run() calls on one hierarchy publish deltas, not
        # ever-growing cumulative sums.
        self._published: dict[str, dict[str, int]] = {}

    # -- simulation --------------------------------------------------------

    def access(self, line_addr: int, *, write: bool = False) -> str:
        """Reference one cache line; returns the servicing level's name."""
        if self._prefetcher is not None:
            issued = self._prefetcher.observe(line_addr)
            if issued:
                # Prefetch fills are real traffic: they load the target
                # stage from memory (counted as DRAM reads + stage fills).
                self._stages[-1].stats.fills += len(issued)
                self._dram_stats.accesses += len(issued)
                self._dram_stats.hits += len(issued)
        serviced: str | None = None
        for i, stage in enumerate(self._stages):
            stage.stats.accesses += 1
            hit, ev = stage.cache.access(line_addr, write=write)
            if hit:
                stage.stats.hits += 1
            else:
                stage.stats.misses += 1
                stage.stats.fills += 1
            self._handle_eviction(i, ev)
            if hit:
                serviced = stage.name
                break
        if serviced is None:
            serviced = self._service_below(line_addr, write)
        return serviced

    def run(self, trace: Iterable[tuple[int, bool]]) -> HierarchyStats:
        """Drive a whole (line_addr, is_write) trace and return the stats."""
        with telemetry.span("hierarchy.run", line=self.line) as sp:
            n = 0
            for line_addr, write in trace:
                self.access(line_addr, write=write)
                n += 1
            sp.set_attr("refs", n)
        self._publish_telemetry()
        return self.stats()

    def run_lines(self, lines: Iterable[int], *, write: bool = False) -> HierarchyStats:
        """Drive a read-only (or write-only) line-address stream."""
        with telemetry.span("hierarchy.run", line=self.line, write=write) as sp:
            n = 0
            for line_addr in lines:
                self.access(line_addr, write=write)
                n += 1
            sp.set_attr("refs", n)
        self._publish_telemetry()
        return self.stats()

    # -- internals ---------------------------------------------------------

    def _handle_eviction(self, level_idx: int, ev: Eviction | None) -> None:
        if ev is None:
            return
        stage = self._stages[level_idx]
        is_llc = level_idx == len(self._stages) - 1
        if is_llc and self._victim is not None:
            # L3 eviction fills the eDRAM victim cache (paper Section 2.1).
            assert self._victim_stats is not None
            displaced = self._victim.fill(ev)
            self._victim_stats.fills += 1
            if displaced is not None and displaced.dirty:
                self._victim_stats.writebacks += 1
                self._dram_stats.writebacks += 1
            return
        if ev.dirty:
            stage.stats.writebacks += 1
            if not is_llc:
                # Propagate dirtiness to the next level's copy (it was
                # installed on the walk down for recently shared lines).
                self._stages[level_idx + 1].cache.insert(ev.line, dirty=True)
            else:
                self._absorb_llc_writeback(ev)

    def _absorb_llc_writeback(self, ev: Eviction) -> None:
        """Route a dirty LLC eviction toward memory (KNL shapes)."""
        if self._mcdram_cache is not None:
            assert self._mcdram_stats is not None
            if self._cacheable_by_mcdram(ev.line):
                displaced = self._mcdram_cache.insert(ev.line, dirty=True)
                self._mcdram_stats.fills += 1
                if displaced is not None and displaced.dirty:
                    self._mcdram_stats.writebacks += 1
                    self._dram_stats.writebacks += 1
                return
        if self._allocator is not None and self._node_of(ev.line) is Node.MCDRAM:
            assert self._flat_stats is not None
            self._flat_stats.writebacks += 1
        else:
            self._dram_stats.writebacks += 1

    def _node_of(self, line_addr: int) -> Node:
        assert self._allocator is not None
        return self._allocator.node_of(line_addr * self.line)

    def _cacheable_by_mcdram(self, line_addr: int) -> bool:
        """Cache-mode MCDRAM caches only DDR-backed addresses; flat-half
        addresses bypass it (hybrid mode)."""
        if self._allocator is None:
            return True
        return self._node_of(line_addr) is Node.DDR

    def _service_below(self, line_addr: int, write: bool) -> str:
        # Broadwell shape: victim eDRAM, then DDR.
        if self._victim is not None:
            assert self._victim_stats is not None
            self._victim_stats.accesses += 1
            dirty = self._victim.probe(line_addr)
            if dirty is not None:
                self._victim_stats.hits += 1
                if dirty:
                    # Promotion keeps the dirty bit in the LLC copy.
                    self._stages[-1].cache.insert(line_addr, dirty=True)
                return self._victim_stats.name
            self._victim_stats.misses += 1
            self._dram_stats.accesses += 1
            self._dram_stats.hits += 1
            return self._dram_stats.name
        # KNL shapes.
        if self._allocator is not None and self._node_of(line_addr) is Node.MCDRAM:
            assert self._flat_stats is not None
            self._flat_stats.accesses += 1
            self._flat_stats.hits += 1
            return self._flat_stats.name
        if self._mcdram_cache is not None and self._cacheable_by_mcdram(line_addr):
            assert self._mcdram_stats is not None
            self._mcdram_stats.accesses += 1
            hit, ev = self._mcdram_cache.access(line_addr, write=write)
            if ev is not None and ev.dirty:
                self._mcdram_stats.writebacks += 1
                self._dram_stats.writebacks += 1
            if hit:
                self._mcdram_stats.hits += 1
                return self._mcdram_stats.name
            self._mcdram_stats.misses += 1
            self._mcdram_stats.fills += 1
            self._dram_stats.accesses += 1
            self._dram_stats.hits += 1
            return self._dram_stats.name
        self._dram_stats.accesses += 1
        self._dram_stats.hits += 1
        return self._dram_stats.name

    def _publish_telemetry(self) -> None:
        """Push per-level and per-cache counter deltas into the registry.

        This unifies :mod:`repro.memory.stats` with the telemetry metrics:
        every ``memory.<level>.<counter>`` name carries the access/hit/
        miss/fill/writeback traffic, and ``memory.<level>.cache.<counter>``
        the replacement traffic of the backing cache structure.
        """
        if not telemetry.enabled():
            return
        for lvl in self.stats().levels:
            self._publish_delta(f"memory.{lvl.name}", lvl.name, lvl.counters())
        for stage in self._stages:
            self._publish_delta(
                f"memory.{stage.name}.cache",
                f"cache:{stage.name}",
                stage.cache.telemetry_counters(),
            )

    def _publish_delta(
        self, prefix: str, key: str, totals: dict[str, int]
    ) -> None:
        prev = self._published.get(key, {})
        telemetry.record_counts(
            prefix, {k: v - prev.get(k, 0) for k, v in totals.items()}
        )
        self._published[key] = totals

    # -- results -----------------------------------------------------------

    def stats(self) -> HierarchyStats:
        levels = [s.stats for s in self._stages]
        if self._victim_stats is not None:
            levels.append(self._victim_stats)
        if self._mcdram_stats is not None:
            levels.append(self._mcdram_stats)
        if self._flat_stats is not None:
            levels.append(self._flat_stats)
        levels.append(self._dram_stats)
        return HierarchyStats(levels=levels)

    def reset(self) -> None:
        """Drop cache contents and zero all counters."""
        for stage in self._stages:
            stage.cache.invalidate_all()
            stage.stats = LevelStats(name=stage.name, line=self.line)
        if self._victim is not None:
            self._victim.invalidate_all()
            self._victim_stats = LevelStats(
                name=self._victim_stats.name, line=self.line  # type: ignore[union-attr]
            )
        if self._mcdram_cache is not None:
            self._mcdram_cache.invalidate_all()
            self._mcdram_stats = LevelStats(name="MCDRAM", line=self.line)
        self._dram_stats = LevelStats(name=self._dram_stats.name, line=self.line)
        if self._flat_stats is not None:
            self._flat_stats = LevelStats(
                name=self._flat_stats.name, line=self.line
            )
        # Level counters restart at zero; drop their publish baselines
        # (cache replacement counters survive invalidate_all, keep theirs).
        self._published = {
            k: v for k, v in self._published.items() if k.startswith("cache:")
        }


# -- builders ---------------------------------------------------------------


def _cache_stages(machine: MachineSpec, *, scale: float = 1.0) -> list[_CacheStage]:
    """Instantiate the on-chip levels of ``machine``.

    ``scale`` shrinks every capacity by a constant factor so that small,
    fast-to-simulate traces exercise the same *ratios* as the real machine
    (a standard scaled-down simulation technique); 1.0 keeps true sizes.
    """
    stages = []
    for lvl in machine.caches:
        assert lvl.capacity is not None
        cap = max(lvl.line * (lvl.ways or 8), int(lvl.capacity * scale))
        cache = SetAssociativeCache(cap, line=lvl.line, ways=lvl.ways or 8)
        stages.append(_CacheStage(lvl.name, cache))
    return stages


def for_broadwell(
    machine: MachineSpec,
    *,
    edram: bool | EdramMode = True,
    scale: float = 1.0,
    prefetch: str | None = None,
) -> Hierarchy:
    """Build the Broadwell-shaped hierarchy (optionally without eDRAM)."""
    if isinstance(edram, EdramMode):
        edram = edram.enabled
    victim = None
    if edram and machine.opm is not None:
        assert machine.opm.capacity is not None
        cap = max(
            machine.opm.line * (machine.opm.ways or 16),
            int(machine.opm.capacity * scale),
        )
        victim = VictimCache(cap, line=machine.opm.line, ways=machine.opm.ways or 16)
    stages = _cache_stages(machine, scale=scale)
    return Hierarchy(
        stages,
        line=machine.dram.line,
        victim=victim,
        victim_name=machine.opm.name if machine.opm else "eDRAM",
        memory_names=(machine.dram.name, "unused"),
        prefetcher=_make_prefetcher(prefetch, stages),
    )


def for_knl(
    machine: MachineSpec,
    mode: McdramMode,
    *,
    allocator: NumaAllocator | None = None,
    scale: float = 1.0,
) -> Hierarchy:
    """Build the KNL-shaped hierarchy for one MCDRAM mode.

    ``allocator`` carries flat/hybrid placements; when omitted one is
    created with the mode's flat capacity (callers then allocate arrays
    through ``hierarchy_allocator(h)``).
    """
    if machine.opm is None:
        raise ValueError("KNL machine spec must include MCDRAM")
    config = McdramConfig.from_spec(machine.opm, mode)
    mcdram_cache = None
    if config.uses_cache:
        ways = machine.opm.ways or 1  # MCDRAM: 1 (direct-mapped)
        cap = max(machine.opm.line * ways, int(config.cache_bytes * scale))
        mcdram_cache = SetAssociativeCache(cap, line=machine.opm.line, ways=ways)
    if allocator is None and config.uses_flat:
        assert machine.dram.capacity is not None
        allocator = NumaAllocator(
            int(config.flat_bytes * scale),
            machine.dram.capacity,
            prefer_mcdram=True,
        )
    stages = _cache_stages(machine, scale=scale)
    return Hierarchy(
        stages,
        line=machine.dram.line,
        mcdram_cache=mcdram_cache,
        allocator=allocator,
        memory_names=(machine.dram.name, "MCDRAM-flat"),
    )


def _make_prefetcher(kind: str | None, stages: list[_CacheStage]):
    """Instantiate an optional prefetcher targeting the deepest on-chip
    cache ('next-line' or 'stride'); None disables prefetching."""
    if kind is None:
        return None
    from repro.memory.prefetch import NextLinePrefetcher, StridePrefetcher

    target = stages[-1].cache
    if kind == "next-line":
        return NextLinePrefetcher(target)
    if kind == "stride":
        return StridePrefetcher(target)
    raise ValueError(f"unknown prefetcher kind {kind!r}")


def hierarchy_allocator(hierarchy: Hierarchy) -> NumaAllocator | None:
    """Expose the NUMA allocator of a flat/hybrid KNL hierarchy."""
    return hierarchy._allocator
