"""Trace-driven memory-hierarchy simulator.

Composes the pieces of :mod:`repro.memory` into the two platform shapes of
the paper:

* Broadwell: L1 -> L2 -> L3 -> [eDRAM victim L4] -> DDR3
* KNL:       L1 -> L2 -> [MCDRAM stage per mode] -> DDR4 / MCDRAM-flat

The simulator is exact (set indexing, LRU, victim promotion, direct-map
conflicts, NUMA placement) and is the ground truth the analytic engine in
:mod:`repro.engine` is validated against. It is meant for small traces;
full-scale sweeps use the analytic model (DESIGN.md Section 2).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro import telemetry
from repro.memory.allocator import Node, NumaAllocator
from repro.memory.cache import Eviction, SetAssociativeCache
from repro.memory.mcdram import McdramConfig
from repro.memory.stats import HierarchyStats, LevelStats
from repro.telemetry import names as tm
from repro.memory.victim import VictimCache
from repro.platforms.spec import MachineSpec
from repro.platforms.tuning import EdramMode, McdramMode


#: Sentinel distinguishing "absent" from a stored dirty flag in the
#: batched inner loop's single-operation set probes.
_MISS = object()


class _CacheStage:
    """A standard inclusive-fill cache level with its counters."""

    def __init__(self, name: str, cache: SetAssociativeCache) -> None:
        self.name = name
        self.cache = cache
        self.stats = LevelStats(name=name, line=cache.line)


class Hierarchy:
    """A configured memory hierarchy accepting a line-address trace.

    Use the :func:`for_broadwell` / :func:`for_knl` builders rather than
    constructing directly.
    """

    def __init__(
        self,
        cache_stages: list[_CacheStage],
        *,
        line: int,
        victim: VictimCache | None = None,
        victim_name: str = "eDRAM",
        mcdram_cache: SetAssociativeCache | None = None,
        allocator: NumaAllocator | None = None,
        memory_names: tuple[str, str] = ("DRAM", "MCDRAM-flat"),
        prefetcher: object | None = None,
    ) -> None:
        if not cache_stages:
            raise ValueError("at least one cache stage required")
        self.line = line
        self._stages = cache_stages
        self._victim = victim
        self._victim_stats = (
            LevelStats(name=victim_name, line=line) if victim is not None else None
        )
        self._mcdram_cache = mcdram_cache
        self._mcdram_stats = (
            LevelStats(name="MCDRAM", line=line) if mcdram_cache is not None else None
        )
        self._allocator = allocator
        #: Optional prefetcher (repro.memory.prefetch) observing the core
        #: reference stream and inserting into the deepest on-chip cache
        #: (the last stage), mirroring an LLC-side hardware prefetcher.
        self._prefetcher = prefetcher
        if prefetcher is not None:
            # Victims displaced by prefetch fills take the same path as
            # demand-fill evictions at the target level; without this,
            # dirty LLC lines displaced by prefetches would vanish with
            # no writeback counted.
            prefetcher.on_evict = self._prefetch_displaced
        self._dram_stats = LevelStats(name=memory_names[0], line=line)
        self._flat_stats = (
            LevelStats(name=memory_names[1], line=line) if allocator is not None else None
        )
        # Last counter totals published to the metrics registry, so that
        # repeated run() calls on one hierarchy publish deltas, not
        # ever-growing cumulative sums.
        self._published: dict[str, dict[str, int]] = {}
        # Dirty-flow counter totals at the last reset(): the conservation
        # ledger reports per-epoch deltas while the underlying cache
        # counters stay monotone for telemetry.
        self._ledger_base: dict[str, dict[str, int]] = {}

    # -- simulation --------------------------------------------------------

    def access(self, line_addr: int, *, write: bool = False) -> str:
        """Reference one cache line; returns the servicing level's name.

        This is the scalar *oracle* path: one reference at a time, every
        stage probed through the generic walk. The batched
        :meth:`run_array` path must stay byte-identical to it
        (``tests/test_trace_batch.py`` enforces this differentially).
        """
        if self._prefetcher is not None:
            self._prefetch_observe(line_addr)
        return self._walk(0, line_addr, write)

    def run(self, trace: Iterable[tuple[int, bool]]) -> HierarchyStats:
        """Drive a whole (line_addr, is_write) trace and return the stats."""
        with telemetry.span(tm.SPAN_HIERARCHY_RUN, line=self.line) as sp:
            n = 0
            for line_addr, write in trace:
                self.access(line_addr, write=write)
                n += 1
            sp.set_attr("refs", n)
        self._publish_telemetry()
        return self.stats()

    def run_lines(self, lines: Iterable[int], *, write: bool = False) -> HierarchyStats:
        """Drive a read-only (or write-only) line-address stream."""
        with telemetry.span(tm.SPAN_HIERARCHY_RUN, line=self.line, write=write) as sp:
            n = 0
            for line_addr in lines:
                self.access(line_addr, write=write)
                n += 1
            sp.set_attr("refs", n)
        self._publish_telemetry()
        return self.stats()

    # -- batched fast path -------------------------------------------------

    def run_array(
        self,
        addrs: np.ndarray,
        writes: np.ndarray | bool | None = None,
    ) -> HierarchyStats:
        """Drive one ndarray chunk of line addresses (batched fast path).

        ``addrs`` is a 1-D integer array of line addresses; ``writes`` is
        a matching bool array, a scalar bool applied to every reference,
        or ``None`` (all reads). Telemetry is hoisted to chunk
        granularity and the inner loop binds every hot attribute to a
        local, but the simulated behaviour — cache contents, eviction
        order, every counter — is byte-identical to feeding the same
        references through :meth:`access` one at a time.
        """
        alist, wlist = _coerce_chunk(addrs, writes)
        # Same span name as the scalar run(): consumers key on the
        # logical operation; the attribute says which path produced it.
        with telemetry.span(tm.SPAN_HIERARCHY_RUN, line=self.line, batched=True) as sp:
            self._run_chunk(alist, wlist)
            sp.set_attr("refs", len(alist))
        self._publish_telemetry()
        return self.stats()

    def run_batched(
        self,
        chunks: Iterable[tuple[np.ndarray, np.ndarray | bool | None]],
    ) -> HierarchyStats:
        """Drive an iterable of ``(addrs, writes)`` ndarray chunks.

        The streaming companion to :meth:`run_array` — chunk generators
        (``repro.trace.batch``, ``repro.kernels.traces.kernel_trace_chunks``)
        plug in directly; one telemetry span covers the whole batch.
        """
        with telemetry.span(tm.SPAN_HIERARCHY_RUN, line=self.line, batched=True) as sp:
            total = 0
            for addrs, writes in chunks:
                alist, wlist = _coerce_chunk(addrs, writes)
                self._run_chunk(alist, wlist)
                total += len(alist)
            sp.set_attr("refs", total)
        self._publish_telemetry()
        return self.stats()

    # -- internals ---------------------------------------------------------

    def _walk(self, start: int, line_addr: int, write: bool) -> str:
        """Probe stages ``start`` and below; fill on misses; service."""
        stages = self._stages
        last = len(stages) - 1
        for i in range(start, last + 1):
            stage = stages[i]
            st = stage.stats
            st.accesses += 1
            hit, ev = stage.cache.access(line_addr, write=write)
            if hit:
                st.hits += 1
                return stage.name
            st.misses += 1
            st.fills += 1
            # A clean victim of a non-last stage needs no handling
            # (_handle_eviction would fall straight through); skipping
            # the call is a pure fast-path, not a behaviour change.
            if ev is not None and (ev.dirty or i == last):
                self._handle_eviction(i, ev)
        return self._service_below(line_addr, write)

    def _prefetch_observe(self, line_addr: int) -> None:
        issued = self._prefetcher.observe(line_addr)
        if issued:
            # Prefetch fills are real traffic: they load the target
            # stage from memory (counted as DRAM reads + stage fills).
            self._stages[-1].stats.fills += len(issued)
            self._dram_stats.accesses += len(issued)
            self._dram_stats.hits += len(issued)

    def _prefetch_displaced(self, ev: Eviction) -> None:
        """Sink for victims displaced out of the LLC by prefetch fills."""
        self._handle_eviction(len(self._stages) - 1, ev)

    def _run_chunk(self, alist: list, wlist: list) -> None:
        # The batched inner loop. Two rules keep it honest: (1) the
        # first two levels — where nearly every reference resolves — are
        # inlined against the raw set dicts with all counters
        # accumulated in locals and flushed once per chunk; (2)
        # everything deeper goes through the exact same
        # _walk/_handle_eviction code as the scalar oracle, in the same
        # order (a victim is propagated *before* the walk probes the
        # next level, exactly as access() does via cache.access followed
        # by _handle_eviction). A clean victim of a non-last stage is
        # dropped without constructing an Eviction: _handle_eviction
        # would fall straight through for it anyway, and minting the
        # object dominated the miss path.
        stages = self._stages
        n_stages = len(stages)
        stage0 = stages[0]
        cache0 = stage0.cache
        sets0 = cache0._sets
        mask0 = cache0.n_sets - 1
        ways0 = cache0.ways
        deep = n_stages > 1
        if deep:
            stage1 = stages[1]
            cache1 = stage1.cache
            sets1 = cache1._sets
            mask1 = cache1.n_sets - 1
            ways1 = cache1.ways
            last1 = n_stages == 2
        walk = self._walk
        if self._prefetcher is not None:
            # Prefetcher runs interleave observe() with every reference;
            # drive them through the same observe+walk sequence as the
            # scalar oracle (identical by construction) so the lean loop
            # below never pays a per-reference prefetcher check.
            # Telemetry stays hoisted to chunk granularity either way.
            observe = self._prefetch_observe
            for addr, w in zip(alist, wlist):
                observe(addr)
                walk(0, addr, w)
            return
        handle = self._handle_eviction
        service = self._service_below
        make_ev = Eviction
        miss = _MISS  # sentinel: probe + LRU-pop in one dict operation
        hits0 = created0 = evs0 = devs0 = 0
        acc1 = hits1 = created1 = evs1 = devs1 = 0
        for addr, w in zip(alist, wlist):
            s = sets0[addr & mask0]
            was_dirty = s.pop(addr, miss)
            if was_dirty is not miss:
                hits0 += 1
                if w and not was_dirty:
                    created0 += 1
                    s[addr] = True
                else:
                    s[addr] = was_dirty
                continue
            # First-level miss: write-allocate fill, LRU victim out.
            if len(s) >= ways0:
                victim_line, victim_dirty = next(iter(s.items()))
                del s[victim_line]
                evs0 += 1
                s[addr] = w
                if w:
                    created0 += 1
                if victim_dirty:
                    devs0 += 1
                    handle(0, make_ev(victim_line, True))
                elif not deep:
                    handle(0, make_ev(victim_line, False))
            else:
                s[addr] = w
                if w:
                    created0 += 1
            if not deep:
                service(addr, w)
                continue
            # Second level, same inline shape.
            acc1 += 1
            s = sets1[addr & mask1]
            was_dirty = s.pop(addr, miss)
            if was_dirty is not miss:
                hits1 += 1
                if w and not was_dirty:
                    created1 += 1
                    s[addr] = True
                else:
                    s[addr] = was_dirty
                continue
            if len(s) >= ways1:
                victim_line, victim_dirty = next(iter(s.items()))
                del s[victim_line]
                evs1 += 1
                s[addr] = w
                if w:
                    created1 += 1
                if victim_dirty:
                    devs1 += 1
                    handle(1, make_ev(victim_line, True))
                elif last1:
                    handle(1, make_ev(victim_line, False))
            else:
                s[addr] = w
                if w:
                    created1 += 1
            if last1:
                service(addr, w)
            else:
                walk(2, addr, w)
        n = len(alist)
        st = stage0.stats
        misses0 = n - hits0
        st.accesses += n
        st.hits += hits0
        st.misses += misses0
        st.fills += misses0
        cache0.n_evictions += evs0
        cache0.n_dirty_evictions += devs0
        cache0.n_dirty_created += created0
        if deep:
            st = stage1.stats
            misses1 = acc1 - hits1
            st.accesses += acc1
            st.hits += hits1
            st.misses += misses1
            st.fills += misses1
            cache1.n_evictions += evs1
            cache1.n_dirty_evictions += devs1
            cache1.n_dirty_created += created1

    def _handle_eviction(self, level_idx: int, ev: Eviction | None) -> None:
        if ev is None:
            return
        stage = self._stages[level_idx]
        is_llc = level_idx == len(self._stages) - 1
        if is_llc and self._prefetcher is not None:
            # An evicted line can no longer redeem an outstanding
            # prefetch; forgetting this inflated accuracy and let the
            # outstanding set grow without bound.
            self._prefetcher.line_evicted(ev.line)
        if is_llc and self._victim is not None:
            # L3 eviction fills the eDRAM victim cache (paper Section 2.1).
            assert self._victim_stats is not None
            displaced = self._victim.fill(ev)
            self._victim_stats.fills += 1
            if displaced is not None and displaced.dirty:
                self._victim_stats.writebacks += 1
                self._dram_stats.writebacks += 1
            return
        if ev.dirty:
            stage.stats.writebacks += 1
            if not is_llc:
                # Propagate dirtiness to the next level's copy (it was
                # installed on the walk down for recently shared lines).
                # The insert itself may displace a victim; that victim
                # takes the same path as a demand-fill eviction at that
                # level — dropping it silently lost dirty writebacks.
                displaced = self._stages[level_idx + 1].cache.insert(
                    ev.line, dirty=True
                )
                self._handle_eviction(level_idx + 1, displaced)
            else:
                self._absorb_llc_writeback(ev)

    def _absorb_llc_writeback(self, ev: Eviction) -> None:
        """Route a dirty LLC eviction toward memory (KNL shapes)."""
        if self._mcdram_cache is not None:
            assert self._mcdram_stats is not None
            if self._cacheable_by_mcdram(ev.line):
                displaced = self._mcdram_cache.insert(ev.line, dirty=True)
                self._mcdram_stats.fills += 1
                if displaced is not None and displaced.dirty:
                    self._mcdram_stats.writebacks += 1
                    self._dram_stats.writebacks += 1
                return
        if self._allocator is not None and self._node_of(ev.line) is Node.MCDRAM:
            assert self._flat_stats is not None
            self._flat_stats.writebacks += 1
        else:
            self._dram_stats.writebacks += 1

    def _node_of(self, line_addr: int) -> Node:
        assert self._allocator is not None
        return self._allocator.node_of(line_addr * self.line)

    def _cacheable_by_mcdram(self, line_addr: int) -> bool:
        """Cache-mode MCDRAM caches only DDR-backed addresses; flat-half
        addresses bypass it (hybrid mode)."""
        if self._allocator is None:
            return True
        return self._node_of(line_addr) is Node.DDR

    def _service_below(self, line_addr: int, write: bool) -> str:
        # Broadwell shape: victim eDRAM, then DDR.
        if self._victim is not None:
            assert self._victim_stats is not None
            self._victim_stats.accesses += 1
            dirty = self._victim.probe(line_addr)
            if dirty is not None:
                self._victim_stats.hits += 1
                if dirty:
                    # Promotion keeps the dirty bit in the LLC copy. The
                    # walk above already installed the line in the LLC,
                    # so this merges in place and displaces nothing; the
                    # displaced-victim routing is defensive.
                    displaced = self._stages[-1].cache.insert(
                        line_addr, dirty=True
                    )
                    self._handle_eviction(len(self._stages) - 1, displaced)
                return self._victim_stats.name
            self._victim_stats.misses += 1
            self._dram_stats.accesses += 1
            self._dram_stats.hits += 1
            return self._dram_stats.name
        # KNL shapes.
        if self._allocator is not None and self._node_of(line_addr) is Node.MCDRAM:
            assert self._flat_stats is not None
            self._flat_stats.accesses += 1
            self._flat_stats.hits += 1
            return self._flat_stats.name
        if self._mcdram_cache is not None and self._cacheable_by_mcdram(line_addr):
            assert self._mcdram_stats is not None
            self._mcdram_stats.accesses += 1
            hit, ev = self._mcdram_cache.access(line_addr, write=write)
            if ev is not None and ev.dirty:
                self._mcdram_stats.writebacks += 1
                self._dram_stats.writebacks += 1
            if hit:
                self._mcdram_stats.hits += 1
                return self._mcdram_stats.name
            self._mcdram_stats.misses += 1
            self._mcdram_stats.fills += 1
            self._dram_stats.accesses += 1
            self._dram_stats.hits += 1
            return self._dram_stats.name
        self._dram_stats.accesses += 1
        self._dram_stats.hits += 1
        return self._dram_stats.name

    def _publish_telemetry(self) -> None:
        """Push per-level and per-cache counter deltas into the registry.

        This unifies :mod:`repro.memory.stats` with the telemetry metrics:
        every ``memory.<level>.<counter>`` name carries the access/hit/
        miss/fill/writeback traffic, and ``memory.<level>.cache.<counter>``
        the replacement traffic of the backing cache structure.
        """
        if not telemetry.enabled():
            return
        for lvl in self.stats().levels:
            self._publish_delta(tm.memory_level_prefix(lvl.name), lvl.name, lvl.counters())
        for stage in self._stages:
            self._publish_delta(
                tm.memory_cache_prefix(stage.name),
                f"cache:{stage.name}",
                stage.cache.telemetry_counters(),
            )

    def _publish_delta(
        self, prefix: str, key: str, totals: dict[str, int]
    ) -> None:
        prev = self._published.get(key, {})
        telemetry.record_counts(
            prefix, {k: v - prev.get(k, 0) for k, v in totals.items()}
        )
        self._published[key] = totals

    # -- results -----------------------------------------------------------

    def stats(self) -> HierarchyStats:
        levels = [s.stats for s in self._stages]
        if self._victim_stats is not None:
            levels.append(self._victim_stats)
        if self._mcdram_stats is not None:
            levels.append(self._mcdram_stats)
        if self._flat_stats is not None:
            levels.append(self._flat_stats)
        levels.append(self._dram_stats)
        return HierarchyStats(levels=levels)

    def reset(self) -> None:
        """Drop cache contents, zero all counters, forget predictor state."""
        for stage in self._stages:
            stage.cache.invalidate_all()
            stage.stats = LevelStats(name=stage.name, line=self.line)
        if self._victim is not None:
            self._victim.invalidate_all()
            self._victim_stats = LevelStats(
                name=self._victim_stats.name, line=self.line  # type: ignore[union-attr]
            )
        if self._mcdram_cache is not None:
            self._mcdram_cache.invalidate_all()
            self._mcdram_stats = LevelStats(name="MCDRAM", line=self.line)
        self._dram_stats = LevelStats(name=self._dram_stats.name, line=self.line)
        if self._flat_stats is not None:
            self._flat_stats = LevelStats(
                name=self._flat_stats.name, line=self.line
            )
        if self._prefetcher is not None:
            # Stale stride/outstanding state from a previous repetition
            # would leak prefetches (and accuracy) into the next one.
            self._prefetcher.reset()
        # Level counters restart at zero; drop their publish baselines
        # (cache replacement counters survive invalidate_all, keep theirs).
        self._published = {
            k: v for k, v in self._published.items() if k.startswith("cache:")
        }
        # Close the previous epoch's dirty-flow books (the invalidations
        # above consumed its resident dirty lines) and start fresh.
        self._ledger_base = {
            name: dict(cache.dirty_flows())
            for name, cache in self._dirty_caches()
        }

    # -- writeback conservation --------------------------------------------

    def _dirty_caches(self) -> list[tuple[str, SetAssociativeCache]]:
        caches = [(s.name, s.cache) for s in self._stages]
        if self._victim is not None:
            assert self._victim_stats is not None
            caches.append((self._victim_stats.name, self._victim.cache))
        if self._mcdram_cache is not None:
            caches.append(("MCDRAM", self._mcdram_cache))
        return caches

    def dirty_ledger(self) -> dict[str, dict[str, int]]:
        """Per-cache dirty-line flow counters for the current epoch.

        An epoch starts at construction or :meth:`reset`; the underlying
        cache counters stay monotone for telemetry, so the ledger
        subtracts the baseline captured at the last reset.
        """
        ledger: dict[str, dict[str, int]] = {}
        for name, cache in self._dirty_caches():
            flows = cache.dirty_flows()
            base = self._ledger_base.get(name)
            if base:
                flows = {k: v - base.get(k, 0) for k, v in flows.items()}
            ledger[name] = flows
        return ledger

    def memory_writebacks(self) -> int:
        """Dirty lines that arrived at memory (DRAM plus flat MCDRAM)."""
        total = self._dram_stats.writebacks
        if self._flat_stats is not None:
            total += self._flat_stats.writebacks
        return total

    def conservation_violations(self) -> list[str]:
        """Audit writeback conservation; an empty list means books close.

        Two laws that must hold for ANY trace on ANY platform shape:

        * per cache: dirty lines created by writes plus dirty lines
          received from above equal those still resident plus those
          evicted dirty, extracted (victim promotion), or invalidated
          (a merge coalesces the *arriving* line — booked as the
          sender's out-flow — without minting a new entry here);
        * across the hierarchy: every dirty line leaving a cache (dirty
          eviction or extraction) arrives somewhere — another cache
          (received/merged) or memory (writebacks counted at DRAM/flat).

        The historical bugs this guards against: dirtiness-propagation
        inserts and prefetch fills displacing dirty victims that were
        silently dropped (lines left a cache and arrived nowhere).
        """
        ledger = self.dirty_ledger()
        violations = []
        for name, f in ledger.items():
            lhs = f["created"] + f["received"]
            rhs = (
                f["resident_dirty"]
                + f["dirty_evictions"]
                + f["extracted"]
                + f["invalidated"]
            )
            if lhs != rhs:
                violations.append(
                    f"{name}: created+received={lhs} != accounted={rhs} ({f})"
                )
        out_flow = sum(
            f["dirty_evictions"] + f["extracted"] for f in ledger.values()
        )
        in_flow = sum(f["received"] + f["merged"] for f in ledger.values())
        mem = self.memory_writebacks()
        if out_flow != in_flow + mem:
            violations.append(
                f"hierarchy: dirty out-flow {out_flow} != "
                f"in-flow {in_flow} + memory writebacks {mem}"
            )
        return violations


def _coerce_chunk(
    addrs: np.ndarray,
    writes: np.ndarray | bool | None,
) -> tuple[list, list]:
    """Normalize one (addrs, writes) chunk to plain-Python lists.

    ``tolist()`` materializes native ints/bools once per chunk; the inner
    loop then runs on exactly the objects the scalar path sees (dict keys
    hash identically, and per-element ndarray indexing — which boxes a
    numpy scalar per reference — never happens).
    """
    arr = np.asarray(addrs)
    if arr.ndim != 1:
        raise ValueError("addrs must be a 1-D array of line addresses")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"addrs must be integer line addresses, got {arr.dtype}")
    n = arr.shape[0]
    if writes is None:
        wlist = [False] * n
    elif isinstance(writes, (bool, np.bool_)):
        wlist = [bool(writes)] * n
    else:
        warr = np.asarray(writes)
        if warr.shape != arr.shape:
            raise ValueError(
                f"writes shape {warr.shape} does not match addrs {arr.shape}"
            )
        wlist = warr.astype(bool).tolist()
    return arr.tolist(), wlist


# -- builders ---------------------------------------------------------------


def _cache_stages(machine: MachineSpec, *, scale: float = 1.0) -> list[_CacheStage]:
    """Instantiate the on-chip levels of ``machine``.

    ``scale`` shrinks every capacity by a constant factor so that small,
    fast-to-simulate traces exercise the same *ratios* as the real machine
    (a standard scaled-down simulation technique); 1.0 keeps true sizes.
    """
    stages = []
    for lvl in machine.caches:
        assert lvl.capacity is not None
        cap = max(lvl.line * (lvl.ways or 8), int(lvl.capacity * scale))
        cache = SetAssociativeCache(cap, line=lvl.line, ways=lvl.ways or 8)
        stages.append(_CacheStage(lvl.name, cache))
    return stages


def for_broadwell(
    machine: MachineSpec,
    *,
    edram: bool | EdramMode = True,
    scale: float = 1.0,
    prefetch: str | None = None,
) -> Hierarchy:
    """Build the Broadwell-shaped hierarchy (optionally without eDRAM)."""
    if isinstance(edram, EdramMode):
        edram = edram.enabled
    victim = None
    if edram and machine.opm is not None:
        assert machine.opm.capacity is not None
        cap = max(
            machine.opm.line * (machine.opm.ways or 16),
            int(machine.opm.capacity * scale),
        )
        victim = VictimCache(cap, line=machine.opm.line, ways=machine.opm.ways or 16)
    stages = _cache_stages(machine, scale=scale)
    return Hierarchy(
        stages,
        line=machine.dram.line,
        victim=victim,
        victim_name=machine.opm.name if machine.opm else "eDRAM",
        memory_names=(machine.dram.name, "unused"),
        prefetcher=_make_prefetcher(prefetch, stages),
    )


def for_knl(
    machine: MachineSpec,
    mode: McdramMode,
    *,
    allocator: NumaAllocator | None = None,
    scale: float = 1.0,
) -> Hierarchy:
    """Build the KNL-shaped hierarchy for one MCDRAM mode.

    ``allocator`` carries flat/hybrid placements; when omitted one is
    created with the mode's flat capacity (callers then allocate arrays
    through ``hierarchy_allocator(h)``).
    """
    if machine.opm is None:
        raise ValueError("KNL machine spec must include MCDRAM")
    config = McdramConfig.from_spec(machine.opm, mode)
    mcdram_cache = None
    if config.uses_cache:
        ways = machine.opm.ways or 1  # MCDRAM: 1 (direct-mapped)
        cap = max(machine.opm.line * ways, int(config.cache_bytes * scale))
        mcdram_cache = SetAssociativeCache(cap, line=machine.opm.line, ways=ways)
    if allocator is None and config.uses_flat:
        assert machine.dram.capacity is not None
        allocator = NumaAllocator(
            int(config.flat_bytes * scale),
            machine.dram.capacity,
            prefer_mcdram=True,
        )
    stages = _cache_stages(machine, scale=scale)
    return Hierarchy(
        stages,
        line=machine.dram.line,
        mcdram_cache=mcdram_cache,
        allocator=allocator,
        memory_names=(machine.dram.name, "MCDRAM-flat"),
    )


def _make_prefetcher(kind: str | None, stages: list[_CacheStage]):
    """Instantiate an optional prefetcher targeting the deepest on-chip
    cache ('next-line' or 'stride'); None disables prefetching."""
    if kind is None:
        return None
    from repro.memory.prefetch import NextLinePrefetcher, StridePrefetcher

    target = stages[-1].cache
    if kind == "next-line":
        return NextLinePrefetcher(target)
    if kind == "stride":
        return StridePrefetcher(target)
    raise ValueError(f"unknown prefetcher kind {kind!r}")


def hierarchy_allocator(hierarchy: Hierarchy) -> NumaAllocator | None:
    """Expose the NUMA allocator of a flat/hybrid KNL hierarchy."""
    return hierarchy._allocator
