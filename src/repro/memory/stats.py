"""Per-level access statistics collected by the trace simulator."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class LevelStats:
    """Counters for one hierarchy level.

    * ``accesses`` — probes that reached this level.
    * ``hits`` / ``misses`` — outcome of those probes.
    * ``fills`` — lines installed from below (or from victim traffic).
    * ``writebacks`` — dirty lines this level pushed toward memory.
    """

    name: str
    line: int
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Local hit rate of probes that reached this level."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0

    @property
    def traffic_bytes(self) -> int:
        """Bytes moved through this level (hits serviced + fills + WBs)."""
        return (self.hits + self.fills + self.writebacks) * self.line

    def merge(self, other: "LevelStats") -> "LevelStats":
        """Sum counters (for aggregating repetitions)."""
        if other.name != self.name or other.line != self.line:
            raise ValueError("cannot merge stats of different levels")
        return LevelStats(
            name=self.name,
            line=self.line,
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            fills=self.fills + other.fills,
            writebacks=self.writebacks + other.writebacks,
        )

    def as_dict(self) -> dict[str, float | int | str]:
        return {
            "name": self.name,
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "writebacks": self.writebacks,
            "hit_rate": self.hit_rate,
            "traffic_bytes": self.traffic_bytes,
        }

    def counters(self) -> dict[str, int]:
        """Integer counters only (the shape the metrics registry ingests)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "writebacks": self.writebacks,
        }


@dataclasses.dataclass
class HierarchyStats:
    """Ordered collection of per-level statistics for one simulation."""

    levels: list[LevelStats]

    def __getitem__(self, name: str) -> LevelStats:
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise KeyError(name)

    def __iter__(self):
        return iter(self.levels)

    @property
    def total_accesses(self) -> int:
        """References issued by the core (probes at the first level)."""
        return self.levels[0].accesses if self.levels else 0

    def merge(self, other: "HierarchyStats") -> "HierarchyStats":
        """Level-wise sum of two runs over the same hierarchy shape.

        Repeated-run aggregation (telemetry summaries, sweep repetitions)
        without hand-rolled per-level loops; raises if the level names do
        not line up.
        """
        if [l.name for l in self.levels] != [l.name for l in other.levels]:
            raise ValueError(
                "cannot merge stats of different hierarchies: "
                f"{[l.name for l in self.levels]} vs "
                f"{[l.name for l in other.levels]}"
            )
        return HierarchyStats(
            levels=[a.merge(b) for a, b in zip(self.levels, other.levels)]
        )

    def as_dict(self) -> dict[str, dict[str, float | int | str]]:
        """Level name -> that level's ``as_dict()`` (JSON/telemetry-ready)."""
        return {lvl.name: lvl.as_dict() for lvl in self.levels}

    def summary(self) -> str:
        """Table of hit rates, one line per level."""
        rows = [
            f"{lvl.name:<8} acc={lvl.accesses:>10} hit={lvl.hit_rate:6.2%} "
            f"fills={lvl.fills:>10} wb={lvl.writebacks:>8}"
            for lvl in self.levels
        ]
        return "\n".join(rows)
