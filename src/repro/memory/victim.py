"""eDRAM-style victim cache semantics (paper Section 2.1).

The Broadwell eDRAM L4 is a *non-inclusive victim cache*: it is filled by
lines evicted from the on-chip L3 (whose tags it shares), and a hit in the
L4 promotes the line back into L3. It never holds lines that are also in
L3, so the effective combined capacity is L3 + L4.
"""

from __future__ import annotations

from repro.memory.cache import Eviction, SetAssociativeCache


class VictimCache:
    """Wraps a :class:`SetAssociativeCache` with victim fill/promote rules."""

    def __init__(self, capacity: int, line: int = 64, ways: int = 16) -> None:
        self._cache = SetAssociativeCache(capacity, line=line, ways=ways)

    @property
    def cache(self) -> SetAssociativeCache:
        """The backing store (exposed for dirty-flow accounting)."""
        return self._cache

    @property
    def capacity(self) -> int:
        return self._cache.capacity

    @property
    def line(self) -> int:
        return self._cache.line

    def probe(self, line_addr: int) -> bool | None:
        """Probe for a line; on hit, *remove* it (promotion to the upper
        level) and return its dirty bit. Returns ``None`` on miss.
        """
        if not self._cache.lookup(line_addr, touch=False):
            return None
        return self._cache.extract(line_addr)

    def fill(self, eviction: Eviction) -> Eviction | None:
        """Install a line evicted from the upper level.

        Returns the line this fill displaced out of the victim cache (to be
        written back to DRAM if dirty), or ``None``.
        """
        return self._cache.insert(eviction.line, dirty=eviction.dirty)

    def invalidate_all(self) -> None:
        self._cache.invalidate_all()

    def __contains__(self, line_addr: int) -> bool:
        return line_addr in self._cache

    def __len__(self) -> int:
        return len(self._cache)
