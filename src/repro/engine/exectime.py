"""Analytic execution-time model.

Estimates the runtime and throughput of a kernel
(:class:`~repro.kernels.profile.WorkloadProfile`) on a platform
(:class:`~repro.platforms.spec.MachineSpec`) under a given OPM
configuration, via four composable mechanisms:

1. **Hierarchy absorption** — each phase's reuse curve is evaluated at
   the cumulative capacities of the configured level stack, yielding the
   bytes each level serves and the bytes transiting each port.
2. **Bandwidth bound** — every port is a channel; the phase cannot finish
   faster than its most loaded channel (pipelined-transfer roofline).
3. **Latency bound** — requests served at each level cost its latency,
   hidden by the phase's memory-level parallelism; a valley ramp degrades
   MLP just past a capacity boundary (paper Figure 6's cache valley).
4. **Compute bound** — Table 2 flops over the calibrated fraction of the
   platform's peak.

Phase time = max(compute, bandwidth, latency) + fixed serial overhead;
profile time = sum over phases. MCDRAM modes alter the stack: cache mode
inserts a direct-mapped stage (capacity derated for conflicts), flat mode
splits the memory boundary into static-share channels (with the
straddling penalty of paper Section 4.2.1-II when an allocation spans
both nodes), and hybrid composes a flat half over a cache half.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math

import numpy as np

from repro.engine.calibration import DEFAULT_KNOBS, ModelKnobs, efficiency
from repro.kernels.profile import Phase, WorkloadProfile
from repro.memory.mcdram import McdramConfig
from repro.platforms.spec import LINE_BYTES, MachineSpec
from repro.platforms.tuning import EdramMode, McdramMode


@dataclasses.dataclass(frozen=True)
class _Stage:
    """One absorber in the configured stack."""

    name: str
    kind: str  # "cache" | "flat"
    capacity: float  # bytes (cache: curve capacity; flat: resident bytes)
    bandwidth: float  # GB/s
    latency: float  # ns
    share: float = 0.0  # flat only: fraction of incoming traffic served
    #: Direct-mapped stages (MCDRAM cache mode) retain a *proportional*
    #: share of an over-capacity cyclic working set, where an LRU stack
    #: would thrash to zero — this is what keeps the paper's cache mode
    #: above DDR past 16 GB (Figures 23/25).
    direct_mapped: bool = False


@dataclasses.dataclass(frozen=True)
class _Stack:
    stages: tuple[_Stage, ...]
    memory: _Stage  # the final DRAM channel
    straddling: bool


@dataclasses.dataclass(frozen=True)
class StageLoad:
    """Per-stage outcome for one phase."""

    name: str
    transit_bytes: float  # bytes crossing this stage's port
    served_bytes: float  # bytes this stage supplied


@dataclasses.dataclass(frozen=True)
class PhaseResult:
    name: str
    seconds: float
    bound: str  # "compute" | "bandwidth:<stage>" | "latency" | "overhead"
    loads: tuple[StageLoad, ...]


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Modelled outcome of one kernel configuration on one platform."""

    kernel: str
    machine: str
    seconds: float
    gflops: float
    bound: str  # bound of the dominant phase
    phases: tuple[PhaseResult, ...]
    opm_bytes: float  # traffic served by the OPM (eDRAM or MCDRAM)
    dram_bytes: float  # traffic served by off-package DRAM

    def dominant_phase(self) -> PhaseResult:
        return max(self.phases, key=lambda p: p.seconds)


# -- stack construction -------------------------------------------------------


def _cache_stages(machine: MachineSpec) -> list[_Stage]:
    return [
        _Stage(
            name=lvl.name,
            kind="cache",
            capacity=float(lvl.capacity or 0),
            bandwidth=lvl.bandwidth,
            latency=lvl.latency,
        )
        for lvl in machine.caches
    ]


def build_stack(
    machine: MachineSpec,
    footprint: float,
    *,
    edram: EdramMode | bool | None = None,
    mcdram: McdramMode | None = None,
    knobs: ModelKnobs = DEFAULT_KNOBS,
) -> _Stack:
    """Resolve the OPM configuration into an ordered absorber stack."""
    stages = _cache_stages(machine)
    dram = _Stage(
        name=machine.dram.name,
        kind="cache",
        capacity=math.inf,
        bandwidth=machine.dram.bandwidth,
        latency=machine.dram.latency,
    )
    opm = machine.opm
    if opm is None or (opm.kind == "victim-cache" and _edram_off(edram)):
        return _Stack(tuple(stages), dram, straddling=False)

    if opm.kind == "victim-cache":
        cap = float(opm.capacity or 0)
        if not knobs.edram_victim:
            # Inclusive design ablation: the L4 duplicates L3 contents.
            cap = max(0.0, cap - float(machine.llc.capacity or 0))
        stages.append(
            _Stage(
                name=opm.name,
                kind="cache",
                capacity=cap,
                bandwidth=opm.bandwidth,
                latency=opm.latency,
            )
        )
        return _Stack(tuple(stages), dram, straddling=False)

    # Memory-side OPM (MCDRAM).
    mode = mcdram if mcdram is not None else McdramMode.CACHE
    config = McdramConfig.from_spec(opm, mode)
    straddling = False
    if config.uses_flat:
        share = min(1.0, config.flat_bytes / footprint) if footprint > 0 else 1.0
        straddling = mode is McdramMode.FLAT and 0.0 < share < 1.0
        stages.append(
            _Stage(
                name=f"{opm.name}-flat",
                kind="flat",
                capacity=float(config.flat_bytes),
                bandwidth=opm.bandwidth,
                latency=opm.latency,
                share=share,
            )
        )
    if config.uses_cache:
        # MCDRAM's cache mode is direct-mapped (ways == 1): conflict
        # misses and tag checks derate it. A set-associative memory-side
        # buffer (Skylake's eDRAM) keeps its full capacity instead.
        dm = (opm.ways or 1) == 1
        stages.append(
            _Stage(
                name=f"{opm.name}-cache",
                kind="cache",
                capacity=config.cache_bytes
                * (knobs.direct_map_capacity_factor if dm else 1.0),
                bandwidth=opm.bandwidth
                * (knobs.cache_mode_bandwidth_factor if dm else 1.0),
                latency=opm.latency,
                direct_mapped=dm,
            )
        )
    return _Stack(tuple(stages), dram, straddling=straddling)


def _edram_off(edram: EdramMode | bool | None) -> bool:
    if edram is None:
        return False
    if isinstance(edram, EdramMode):
        return not edram.enabled
    return not edram


# -- per-phase evaluation ------------------------------------------------------


def _valley_ramp(footprint: float, llc_capacity: float, knobs: ModelKnobs) -> float:
    """Problem-size-dependent MLP availability (the cache valley).

    Data-parallel kernels expose outstanding misses in proportion to their
    problem size; just past the on-chip LLC the miss stream exists but the
    parallelism to hide it does not, producing the dip-then-recover shape
    of the paper's Figure 6. The ramp is a pure function of the footprint
    (not of which OPM is configured), so adding OPM capacity can never
    *reduce* modelled MLP — matching the paper's "eDRAM never hurts".
    """
    if not knobs.valley_enabled or llc_capacity <= 0:
        return 1.0
    ramp = footprint / (knobs.valley_span * llc_capacity)
    return float(min(1.0, max(knobs.valley_floor, ramp)))


def _phase_time(
    phase: Phase,
    profile: WorkloadProfile,
    machine: MachineSpec,
    stack: _Stack,
    knobs: ModelKnobs,
) -> PhaseResult:
    demand = phase.demand_bytes
    footprint = float(profile.footprint_bytes)
    straddle_bw = knobs.flat_straddle_bandwidth_factor if stack.straddling else 1.0
    straddle_lat = knobs.flat_straddle_latency_factor if stack.straddling else 1.0
    straddle_cap = knobs.flat_straddle_cache_factor if stack.straddling else 1.0

    llc_capacity = float(machine.llc.capacity or 0)
    base_mlp = phase.global_mlp(machine.cores)
    # On-chip hits are pipelined; the valley ramp only throttles the
    # parallelism available to *below-LLC* misses.
    miss_mlp = base_mlp * _valley_ramp(footprint, llc_capacity, knobs)
    opm_name = machine.opm.name if machine.opm is not None else None
    opm_port_bw = machine.opm.bandwidth if machine.opm is not None else 0.0

    remaining = 1.0  # fraction of demand still unserved
    cum = 0.0  # cumulative absorber capacity seen so far
    on_chip = True
    loads: list[StageLoad] = []
    channel_times: list[tuple[str, float]] = []
    opm_port_load = 0.0  # MCDRAM flat + cache halves share one device
    latency_s = 0.0

    for stage in stack.stages:
        is_opm_stage = opm_name is not None and stage.name.startswith(opm_name)
        if is_opm_stage:
            on_chip = False
        transit = demand * remaining
        if stage.kind == "cache":
            capacity = stage.capacity * straddle_cap
            frac_above = phase.reuse(cum)
            cum += capacity
            frac_here = phase.reuse(cum)
            cond_hit = 0.0
            if frac_above < 1.0:
                cond_hit = max(0.0, (frac_here - frac_above) / (1.0 - frac_above))
            if stage.direct_mapped and frac_above < 1.0:
                # Proportional residency: a direct-mapped memory-side
                # cache keeps ~capacity/working-set of an over-capacity
                # cyclic footprint resident (no LRU thrash). Applies to
                # the fraction of traffic that is re-referenced at all.
                overflow_ws = max(capacity, footprint - (cum - capacity))
                residency = min(1.0, capacity / overflow_ws)
                reusable = max(
                    0.0,
                    (phase.reuse.max_fraction - frac_above)
                    / (1.0 - frac_above),
                )
                cond_hit = max(cond_hit, residency * reusable)
            served = transit * cond_hit
            remaining *= 1.0 - cond_hit
            port_load = transit  # misses transit on the fill path too
        else:  # flat: static placement share
            served = transit * stage.share
            remaining *= 1.0 - stage.share
            cum += stage.capacity
            port_load = served  # pass-down traffic does not cross this port
        # Dirty evictions from the on-chip caches land wherever the data
        # is serviced: any memory-side stage (flat or OPM cache) carries
        # write-back traffic for what it serves, as does an on-chip level
        # big enough to hold the whole problem (steady-state residency).
        is_memoryish = (
            stage.kind == "flat" or is_opm_stage or stage.capacity >= footprint
        )
        wb = phase.write_fraction * served if is_memoryish else 0.0
        bw = stage.bandwidth * (straddle_bw if stage.kind == "flat" else 1.0)
        channel_times.append((stage.name, (port_load + wb) / (bw * 1e9)))
        if is_opm_stage:
            opm_port_load += port_load + wb
        lat = stage.latency * (straddle_lat if stage.kind == "flat" else 1.0)
        mlp = base_mlp if on_chip else miss_mlp
        latency_s += (served / LINE_BYTES) * lat * 1e-9 / mlp
        loads.append(StageLoad(stage.name, transit, served))

    if opm_port_load > 0.0 and opm_port_bw > 0.0:
        # Hybrid mode: the flat and cache halves are the same physical
        # MCDRAM; their combined traffic cannot exceed the device port.
        channel_times.append(
            (f"{opm_name}-port", opm_port_load / (opm_port_bw * straddle_bw * 1e9))
        )

    # Final DRAM channel.
    transit = demand * remaining
    wb = phase.write_fraction * transit
    dram_bw = stack.memory.bandwidth * straddle_bw
    channel_times.append((stack.memory.name, (transit + wb) / (dram_bw * 1e9)))
    latency_s += (
        (transit / LINE_BYTES)
        * stack.memory.latency
        * straddle_lat
        * 1e-9
        / miss_mlp
    )
    loads.append(StageLoad(stack.memory.name, transit, transit))

    eff = profile.compute_efficiency * efficiency(profile.kernel, machine.arch)
    compute_s = phase.flops / (machine.dp_peak_gflops * 1e9 * eff)
    bw_stage, bw_s = max(channel_times, key=lambda kv: kv[1])
    core = max(compute_s, bw_s, latency_s)
    if core == compute_s:
        bound = "compute"
    elif core == bw_s:
        bound = f"bandwidth:{bw_stage}"
    else:
        bound = "latency"
    total = core + phase.serial_overhead_s
    if phase.serial_overhead_s > core:
        bound = "overhead"
    return PhaseResult(
        name=phase.name, seconds=total, bound=bound, loads=tuple(loads)
    )


# -- public API ----------------------------------------------------------------


def estimate(
    profile: WorkloadProfile,
    machine: MachineSpec,
    *,
    edram: EdramMode | bool | None = None,
    mcdram: McdramMode | None = None,
    knobs: ModelKnobs = DEFAULT_KNOBS,
    noise_seed: int | None = None,
) -> RunResult:
    """Model one kernel run; see the module docstring for semantics."""
    stack = build_stack(
        machine,
        float(profile.footprint_bytes),
        edram=edram,
        mcdram=mcdram,
        knobs=knobs,
    )
    phases = tuple(
        _phase_time(p, profile, machine, stack, knobs) for p in profile.phases
    )
    seconds = sum(p.seconds for p in phases)
    gflops = profile.flops / seconds / 1e9 if seconds > 0 else 0.0
    if knobs.noise_sigma > 0.0:
        rng = np.random.default_rng(_derive_seed(profile, noise_seed))
        gflops *= float(np.exp(rng.normal(0.0, knobs.noise_sigma)))
        seconds = profile.flops / (gflops * 1e9) if gflops > 0 else seconds
    opm_bytes = 0.0
    dram_bytes = 0.0
    opm_name = machine.opm.name if machine.opm else None
    for pr in phases:
        for load in pr.loads:
            if opm_name and load.name.startswith(opm_name):
                opm_bytes += load.served_bytes
            elif load.name == machine.dram.name:
                dram_bytes += load.served_bytes
    dominant = max(phases, key=lambda p: p.seconds)
    return RunResult(
        kernel=profile.kernel,
        machine=machine.name,
        seconds=seconds,
        gflops=gflops,
        bound=dominant.bound,
        phases=phases,
        opm_bytes=opm_bytes,
        dram_bytes=dram_bytes,
    )


def _derive_seed(profile: WorkloadProfile, noise_seed: int | None) -> int:
    """Deterministic per-configuration noise seed."""
    key = f"{profile.kernel}|{sorted(profile.params.items())}|{noise_seed}"
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "little")
