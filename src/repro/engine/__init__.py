"""Analytic performance engine: execution time, roofline, stepping model."""

from repro.engine import roofline, stepping
from repro.engine.calibration import DEFAULT_KNOBS, EFFICIENCY, ModelKnobs, efficiency
from repro.engine.exectime import RunResult, build_stack, estimate

__all__ = [
    "DEFAULT_KNOBS",
    "EFFICIENCY",
    "ModelKnobs",
    "RunResult",
    "build_stack",
    "efficiency",
    "estimate",
    "roofline",
    "stepping",
]
