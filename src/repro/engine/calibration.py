"""Calibration constants of the analytic engine.

Every knob the execution-time model uses beyond the hardware spec lives
here, with its provenance. Two kinds:

* **Per-kernel efficiency multipliers** — the fraction of the platform's
  FLOP peak a kernel's compute part can use *on that architecture*,
  folded on top of the kernel's own (configuration-dependent)
  ``compute_efficiency``. These absorb ISA/runtime effects the paper
  treats as black-box properties of the vendor implementations (e.g.
  SpTRANS's integer-dominated passes crawl on KNL's weak cores — Tables 4
  vs 5 show 19–22 GFlop/s on Broadwell but 3.5–5.2 on KNL).
* **Structural model parameters** — direct-map conflict inflation for
  MCDRAM cache mode, the flat-mode straddling penalty, the MLP ramp of
  the valley model. Each is individually switchable for the ablation
  benchmarks (DESIGN.md Section 5).
"""

from __future__ import annotations

import dataclasses

#: (kernel, arch) -> multiplier on the platform FLOP peak available to the
#: kernel's compute phase. Architectures: "Broadwell", "Knights Landing".
EFFICIENCY: dict[tuple[str, str], float] = {
    # Dense kernels: MKL-class efficiency on Broadwell; KNL reaches about
    # half of its (very high) peak on DGEMM-class code (paper Section 4.2.1:
    # 1425-1544 of 3072 GFlop/s).
    ("gemm", "Broadwell"): 0.87,
    ("gemm", "Knights Landing"): 0.48,
    ("cholesky", "Broadwell"): 0.93,
    ("cholesky", "Knights Landing"): 0.42,
    # Sparse kernels: indirect addressing caps the usable issue rate.
    ("spmv", "Broadwell"): 0.13,
    ("spmv", "Knights Landing"): 0.11,
    ("sptrsv", "Broadwell"): 0.75,
    ("sptrsv", "Knights Landing"): 0.09,
    # SpTRANS "ops" are index manipulations; KNL's scalar cores do badly.
    ("sptrans", "Broadwell"): 0.95,
    ("sptrans", "Knights Landing"): 0.016,
    ("fft", "Broadwell"): 0.60,
    ("fft", "Knights Landing"): 0.12,
    ("stencil", "Broadwell"): 0.60,
    ("stencil", "Knights Landing"): 0.60,
    ("stream", "Broadwell"): 1.0,
    ("stream", "Knights Landing"): 1.0,
}


def efficiency(kernel: str, arch: str) -> float:
    """Calibrated peak-fraction multiplier (1.0 when uncalibrated)."""
    return EFFICIENCY.get((kernel, arch), 1.0)


@dataclasses.dataclass(frozen=True)
class ModelKnobs:
    """Structural parameters of the execution-time model.

    Each field corresponds to one ablation in DESIGN.md Section 5;
    toggling it off isolates that mechanism's contribution.
    """

    #: MCDRAM cache mode is direct-mapped (paper Section 2.2): conflict
    #: misses shrink the usable capacity relative to an LRU cache.
    direct_map_capacity_factor: float = 0.6
    #: ... and in-line tag checks shave sustainable bandwidth
    #: (Section 4.2.1-III: "cache is not always hit and requires
    #: additional tag checking overhead").
    cache_mode_bandwidth_factor: float = 0.85
    #: Flat-mode arrays straddling MCDRAM and DDR thrash the NoC and L2
    #: sets (Section 4.2.1-II: "the performance becomes extremely poor").
    #: Both memory channels degrade to this fraction while straddling.
    flat_straddle_bandwidth_factor: float = 0.30
    #: Extra latency multiplier while straddling (dual-port L2 conflicts).
    flat_straddle_latency_factor: float = 2.0
    #: ... and the L2 set conflicts between DDR- and MCDRAM-backed lines
    #: destroy on-chip cache effectiveness: cache capacities shrink to
    #: this fraction while straddling (this is what collapses blocked
    #: GEMM/Cholesky past 16 GB in flat mode, Figure 15/16).
    flat_straddle_cache_factor: float = 0.05
    #: Valley model (paper Figure 6): just past the on-chip LLC capacity
    #: the memory-level parallelism exposed by a data-parallel kernel has
    #: not yet grown enough to saturate the memory below. MLP scales with
    #: problem size, saturating at `valley_span` x LLC capacity, and never
    #: drops under `valley_floor`.
    valley_enabled: bool = True
    valley_floor: float = 0.08
    valley_span: float = 8.0
    #: Victim (non-inclusive) eDRAM adds its capacity on top of L3;
    #: an inclusive design would not (ablation: eDRAM inclusivity).
    edram_victim: bool = True
    #: Multiplicative lognormal jitter applied to modelled GFlop/s
    #: (sigma; 0 disables). Used by scatter figures for realism.
    noise_sigma: float = 0.0

    def replace(self, **kwargs: object) -> "ModelKnobs":
        return dataclasses.replace(self, **kwargs)  # type: ignore[arg-type]


#: The default knob set used by all experiments.
DEFAULT_KNOBS = ModelKnobs()
