"""The Stepping model (paper Figure 6, applied in Figures 28-30).

The paper's visual analytic tool: achievable throughput as a function of
*problem size* (not thread count, unlike the Guz et al. valley model it
generalizes). Every cache level contributes a peak at its capacity,
possibly followed by a valley when memory-level parallelism is not yet
sufficient to saturate the next level, and multi-level hierarchies yield
a descending staircase of peaks.

This module generates the model's canonical curves directly from a
machine spec and a generic workload shape (arithmetic intensity + reuse
at fit). It is deliberately simpler than :mod:`repro.engine.exectime` —
it is the *explanatory* model, and the experiments that reproduce Figures
6/28/29/30 use it, while the measured-style figures use the full engine.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.engine.calibration import DEFAULT_KNOBS, ModelKnobs
from repro.memory.mcdram import McdramConfig
from repro.platforms.spec import MachineSpec
from repro.telemetry import names as tm
from repro.platforms.tuning import EdramMode, McdramMode


@dataclasses.dataclass(frozen=True)
class SteppingCurve:
    """One throughput-vs-problem-size curve."""

    label: str
    sizes: np.ndarray  # bytes
    gflops: np.ndarray

    def peak_positions(self) -> list[int]:
        """Indices of local maxima (the cache peaks)."""
        g = self.gflops
        return [
            i
            for i in range(1, len(g) - 1)
            if g[i] >= g[i - 1] and g[i] > g[i + 1]
        ]

    def plateau(self) -> float:
        """Final (memory plateau) throughput."""
        return float(self.gflops[-1])


@dataclasses.dataclass(frozen=True)
class SteppingWorkload:
    """Generic workload shape for the stepping model.

    ``ai`` — flops per demanded byte; ``hit_at_fit`` — fraction of demand
    absorbed by any level the whole problem fits in (1.0 = steady-state
    repetition); ``mlp`` — outstanding requests available at saturation.
    """

    ai: float = 0.0625  # STREAM-like by default
    hit_at_fit: float = 1.0
    mlp: float = 512.0


def curve(
    machine: MachineSpec,
    *,
    sizes: Sequence[float] | None = None,
    workload: SteppingWorkload = SteppingWorkload(),
    edram: EdramMode | bool | None = None,
    mcdram: McdramMode | None = None,
    knobs: ModelKnobs = DEFAULT_KNOBS,
    label: str | None = None,
) -> SteppingCurve:
    """Generate one stepping curve for a machine/OPM configuration."""
    from repro import telemetry

    curve_label = label or _default_label(edram, mcdram)
    with telemetry.span(
        tm.SPAN_STEPPING_CURVE, machine=machine.name, label=curve_label
    ) as sp:
        levels = _levels_for(machine, edram=edram, mcdram=mcdram, knobs=knobs)
        if sizes is None:
            top = (machine.dram.capacity or 2**37) * 4.0
            sizes = np.logspace(np.log2(16e3), np.log2(top), 160, base=2.0)
        sizes = np.asarray(list(sizes), dtype=np.float64)
        gflops = np.array(
            [
                _throughput(machine, levels, s, workload, knobs)
                for s in sizes
            ]
        )
        sp.set_attr("points", int(sizes.size))
        telemetry.counter(tm.METRIC_STEPPING_POINTS).inc(int(sizes.size))
    return SteppingCurve(
        label=curve_label,
        sizes=sizes,
        gflops=gflops,
    )


def _default_label(
    edram: EdramMode | bool | None, mcdram: McdramMode | None
) -> str:
    if mcdram is not None:
        return str(mcdram)
    if edram is None:
        return "baseline"
    on = edram.enabled if isinstance(edram, EdramMode) else bool(edram)
    return "w/ eDRAM" if on else "w/o eDRAM"


@dataclasses.dataclass(frozen=True)
class _Level:
    name: str
    capacity: float
    bandwidth: float
    latency: float
    flat_share_cap: float = 0.0  # >0 marks a flat (static-share) level


def _levels_for(
    machine: MachineSpec,
    *,
    edram: EdramMode | bool | None,
    mcdram: McdramMode | None,
    knobs: ModelKnobs,
) -> list[_Level]:
    levels = [
        _Level(l.name, float(l.capacity or 0), l.bandwidth, l.latency)
        for l in machine.caches
    ]
    opm = machine.opm
    if opm is not None and opm.kind == "victim-cache":
        on = True if edram is None else (
            edram.enabled if isinstance(edram, EdramMode) else bool(edram)
        )
        if on:
            levels.append(
                _Level(opm.name, float(opm.capacity or 0), opm.bandwidth, opm.latency)
            )
    elif opm is not None and mcdram is not None and mcdram.uses_mcdram:
        config = McdramConfig.from_spec(opm, mcdram)
        if config.uses_flat:
            levels.append(
                _Level(
                    f"{opm.name}-flat",
                    float(config.flat_bytes),
                    opm.bandwidth,
                    opm.latency,
                    flat_share_cap=float(config.flat_bytes),
                )
            )
        if config.uses_cache:
            levels.append(
                _Level(
                    f"{opm.name}-cache",
                    config.cache_bytes * knobs.direct_map_capacity_factor,
                    opm.bandwidth * knobs.cache_mode_bandwidth_factor,
                    opm.latency,
                )
            )
    levels.append(
        _Level(machine.dram.name, float("inf"), machine.dram.bandwidth, machine.dram.latency)
    )
    return levels


def _throughput(
    machine: MachineSpec,
    levels: list[_Level],
    size: float,
    w: SteppingWorkload,
    knobs: ModelKnobs,
) -> float:
    """Stepping-model throughput at one problem size (GFlop/s)."""
    llc = float(machine.llc.capacity or 0)
    ramp = 1.0
    if knobs.valley_enabled and llc > 0:
        ramp = min(1.0, max(knobs.valley_floor, size / (knobs.valley_span * llc)))
    remaining = 1.0
    cum = 0.0
    time_per_byte = 0.0  # max over channels, built incrementally
    straddling = _is_straddling(levels, size)
    bw_factor = knobs.flat_straddle_bandwidth_factor if straddling else 1.0
    for lvl in levels:
        if remaining <= 0:
            break
        served_frac = 0.0
        if lvl.flat_share_cap > 0:
            share = min(1.0, lvl.flat_share_cap / size)
            served_frac = remaining * share
            port = served_frac
        else:
            cum += lvl.capacity
            if size <= cum:
                served_frac = remaining * w.hit_at_fit
            port = remaining
        on_package = lvl.name != machine.dram.name
        bw = lvl.bandwidth * (1.0 if on_package and lvl.flat_share_cap == 0 else bw_factor)
        t_bw = port / (bw * 1e9)
        t_lat = (served_frac / 64.0) * lvl.latency * 1e-9 / (w.mlp * ramp)
        time_per_byte = max(time_per_byte, t_bw, t_lat)
        remaining -= served_frac
    compute_time = 1.0 / (machine.dp_peak_gflops * 1e9) * w.ai
    return w.ai / (max(time_per_byte, compute_time) * 1e9)


def _is_straddling(levels: list[_Level], size: float) -> bool:
    flat = [l for l in levels if l.flat_share_cap > 0]
    has_cache_half = any("cache" in l.name for l in levels if l.flat_share_cap == 0 and "MCDRAM" in l.name)
    return bool(flat) and not has_cache_half and size > flat[0].flat_share_cap


def hardware_whatif(
    machine: MachineSpec,
    *,
    capacity_x: float = 1.0,
    bandwidth_x: float = 1.0,
    workload: SteppingWorkload = SteppingWorkload(),
    sizes: Sequence[float] | None = None,
) -> SteppingCurve:
    """Figure 30: scale the OPM's capacity/bandwidth and re-derive the curve.

    Increasing capacity *shifts* the OPM peak right; increasing bandwidth
    *amplifies* it.
    """
    if machine.opm is None:
        raise ValueError("machine has no OPM to scale")
    scaled = machine.opm.scaled(capacity_x=capacity_x, bandwidth_x=bandwidth_x)
    opm = dataclasses.replace(
        machine.opm, capacity=scaled.capacity, bandwidth=scaled.bandwidth
    )
    tweaked = machine.with_opm(opm)
    return curve(
        tweaked,
        workload=workload,
        sizes=sizes,
        edram=True,
        label=f"OPM cap x{capacity_x:g}, bw x{bandwidth_x:g}",
    )
