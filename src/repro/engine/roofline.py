"""Roofline model (Williams et al.) — paper Figure 5.

Attainable GFlop/s = min(peak, AI x bandwidth), drawn once per memory
level so the OPM's bandwidth ceiling appears as an extra diagonal between
the DRAM diagonal and the compute roof. The kernels are positioned at the
Table 2 arithmetic intensities.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.kernels.characteristics import ai_spectrum
from repro.platforms.spec import MachineSpec


@dataclasses.dataclass(frozen=True)
class RooflineCeiling:
    """One bandwidth diagonal or compute roof."""

    name: str
    bandwidth: float | None  # GB/s; None for a flat compute roof
    peak_gflops: float

    def attainable(self, ai: float) -> float:
        """GFlop/s attainable at arithmetic intensity ``ai`` (flops/byte)."""
        if self.bandwidth is None:
            return self.peak_gflops
        return min(self.peak_gflops, ai * self.bandwidth)


@dataclasses.dataclass(frozen=True)
class Roofline:
    """A platform's roofline: compute roofs plus memory diagonals."""

    machine: str
    roofs: tuple[RooflineCeiling, ...]

    def attainable(self, ai: float, *, ceiling: str | None = None) -> float:
        """Best attainable GFlop/s at ``ai`` under one ceiling (or the
        tightest DRAM-level ceiling when unnamed)."""
        if ceiling is not None:
            for roof in self.roofs:
                if roof.name == ceiling:
                    return roof.attainable(ai)
            raise KeyError(ceiling)
        return min(roof.attainable(ai) for roof in self.roofs)

    def ridge_point(self, ceiling: str) -> float:
        """AI where the named bandwidth diagonal meets the DP roof."""
        for roof in self.roofs:
            if roof.name == ceiling and roof.bandwidth:
                return roof.peak_gflops / roof.bandwidth
        raise KeyError(ceiling)

    def series(
        self, ai_grid: np.ndarray | None = None
    ) -> dict[str, np.ndarray]:
        """Sampled curves for plotting: name -> GFlop/s over the AI grid."""
        if ai_grid is None:
            ai_grid = np.logspace(-6, 9, 256, base=2.0)
        out = {"ai": ai_grid}
        for roof in self.roofs:
            out[roof.name] = np.array([roof.attainable(a) for a in ai_grid])
        return out


def build(machine: MachineSpec, *, include_opm: bool = True, include_sp: bool = True) -> Roofline:
    """Roofline for a machine: DP (and SP) roofs, DRAM and OPM diagonals."""
    roofs: list[RooflineCeiling] = [
        RooflineCeiling("DP peak", None, machine.dp_peak_gflops)
    ]
    if include_sp:
        roofs.append(RooflineCeiling("SP peak", None, machine.sp_peak_gflops))
    roofs.append(
        RooflineCeiling(
            machine.dram.name, machine.dram.bandwidth, machine.dp_peak_gflops
        )
    )
    if include_opm and machine.opm is not None:
        roofs.append(
            RooflineCeiling(
                machine.opm.name, machine.opm.bandwidth, machine.dp_peak_gflops
            )
        )
    return Roofline(machine=machine.name, roofs=tuple(roofs))


def kernel_positions(
    n: int = 1024, nnz: int = 1024, m: int = 32
) -> dict[str, float]:
    """Kernel -> AI markers for the Figure 5 x-axis (Table 2 formulas)."""
    return ai_spectrum(n, nnz, m)
