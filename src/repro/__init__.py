"""repro — reproduction of the SC '17 on-package-memory characterization study.

This package rebuilds, in pure Python, the full experimental apparatus of
*"Exploring and Analyzing the Real Impact of Modern On-Package Memory on HPC
Scientific Kernels"* (Li et al., SC 2017): platform models for the
eDRAM-equipped Broadwell and MCDRAM-equipped Knights Landing machines, a
memory-hierarchy simulator, functional implementations of the eight
scientific kernels, an analytic performance/power engine built around the
paper's Stepping model, and one experiment driver per figure and table.

Quickstart::

    from repro import platforms
    from repro.kernels import gemm
    from repro.engine import exectime

    machine = platforms.broadwell(edram=True)
    profile = gemm.GemmKernel(order=4096, tile=256).profile()
    result = exectime.estimate(profile, machine)
    print(result.gflops)

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro import platforms  # noqa: F401
from repro._version import __version__  # noqa: F401

__all__ = ["__version__", "platforms"]
