"""OPM partitioning policies for multi-programmed systems.

Paper Section 8, future-work question (1): "under a multi-user/
multi-application scenario, how would the OS distribute the OPM resources
among applications based on fairness, efficiency and consistency?" This
module provides the policy layer: given N co-running applications (as
workload profiles) and an OPM of capacity C, decide each application's
slice.

Policies:

* :class:`EqualShare` — C/N each; the fairness baseline.
* :class:`ProportionalShare` — slices proportional to footprint (a
  demand-driven heuristic a first-touch allocator approximates).
* :class:`UtilityMaxShare` — greedy marginal-utility allocation using the
  performance engine itself as the utility oracle: repeatedly give the
  next capacity grain to the application whose modelled throughput gains
  most. Maximizes system throughput, can starve low-utility tenants.
* :class:`FreeForAll` — no partitioning: everyone contends for the whole
  OPM, modelled as per-app effective capacity scaled by its share of the
  combined footprint (LRU-style interleaving).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Sequence

from repro.engine.calibration import DEFAULT_KNOBS, ModelKnobs
from repro.kernels.profile import WorkloadProfile
from repro.platforms.spec import MachineSpec

#: Allocation granularity of the utility-driven policy (bytes).
GRAIN = 8 << 20  # 8 MiB


@dataclasses.dataclass(frozen=True)
class Partition:
    """One policy outcome: per-application OPM slices in bytes."""

    policy: str
    slices: tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.slices)

    def __post_init__(self) -> None:
        if any(s < 0 for s in self.slices):
            raise ValueError("slices must be non-negative")


class PartitionPolicy(abc.ABC):
    """Strategy deciding per-application OPM capacity slices."""

    name: str = "abstract"

    @abc.abstractmethod
    def partition(
        self,
        profiles: Sequence[WorkloadProfile],
        capacity: int,
        machine: MachineSpec,
    ) -> Partition:
        """Split ``capacity`` bytes of OPM among ``profiles``."""

    def _wrap(self, slices: Sequence[int]) -> Partition:
        return Partition(policy=self.name, slices=tuple(int(s) for s in slices))


class EqualShare(PartitionPolicy):
    """C/N each, remainder to the first applications."""

    name = "equal"

    def partition(self, profiles, capacity, machine):
        n = len(profiles)
        if n == 0:
            return self._wrap(())
        base = capacity // n
        slices = [base] * n
        for i in range(capacity - base * n):
            slices[i] += 1
        return self._wrap(slices)


class ProportionalShare(PartitionPolicy):
    """Slices proportional to each application's footprint."""

    name = "proportional"

    def partition(self, profiles, capacity, machine):
        total_fp = sum(p.footprint_bytes for p in profiles)
        if total_fp == 0:
            return EqualShare().partition(profiles, capacity, machine)
        slices = [
            capacity * p.footprint_bytes // total_fp for p in profiles
        ]
        # Hand out rounding remainder deterministically.
        remainder = capacity - sum(slices)
        for i in range(remainder):
            slices[i % len(slices)] += 1
        return self._wrap(slices)


class UtilityMaxShare(PartitionPolicy):
    """Greedy marginal-utility allocation (system-throughput maximizing).

    Uses the analytic engine as the oracle: the throughput of application
    i with OPM slice s is evaluated on a machine whose OPM capacity is s.
    Each 8 MiB grain goes to the application with the highest marginal
    GFlop/s gain; allocation stops once no application gains anything —
    capacity nobody can use stays unassigned rather than being handed out
    by tie-breaking. O(capacity/GRAIN * N) engine evaluations, memoized.
    """

    name = "utility-max"

    #: Marginal gains below this (GFlop/s) count as zero.
    EPSILON = 1e-9

    def __init__(self, knobs: ModelKnobs = DEFAULT_KNOBS, grain: int = GRAIN) -> None:
        self.knobs = knobs
        self.grain = grain

    def partition(self, profiles, capacity, machine):
        from repro.os.multiprog import throughput_with_slice

        n = len(profiles)
        if n == 0:
            return self._wrap(())
        slices = [0] * n
        cache: dict[tuple[int, int], float] = {}

        def value(i: int, s: int) -> float:
            key = (i, s)
            if key not in cache:
                cache[key] = throughput_with_slice(
                    profiles[i], machine, s, knobs=self.knobs
                )
            return cache[key]

        grains = capacity // self.grain
        for _ in range(grains):
            best_i, best_gain = 0, -1.0
            for i in range(n):
                gain = value(i, slices[i] + self.grain) - value(i, slices[i])
                if gain > best_gain:
                    best_i, best_gain = i, gain
            if best_gain <= self.EPSILON:
                break  # nobody benefits: leave the rest unallocated
            slices[best_i] += self.grain
        return self._wrap(slices)


class FreeForAll(PartitionPolicy):
    """No partitioning: model contention as footprint-proportional shares.

    Under LRU interleaving of N working sets, each application's resident
    share approaches its fraction of the combined footprint — i.e. the
    same slices as :class:`ProportionalShare` but *emergent* rather than
    enforced, with an extra contention derating applied by the co-run
    simulator (interleaved access streams defeat spatial locality).
    """

    name = "free-for-all"

    #: Effective-capacity derating from inter-application conflict misses.
    contention_factor = 0.75

    def partition(self, profiles, capacity, machine):
        base = ProportionalShare().partition(profiles, capacity, machine)
        return self._wrap(
            [int(s * self.contention_factor) for s in base.slices]
        )


ALL_POLICIES: tuple[type[PartitionPolicy], ...] = (
    EqualShare,
    ProportionalShare,
    UtilityMaxShare,
    FreeForAll,
)
