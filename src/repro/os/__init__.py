"""OS-level OPM management (the paper's Section 8 future-work scope).

* :mod:`repro.os.partition` — OPM partitioning policies for
  multi-programmed systems (fairness / efficiency / consistency).
* :mod:`repro.os.multiprog` — co-run simulation + system metrics.
* :mod:`repro.os.pagetable` — page-table-in-OPM cost model.
"""

from repro.os.multiprog import (
    CorunResult,
    TenantResult,
    compare_policies,
    simulate_corun,
    throughput_with_slice,
)
from repro.os.pagetable import PLACEMENTS, PagetableStudy, WalkModel, study
from repro.os.virtualization import (
    GuestVM,
    VirtualizationResult,
    VmResult,
    simulate_virtualized,
)
from repro.os.partition import (
    ALL_POLICIES,
    EqualShare,
    FreeForAll,
    Partition,
    PartitionPolicy,
    ProportionalShare,
    UtilityMaxShare,
)

__all__ = [
    "ALL_POLICIES",
    "CorunResult",
    "EqualShare",
    "FreeForAll",
    "GuestVM",
    "PLACEMENTS",
    "PagetableStudy",
    "Partition",
    "PartitionPolicy",
    "ProportionalShare",
    "TenantResult",
    "UtilityMaxShare",
    "VirtualizationResult",
    "VmResult",
    "WalkModel",
    "compare_policies",
    "simulate_corun",
    "simulate_virtualized",
    "study",
    "throughput_with_slice",
]
