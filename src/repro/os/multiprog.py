"""Multi-programmed co-run simulation over a shared OPM.

Evaluates N applications sharing one OPM-equipped machine under a
partitioning policy (:mod:`repro.os.partition`): each application runs on
an *effective machine* whose OPM capacity is its slice and whose OPM/DRAM
bandwidths are divided by the co-runner count (time-multiplexed memory
system), then the usual analytic engine produces its throughput. System
metrics follow the paper's fairness/efficiency framing:

* **system throughput** — sum of GFlop/s.
* **weighted speedup** — mean of per-app (co-run / solo) ratios, the
  standard multiprogramming metric.
* **Jain fairness index** — of the per-app speedup ratios, 1 = perfectly
  fair, 1/N = one app monopolizes.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.engine.calibration import DEFAULT_KNOBS, ModelKnobs
from repro.engine.exectime import estimate
from repro.kernels.profile import WorkloadProfile
from repro.platforms.spec import MachineSpec
from repro.platforms.tuning import McdramMode
from repro.os.partition import Partition, PartitionPolicy


def _machine_with_slice(
    machine: MachineSpec, slice_bytes: int, bandwidth_divisor: float
) -> MachineSpec:
    """Effective machine for one tenant: its OPM slice, shared bandwidth."""
    divisor = max(1.0, bandwidth_divisor)
    opm = machine.opm
    if opm is not None:
        if slice_bytes <= 0:
            opm = None
        else:
            opm = dataclasses.replace(
                opm,
                capacity=max(opm.line, int(slice_bytes)),
                bandwidth=opm.bandwidth / divisor,
            )
    dram = dataclasses.replace(
        machine.dram, bandwidth=machine.dram.bandwidth / divisor
    )
    return dataclasses.replace(machine, opm=opm, dram=dram)


def _opm_mode_kwargs(machine: MachineSpec) -> dict:
    """Engine keyword selecting the 'OPM as cache' configuration."""
    if machine.opm is None:
        return {"edram": False}
    if machine.opm.kind == "victim-cache":
        return {"edram": True}
    return {"mcdram": McdramMode.CACHE}


def throughput_with_slice(
    profile: WorkloadProfile,
    machine: MachineSpec,
    slice_bytes: int,
    *,
    bandwidth_divisor: float = 1.0,
    knobs: ModelKnobs = DEFAULT_KNOBS,
) -> float:
    """GFlop/s of one application given an OPM slice (utility oracle)."""
    eff = _machine_with_slice(machine, slice_bytes, bandwidth_divisor)
    return estimate(profile, eff, knobs=knobs, **_opm_mode_kwargs(eff)).gflops


@dataclasses.dataclass(frozen=True)
class TenantResult:
    """One application's co-run outcome."""

    name: str
    slice_bytes: int
    solo_gflops: float
    corun_gflops: float

    @property
    def speedup_vs_solo(self) -> float:
        return self.corun_gflops / self.solo_gflops if self.solo_gflops else 0.0


@dataclasses.dataclass(frozen=True)
class CorunResult:
    """Policy-level outcome of one co-run scenario."""

    policy: str
    tenants: tuple[TenantResult, ...]

    @property
    def system_throughput(self) -> float:
        return sum(t.corun_gflops for t in self.tenants)

    @property
    def weighted_speedup(self) -> float:
        if not self.tenants:
            return 0.0
        return sum(t.speedup_vs_solo for t in self.tenants) / len(self.tenants)

    @property
    def jain_fairness(self) -> float:
        """Jain index over per-tenant speedups (1 = fair, 1/N = unfair)."""
        xs = [t.speedup_vs_solo for t in self.tenants]
        if not xs or all(x == 0 for x in xs):
            return 0.0
        return sum(xs) ** 2 / (len(xs) * sum(x * x for x in xs))

    @property
    def min_speedup(self) -> float:
        """Worst-tenant consistency (the paper's 'consistency' axis)."""
        return min((t.speedup_vs_solo for t in self.tenants), default=0.0)


def simulate_corun(
    named_profiles: Sequence[tuple[str, WorkloadProfile]],
    machine: MachineSpec,
    policy: PartitionPolicy,
    *,
    knobs: ModelKnobs = DEFAULT_KNOBS,
) -> CorunResult:
    """Run one policy on one scenario."""
    if machine.opm is None or machine.opm.capacity is None:
        raise ValueError("co-run simulation needs an OPM-equipped machine")
    profiles = [p for _, p in named_profiles]
    partition: Partition = policy.partition(
        profiles, machine.opm.capacity, machine
    )
    n = len(profiles)
    tenants = []
    for (name, profile), slice_bytes in zip(named_profiles, partition.slices):
        solo = throughput_with_slice(
            profile, machine, machine.opm.capacity, knobs=knobs
        )
        corun = throughput_with_slice(
            profile,
            machine,
            slice_bytes,
            bandwidth_divisor=float(n),
            knobs=knobs,
        )
        tenants.append(
            TenantResult(
                name=name,
                slice_bytes=slice_bytes,
                solo_gflops=solo,
                corun_gflops=corun,
            )
        )
    return CorunResult(policy=partition.policy, tenants=tuple(tenants))


def compare_policies(
    named_profiles: Sequence[tuple[str, WorkloadProfile]],
    machine: MachineSpec,
    policies: Sequence[PartitionPolicy],
    *,
    knobs: ModelKnobs = DEFAULT_KNOBS,
) -> list[CorunResult]:
    """Evaluate several policies on the same scenario."""
    return [
        simulate_corun(named_profiles, machine, policy, knobs=knobs)
        for policy in policies
    ]
