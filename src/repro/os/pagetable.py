"""Page-table buffering in OPM — paper Section 8, future-work question (3).

"Would OPM be useful for certain OS functionalities, e.g. buffering page
table?" A TLB miss on x86-64 costs a 4-level radix walk; each level is a
memory access served wherever that page-table node resides. This module
models the effective walk cost for a workload with a given TLB miss rate
under three placements of the page-table working set:

* ``dram`` — walks go to DRAM (the default when the PT working set blows
  out the caches, typical for huge irregular footprints).
* ``opm`` — the OS pins page-table pages into the OPM.
* ``cached`` — upper levels hit on-chip (small-footprint baseline).

and reports the induced slowdown on a kernel's runtime. The interesting
result mirrors the main study: an OPM with *latency below DRAM* (Broadwell
eDRAM) accelerates walks, while a memory-side OPM with DRAM-class latency
(MCDRAM) does not — page-table buffering is only worthwhile on the former.
"""

from __future__ import annotations

import dataclasses

from repro.engine.exectime import RunResult
from repro.platforms.spec import LINE_BYTES, MachineSpec

#: Radix levels of an x86-64 walk (PML4 -> PDPT -> PD -> PT).
WALK_LEVELS = 4

#: Fraction of walk levels that hit the paging-structure caches even in
#: the worst case (upper levels are few pages and stay cached).
UPPER_LEVEL_HIT = 0.5

PLACEMENTS = ("cached", "opm", "dram")


@dataclasses.dataclass(frozen=True)
class WalkModel:
    """TLB-miss cost model for one machine."""

    machine: MachineSpec

    def _level_latency(self, placement: str) -> float:
        """Latency (ns) of one lower-level page-table access."""
        if placement == "cached":
            return self.machine.llc.latency
        if placement == "opm":
            if self.machine.opm is None:
                raise ValueError("machine has no OPM to pin page tables in")
            return self.machine.opm.latency
        if placement == "dram":
            return self.machine.dram.latency
        raise ValueError(f"unknown placement {placement!r}")

    def walk_cost_ns(self, placement: str) -> float:
        """Mean cost of one full TLB miss walk."""
        upper = WALK_LEVELS * UPPER_LEVEL_HIT * self.machine.llc.latency
        lower = WALK_LEVELS * (1.0 - UPPER_LEVEL_HIT) * self._level_latency(
            placement
        )
        return upper + lower

    def walk_overhead_seconds(
        self,
        demand_bytes: float,
        tlb_miss_per_access: float,
        placement: str,
        *,
        walk_mlp: float | None = None,
    ) -> float:
        """Total walk time for a phase issuing ``demand_bytes`` of traffic.

        ``tlb_miss_per_access`` is misses per cache-line access (0.001 =
        one miss per thousand lines — a friendly sequential workload;
        irregular gather codes reach 0.05+). Walks overlap with ``walk_mlp``
        outstanding.
        """
        if not 0.0 <= tlb_miss_per_access <= 1.0:
            raise ValueError("tlb_miss_per_access must be in [0, 1]")
        if walk_mlp is None:
            # Every core walks independently, two walks in flight each.
            walk_mlp = 2.0 * self.machine.cores
        accesses = demand_bytes / LINE_BYTES
        walks = accesses * tlb_miss_per_access
        return walks * self.walk_cost_ns(placement) * 1e-9 / max(1.0, walk_mlp)


@dataclasses.dataclass(frozen=True)
class PagetableStudy:
    """Slowdown of one kernel run under each page-table placement."""

    kernel: str
    base_seconds: float
    overhead_seconds: dict[str, float]

    def slowdown(self, placement: str) -> float:
        return (
            self.base_seconds + self.overhead_seconds[placement]
        ) / self.base_seconds

    def opm_benefit(self) -> float:
        """Speedup of OPM-pinned over DRAM-resident page tables."""
        return self.slowdown("dram") / self.slowdown("opm")


def study(
    result: RunResult,
    machine: MachineSpec,
    *,
    tlb_miss_per_access: float,
    demand_bytes: float,
) -> PagetableStudy:
    """Evaluate all placements for one completed kernel run."""
    model = WalkModel(machine)
    overhead = {
        placement: model.walk_overhead_seconds(
            demand_bytes, tlb_miss_per_access, placement
        )
        for placement in PLACEMENTS
    }
    return PagetableStudy(
        kernel=result.kernel,
        base_seconds=result.seconds,
        overhead_seconds=overhead,
    )
