"""Two-level OPM management for virtualized hosts.

Paper Section 8, future-work question (2): "in a virtual environment,
how would the host OS manage OPM across different guest OS?" We model
the natural two-level scheme: the *host* partitions the physical OPM
among virtual machines, then each *guest* partitions its grant among its
own applications — both levels drawing from the same policy vocabulary
as :mod:`repro.os.partition`.

The interesting failure mode this exposes: a fair host + fair guests is
*not* end-to-end fair. A VM with many tenants dilutes its grant, so
per-application outcomes depend on co-tenancy, and host-level
utility-maximization can silently starve an entire guest.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.engine.calibration import DEFAULT_KNOBS, ModelKnobs
from repro.kernels.profile import WorkloadProfile
from repro.os.multiprog import TenantResult, throughput_with_slice
from repro.os.partition import PartitionPolicy
from repro.platforms.spec import MachineSpec


@dataclasses.dataclass(frozen=True)
class GuestVM:
    """One guest OS with its applications."""

    name: str
    tenants: tuple[tuple[str, WorkloadProfile], ...]

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError(f"VM {self.name!r} needs at least one tenant")

    @property
    def aggregate_footprint(self) -> int:
        return sum(p.footprint_bytes for _, p in self.tenants)


@dataclasses.dataclass(frozen=True)
class VmResult:
    name: str
    grant_bytes: int
    tenants: tuple[TenantResult, ...]

    @property
    def throughput(self) -> float:
        return sum(t.corun_gflops for t in self.tenants)

    @property
    def min_tenant_speedup(self) -> float:
        return min((t.speedup_vs_solo for t in self.tenants), default=0.0)


@dataclasses.dataclass(frozen=True)
class VirtualizationResult:
    host_policy: str
    guest_policy: str
    vms: tuple[VmResult, ...]

    @property
    def system_throughput(self) -> float:
        return sum(vm.throughput for vm in self.vms)

    def all_tenants(self) -> list[TenantResult]:
        return [t for vm in self.vms for t in vm.tenants]

    @property
    def jain_fairness(self) -> float:
        """End-to-end Jain index over all applications in all guests."""
        xs = [t.speedup_vs_solo for t in self.all_tenants()]
        if not xs or all(x == 0 for x in xs):
            return 0.0
        return sum(xs) ** 2 / (len(xs) * sum(x * x for x in xs))

    def starved_vms(self) -> list[str]:
        return [vm.name for vm in self.vms if vm.grant_bytes == 0]


def simulate_virtualized(
    vms: Sequence[GuestVM],
    machine: MachineSpec,
    host_policy: PartitionPolicy,
    guest_policy: PartitionPolicy,
    *,
    knobs: ModelKnobs = DEFAULT_KNOBS,
) -> VirtualizationResult:
    """Two-level OPM partitioning: host across VMs, guest within each."""
    if machine.opm is None or machine.opm.capacity is None:
        raise ValueError("virtualized OPM management needs an OPM machine")
    if not vms:
        raise ValueError("at least one VM required")
    # Host level: partition using each VM's aggregate footprint. For
    # utility-driven host policies the per-VM "profile" is its heaviest
    # tenant (a pragmatic proxy: marginal utility of the VM's hot app).
    host_profiles = [
        max((p for _, p in vm.tenants), key=lambda p: p.footprint_bytes)
        for vm in vms
    ]
    # Footprint-proportional host policies should see aggregate demand.
    host_inputs = [
        dataclasses.replace(
            profile,
            arrays={"aggregate": vm.aggregate_footprint},
        )
        for vm, profile in zip(vms, host_profiles)
    ]
    host_partition = host_policy.partition(
        host_inputs, machine.opm.capacity, machine
    )
    total_apps = sum(len(vm.tenants) for vm in vms)
    vm_results = []
    for vm, grant in zip(vms, host_partition.slices):
        profiles = [p for _, p in vm.tenants]
        guest_partition = guest_policy.partition(profiles, grant, machine)
        tenants = []
        for (tname, profile), slice_bytes in zip(
            vm.tenants, guest_partition.slices
        ):
            solo = throughput_with_slice(
                profile, machine, machine.opm.capacity, knobs=knobs
            )
            corun = throughput_with_slice(
                profile,
                machine,
                slice_bytes,
                bandwidth_divisor=float(total_apps),
                knobs=knobs,
            )
            tenants.append(
                TenantResult(
                    name=f"{vm.name}/{tname}",
                    slice_bytes=slice_bytes,
                    solo_gflops=solo,
                    corun_gflops=corun,
                )
            )
        vm_results.append(
            VmResult(name=vm.name, grant_bytes=grant, tenants=tuple(tenants))
        )
    return VirtualizationResult(
        host_policy=host_partition.policy,
        guest_policy=guest_policy.name,
        vms=tuple(vm_results),
    )
