"""Content fingerprints for experiment tasks.

A *task key* identifies one ``(experiment, sweep mode)`` execution against
the exact code that would produce it: the experiment id, the quick/full
flag, the package version, and a SHA-256 digest over the experiment
module's source plus the transitive closure of its in-package imports.
Editing any module an experiment can reach — a kernel, the stepping
engine, a platform table — changes the digest and therefore the key, so
the result cache can never serve numbers computed by stale code.

The import closure is discovered statically (``ast`` scan for ``import``
/ ``from ... import`` statements) rather than by executing modules, so
fingerprinting is side-effect free and works on modules that have not
been imported yet.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
import threading
from typing import Iterable

#: Digest memo: (module_name, root) -> hex digest, and per-module memo:
#: (module_name, root) -> (source bytes, imported names) | None. Sources
#: are assumed immutable for the life of the process — 40 experiment
#: closures share ~100 modules, so caching the read+parse per module
#: (not just the final digest) is what keeps warm batch startup cheap.
#: Tests that rewrite modules on disk call :func:`clear_cache`.
_DIGEST_CACHE: dict[tuple[str, str], str] = {}
_MODULE_CACHE: dict[tuple[str, str], tuple[bytes, tuple[str, ...]] | None] = {}
_LOCK = threading.Lock()


def clear_cache() -> None:
    """Drop memoized digests (needed after editing sources in-process)."""
    with _LOCK:
        _DIGEST_CACHE.clear()
        _MODULE_CACHE.clear()


def _find_source(module_name: str) -> tuple[str, bytes] | None:
    """(origin path, source bytes) for a pure-Python module, else None."""
    try:
        spec = importlib.util.find_spec(module_name)
    except Exception:  # not importable / parent not a package
        return None
    if spec is None or spec.origin is None or not spec.origin.endswith(".py"):
        return None
    try:
        with open(spec.origin, "rb") as fh:
            return spec.origin, fh.read()
    except OSError:
        return None


def _imported_names(
    source: bytes, module_name: str, root: str
) -> Iterable[str]:
    """Module names under ``root`` that ``source`` may import.

    ``from pkg import x`` yields both ``pkg`` and ``pkg.x`` — whichever of
    the two is not actually a module is discarded by the closure walk.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    prefix = root + "."
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == root or alias.name.startswith(prefix):
                    found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:  # resolve "from .x import y" against our package
                parts = module_name.split(".")
                anchor = parts[: len(parts) - node.level]
                base = ".".join(anchor + ([base] if base else []))
            if base == root or base.startswith(prefix):
                found.add(base)
                for alias in node.names:
                    found.add(f"{base}.{alias.name}")
    return sorted(found)


def _module_info(
    name: str, root: str
) -> tuple[bytes, tuple[str, ...]] | None:
    """Memoized (source bytes, in-package imports) for one module."""
    key = (name, root)
    with _LOCK:
        if key in _MODULE_CACHE:
            return _MODULE_CACHE[key]
    found = _find_source(name)
    info = None
    if found is not None:
        _origin, source = found
        info = (source, tuple(_imported_names(source, name, root)))
    with _LOCK:
        _MODULE_CACHE[key] = info
    return info


def closure_sources(
    module_name: str, root: str | None = None
) -> dict[str, bytes]:
    """Module name -> source bytes for the in-package import closure."""
    root = root or module_name.split(".", 1)[0]
    sources: dict[str, bytes] = {}
    visited: set[str] = set()
    stack = [module_name]
    while stack:
        name = stack.pop()
        if name in visited:
            continue
        visited.add(name)
        info = _module_info(name, root)
        if info is None:
            continue
        source, imports = info
        sources[name] = source
        for imported in imports:
            if imported not in visited:
                stack.append(imported)
    return sources


def source_digest(module_name: str, root: str | None = None) -> str:
    """SHA-256 over the module and its in-package import closure."""
    root = root or module_name.split(".", 1)[0]
    key = (module_name, root)
    with _LOCK:
        cached = _DIGEST_CACHE.get(key)
    if cached is not None:
        return cached
    sha = hashlib.sha256()
    for name, source in sorted(closure_sources(module_name, root).items()):
        sha.update(name.encode())
        sha.update(b"\x00")
        sha.update(source)
        sha.update(b"\x00")
    digest = sha.hexdigest()
    with _LOCK:
        _DIGEST_CACHE[key] = digest
    return digest


def task_key(
    experiment_id: str,
    module_name: str,
    *,
    quick: bool,
    version: str | None = None,
) -> str:
    """Content-addressed cache key for one experiment invocation."""
    if version is None:
        from repro._version import __version__ as version
    sha = hashlib.sha256()
    sha.update(
        f"{experiment_id}\x00{int(quick)}\x00{version}\x00".encode()
    )
    sha.update(source_digest(module_name).encode())
    return sha.hexdigest()
