"""Execution runtime: parallel scheduling, result caching, resumability.

The paper's artifact is a sweep machine — 30 figures, 4 tables, and
968-matrix sparse sweeps per configuration. This package is the layer
that makes re-running it cheap:

* **Fingerprints** (:mod:`repro.runtime.fingerprint`) — content hashes
  over an experiment's id, sweep mode, package version, and the source
  of every in-package module it can reach.
* **Cache** (:mod:`repro.runtime.cache`) — content-addressed JSON store
  of serialized results under ``~/.cache/opm-repro`` (or
  ``$OPM_REPRO_CACHE_DIR``); unchanged experiments replay in
  milliseconds.
* **Journal** (:mod:`repro.runtime.journal`) — append-only JSONL task
  log; an interrupted batch resumes with ``--resume <journal>``.
* **Scheduler** (:mod:`repro.runtime.scheduler`) — fans tasks across a
  process pool (``--jobs N``) with bounded retry, exponential backoff,
  and deadline-accurate per-task timeouts (hung workers are reaped by
  recycling the pool), emitting spans and counters through
  :mod:`repro.telemetry`.
* **Faults** (:mod:`repro.runtime.faults`) — deterministic hang / crash
  / delay / flaky-once injection (``OPM_REPRO_FAULTS``) so the
  scheduler's unhappy paths are testable without real wall-clock hangs.
"""

from repro.runtime.cache import (
    CacheStats,
    ResultCache,
    SharedResultCache,
    default_cache_dir,
    file_lock,
)
from repro.runtime.faults import FaultInjected, FaultPlan
from repro.runtime.fingerprint import source_digest, task_key
from repro.runtime.journal import RunJournal, completed_tasks, final_statuses
from repro.runtime.scheduler import BatchSummary, TaskOutcome, run_batch

__all__ = [
    "BatchSummary",
    "CacheStats",
    "FaultInjected",
    "FaultPlan",
    "ResultCache",
    "RunJournal",
    "SharedResultCache",
    "TaskOutcome",
    "completed_tasks",
    "default_cache_dir",
    "file_lock",
    "final_statuses",
    "run_batch",
    "source_digest",
    "task_key",
]
