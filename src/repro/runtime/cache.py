"""Content-addressed result cache.

Serialized :class:`~repro.experiments.results.ExperimentResult` payloads
are stored one JSON file per task key under
``<cache-dir>/objects/<key[:2]>/<key>.json``; the key (see
:mod:`repro.runtime.fingerprint`) covers the experiment id, sweep mode,
package version, and the source digest of everything the experiment can
execute, so a lookup either misses or returns exactly what a fresh run
would print. The default location is ``~/.cache/opm-repro``, overridable
via ``--cache-dir`` or the ``OPM_REPRO_CACHE_DIR`` environment variable.

Alongside the objects the cache keeps ``stats.json`` with lifetime and
last-run hit/miss counts; ``opm-repro cache stats`` renders it and CI
asserts on it. Writes are atomic (tempfile + ``os.replace``), so
concurrent batches at worst redo one put.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.experiments.results import ExperimentResult

#: Environment variable overriding the default cache directory.
ENV_CACHE_DIR = "OPM_REPRO_CACHE_DIR"

#: Bump when the payload layout changes; older entries read as misses.
SCHEMA_VERSION = 1


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "opm-repro"


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """A snapshot of the on-disk cache state."""

    cache_dir: Path
    entries: int
    total_bytes: int
    last_run_hits: int
    last_run_misses: int
    lifetime_hits: int
    lifetime_misses: int

    @property
    def last_run_hit_rate(self) -> float:
        looked_up = self.last_run_hits + self.last_run_misses
        return self.last_run_hits / looked_up if looked_up else 0.0

    def render(self) -> str:
        return "\n".join(
            [
                f"cache dir: {self.cache_dir}",
                f"entries: {self.entries} "
                f"({self.total_bytes / 2**20:.2f} MiB)",
                f"last run: {self.last_run_hits} hits, "
                f"{self.last_run_misses} misses "
                f"(hit rate {self.last_run_hit_rate:.1%})",
                f"lifetime: {self.lifetime_hits} hits, "
                f"{self.lifetime_misses} misses",
            ]
        )


class ResultCache:
    """Filesystem-backed, content-addressed store of experiment results."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- object store --------------------------------------------------------

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str) -> ExperimentResult | None:
        """The cached result for ``key``, or None on miss/corruption."""
        path = self._object_path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            return None
        try:
            return ExperimentResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(
        self,
        key: str,
        result: ExperimentResult,
        *,
        quick: bool,
        wall_time_s: float | None = None,
    ) -> Path:
        """Store ``result`` under ``key`` atomically; returns the path."""
        payload: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "experiment_id": result.experiment_id,
            "quick": quick,
            "created_unix_s": time.time(),
            "wall_time_s": wall_time_s,
            "result": result.as_dict(),
        }
        path = self._object_path(key)
        _atomic_write_json(path, payload)
        return path

    def entries(self) -> list[Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(objects.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached object and the stats file; returns count."""
        entries = self.entries()
        for path in entries:
            try:
                path.unlink()
            except OSError:
                pass
        stats = self.root / "stats.json"
        try:
            stats.unlink()
        except OSError:
            pass
        return len(entries)

    # -- hit/miss accounting -------------------------------------------------

    def record_run(self, *, hits: int, misses: int) -> None:
        """Fold one batch's hit/miss counts into ``stats.json``."""
        counts = self._read_counts()
        counts["lifetime_hits"] = counts.get("lifetime_hits", 0) + hits
        counts["lifetime_misses"] = counts.get("lifetime_misses", 0) + misses
        counts["last_run_hits"] = hits
        counts["last_run_misses"] = misses
        _atomic_write_json(self.root / "stats.json", counts)

    def _read_counts(self) -> dict[str, int]:
        try:
            data = json.loads(
                (self.root / "stats.json").read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return {}
        return {k: v for k, v in data.items() if isinstance(v, int)}

    def stats(self) -> CacheStats:
        entries = self.entries()
        counts = self._read_counts()
        return CacheStats(
            cache_dir=self.root,
            entries=len(entries),
            total_bytes=sum(p.stat().st_size for p in entries),
            last_run_hits=counts.get("last_run_hits", 0),
            last_run_misses=counts.get("last_run_misses", 0),
            lifetime_hits=counts.get("lifetime_hits", 0),
            lifetime_misses=counts.get("lifetime_misses", 0),
        )


def _atomic_write_json(path: Path, payload: dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
