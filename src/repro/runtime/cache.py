"""Content-addressed result cache.

Serialized :class:`~repro.experiments.results.ExperimentResult` payloads
are stored one JSON file per task key under
``<cache-dir>/objects/<key[:2]>/<key>.json``; the key (see
:mod:`repro.runtime.fingerprint`) covers the experiment id, sweep mode,
package version, and the source digest of everything the experiment can
execute, so a lookup either misses or returns exactly what a fresh run
would print. The default location is ``~/.cache/opm-repro``, overridable
via ``--cache-dir`` or the ``OPM_REPRO_CACHE_DIR`` environment variable.

Alongside the objects the cache keeps ``stats.json`` with lifetime and
last-run hit/miss counts; ``opm-repro cache stats`` renders it and CI
asserts on it. Writes are atomic (tempfile + ``os.replace``), so
concurrent batches at worst redo one put; the stats read-modify-write is
additionally serialized through a lock file so concurrent writers cannot
lose each other's counts, and a corrupt or partial stats file reads as
empty counts instead of tracebacking.

:class:`SharedResultCache` promotes the store to a concurrency-safe
shared backend for the :mod:`repro.serve` service: every write takes the
lock file, and an in-process LRU hot tier in front of the on-disk
objects serves repeat hits without touching disk.
"""

from __future__ import annotations

import collections
import contextlib
import copy
import dataclasses
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Iterator

try:  # pragma: no cover - always present on the supported platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.experiments.results import ExperimentResult

#: Environment variable overriding the default cache directory.
ENV_CACHE_DIR = "OPM_REPRO_CACHE_DIR"

#: Bump when the payload layout changes; older entries read as misses.
SCHEMA_VERSION = 1


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "opm-repro"


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """A snapshot of the on-disk cache state."""

    cache_dir: Path
    entries: int
    total_bytes: int
    last_run_hits: int
    last_run_misses: int
    lifetime_hits: int
    lifetime_misses: int

    @property
    def last_run_hit_rate(self) -> float:
        looked_up = self.last_run_hits + self.last_run_misses
        return self.last_run_hits / looked_up if looked_up else 0.0

    def render(self) -> str:
        return "\n".join(
            [
                f"cache dir: {self.cache_dir}",
                f"entries: {self.entries} "
                f"({self.total_bytes / 2**20:.2f} MiB)",
                f"last run: {self.last_run_hits} hits, "
                f"{self.last_run_misses} misses "
                f"(hit rate {self.last_run_hit_rate:.1%})",
                f"lifetime: {self.lifetime_hits} hits, "
                f"{self.lifetime_misses} misses",
            ]
        )


class ResultCache:
    """Filesystem-backed, content-addressed store of experiment results."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- object store --------------------------------------------------------

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str) -> ExperimentResult | None:
        """The cached result for ``key``, or None on miss/corruption."""
        path = self._object_path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            return None
        try:
            return ExperimentResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(
        self,
        key: str,
        result: ExperimentResult,
        *,
        quick: bool,
        wall_time_s: float | None = None,
    ) -> Path:
        """Store ``result`` under ``key`` atomically; returns the path."""
        payload: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "experiment_id": result.experiment_id,
            "quick": quick,
            "created_unix_s": time.time(),
            "wall_time_s": wall_time_s,
            "result": result.as_dict(),
        }
        path = self._object_path(key)
        _atomic_write_json(path, payload)
        return path

    # -- generic JSON payloads (serve answers) -------------------------------

    def get_payload(self, key: str) -> dict[str, Any] | None:
        """A generic JSON payload stored under ``key``, or None."""
        path = self._object_path(key)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if doc.get("schema") != SCHEMA_VERSION or "payload" not in doc:
            return None
        payload = doc["payload"]
        return payload if isinstance(payload, dict) else None

    def put_payload(
        self, key: str, payload: dict[str, Any], *, kind: str = "payload"
    ) -> Path:
        """Store an arbitrary JSON document under ``key`` atomically."""
        doc: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "created_unix_s": time.time(),
            "payload": payload,
        }
        path = self._object_path(key)
        _atomic_write_json(path, doc)
        return path

    def entries(self) -> list[Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(objects.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached object and the stats file; returns count."""
        entries = self.entries()
        for path in entries:
            try:
                path.unlink()
            except OSError:
                pass
        stats = self.root / "stats.json"
        try:
            stats.unlink()
        except OSError:
            pass
        return len(entries)

    # -- hit/miss accounting -------------------------------------------------

    def record_run(self, *, hits: int, misses: int) -> None:
        """Fold one batch's hit/miss counts into ``stats.json``.

        The read-modify-write is serialized through a lock file so two
        concurrent batches (or serve workers) cannot interleave and lose
        each other's lifetime counts; a corrupt or partially written
        stats file resets the counts instead of raising.
        """
        with file_lock(self.root / "stats.lock"):
            counts = self._read_counts()
            counts["lifetime_hits"] = counts.get("lifetime_hits", 0) + hits
            counts["lifetime_misses"] = (
                counts.get("lifetime_misses", 0) + misses
            )
            counts["last_run_hits"] = hits
            counts["last_run_misses"] = misses
            _atomic_write_json(self.root / "stats.json", counts)

    def _read_counts(self) -> dict[str, int]:
        """Counts from ``stats.json``; corruption resets to empty."""
        try:
            data = json.loads(
                (self.root / "stats.json").read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict):
            return {}
        return {
            k: v
            for k, v in data.items()
            if isinstance(k, str) and isinstance(v, int)
        }

    def stats(self) -> CacheStats:
        entries = self.entries()
        total_bytes = 0
        for p in entries:
            try:
                total_bytes += p.stat().st_size
            except OSError:  # deleted by a concurrent clear()
                pass
        counts = self._read_counts()
        return CacheStats(
            cache_dir=self.root,
            entries=len(entries),
            total_bytes=total_bytes,
            last_run_hits=counts.get("last_run_hits", 0),
            last_run_misses=counts.get("last_run_misses", 0),
            lifetime_hits=counts.get("lifetime_hits", 0),
            lifetime_misses=counts.get("lifetime_misses", 0),
        )


@contextlib.contextmanager
def file_lock(path: Path, *, timeout_s: float = 30.0) -> Iterator[None]:
    """Advisory inter-process lock held for the duration of the block.

    Uses ``fcntl.flock`` on the given lock file. On platforms without
    ``fcntl`` the lock degrades to a best-effort spin on exclusive
    creation; either way the object writes it guards remain individually
    atomic, so the worst outcome of a lost lock is a redone write.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    if fcntl is not None:
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            # Closing drops the flock; the lock file itself is left in
            # place so waiters never race a concurrent unlink.
            os.close(fd)
        return
    deadline = time.monotonic() + timeout_s  # pragma: no cover - non-POSIX
    sidecar = path.with_suffix(path.suffix + ".x")  # pragma: no cover
    while True:  # pragma: no cover
        try:
            fd = os.open(sidecar, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            if time.monotonic() >= deadline:
                yield  # proceed unlocked rather than deadlock
                return
            time.sleep(0.005)
    try:  # pragma: no cover
        yield
    finally:  # pragma: no cover
        os.close(fd)
        with contextlib.suppress(OSError):
            os.unlink(sidecar)


class _LruTier:
    """Bounded in-process LRU of deep-copied JSON payloads (thread-safe)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = max(0, int(capacity))
        self._entries: collections.OrderedDict[str, Any] = (
            collections.OrderedDict()
        )
        self._lock = threading.Lock()

    def get(self, key: str) -> Any | None:
        with self._lock:
            if key not in self._entries:
                return None
            self._entries.move_to_end(key)
            return copy.deepcopy(self._entries[key])

    def put(self, key: str, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = copy.deepcopy(value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class SharedResultCache(ResultCache):
    """Concurrency-safe cache front for the serve layer.

    Two hardenings over the base store:

    * **lock-file-guarded writes** — every ``put``/``put_payload`` takes
      the cache-wide lock file, so N serve workers and a concurrent
      ``run all`` batch can share one directory without interleaving
      (stats updates already lock in the base class);
    * **LRU hot tier** — the last ``hot_capacity`` objects read or
      written stay in process memory, so repeat hits never touch disk.

    Tier accounting (``hot_hits`` / ``disk_hits`` / ``misses``) is kept
    on the instance; the serve app publishes it as ``serve.cache.*``
    counters.
    """

    def __init__(
        self, root: str | Path | None = None, *, hot_capacity: int = 256
    ) -> None:
        super().__init__(root)
        self._hot = _LruTier(hot_capacity)
        self._tier_lock = threading.Lock()
        self.hot_hits = 0
        self.disk_hits = 0
        self.misses = 0

    @property
    def _write_lock_path(self) -> Path:
        return self.root / "objects.lock"

    def _count(self, tier: str) -> None:
        with self._tier_lock:
            if tier == "hot":
                self.hot_hits += 1
            elif tier == "disk":
                self.disk_hits += 1
            else:
                self.misses += 1

    # -- experiment results --------------------------------------------------

    def get(self, key: str) -> ExperimentResult | None:
        hot = self._hot.get(key)
        if hot is not None:
            try:
                result = ExperimentResult.from_dict(hot)
            except (KeyError, TypeError, ValueError):  # poisoned entry
                result = None
            if result is not None:
                self._count("hot")
                return result
        result = super().get(key)
        if result is None:
            self._count("miss")
            return None
        self._hot.put(key, result.as_dict())
        self._count("disk")
        return result

    def put(
        self,
        key: str,
        result: ExperimentResult,
        *,
        quick: bool,
        wall_time_s: float | None = None,
    ) -> Path:
        with file_lock(self._write_lock_path):
            path = super().put(
                key, result, quick=quick, wall_time_s=wall_time_s
            )
        self._hot.put(key, result.as_dict())
        return path

    # -- generic payloads ----------------------------------------------------

    def get_payload(self, key: str) -> dict[str, Any] | None:
        hot = self._hot.get(key)
        if isinstance(hot, dict):
            self._count("hot")
            return hot
        payload = super().get_payload(key)
        if payload is None:
            self._count("miss")
            return None
        self._hot.put(key, payload)
        self._count("disk")
        return payload

    def put_payload(
        self, key: str, payload: dict[str, Any], *, kind: str = "payload"
    ) -> Path:
        with file_lock(self._write_lock_path):
            path = super().put_payload(key, payload, kind=kind)
        self._hot.put(key, payload)
        return path

    def clear(self) -> int:
        self._hot.clear()
        with file_lock(self._write_lock_path):
            return super().clear()

    @property
    def hot_entries(self) -> int:
        return len(self._hot)


def _atomic_write_json(path: Path, payload: dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
