"""Parallel experiment scheduler.

Runs a set of experiment ids through (in order of precedence per task):

1. the **resume set** — tasks already completed in a previous journal are
   skipped outright;
2. the **result cache** — a task whose content-addressed key (see
   :mod:`repro.runtime.fingerprint`) is cached returns in milliseconds;
3. **execution** — inline for ``jobs=1``, or fanned out across a
   ``ProcessPoolExecutor`` with bounded retry, exponential backoff, and
   a deadline-accurate per-task timeout.

Timeouts are *per task, measured from that task's own submission to a
free worker*: submission is throttled to the pool width, every in-flight
task carries a monotonic deadline, and a ``concurrent.futures.wait``
polling loop declares a task ``timeout`` the moment its own deadline
passes — never after some other task's wait. Because a running
``ProcessPoolExecutor`` future cannot be cancelled, a hung worker is
reaped by recycling the executor (terminate + fresh pool) so a stuck
process can never silently occupy a slot for the rest of the batch;
innocent in-flight tasks are resubmitted on the fresh pool without
consuming an extra attempt. Timed-out tasks participate in the same
bounded-retry/backoff path as crashed tasks and are journaled with a
distinct ``timeout`` status, which ``--resume`` treats as re-runnable.

Every computed result is normalized through the ``as_dict``/``from_dict``
round-trip before it is rendered or cached, so serial runs, parallel
runs, and cache hits all print byte-identical tables.

With telemetry enabled the scheduler opens a ``batch`` span (tagged
with a fresh ``trace_id``) with one ``task`` child per executed
experiment — inline *and* pool: pool submissions open a
manual-lifecycle ``task`` span at submission and pass the worker a
:class:`~repro.telemetry.collect.TraceContext`, so the worker's own
spans (``experiment``, ``kernel.*``, ``hierarchy.run``, ...) come back
inside the result envelope and are merged under that ``task`` span with
ids remapped and clocks rebased (see :mod:`repro.telemetry.collect`).
``task.wait`` resolution markers and ``pool.reap`` spans around
executor recycling complete the picture. The scheduler publishes
``runtime.cache.hits`` / ``runtime.cache.misses`` / ``runtime.tasks.*``
(including ``runtime.tasks.timeout``) / ``runtime.pool.recycled`` /
``runtime.telemetry.spans_merged`` / ``runtime.telemetry.dropped``
counters plus a ``runtime.task_wall_s`` histogram and a
``runtime.workers`` gauge — the numbers behind the batch summary
section in reports. Worker metric deltas fold into the same registry,
so parallel profiles account worker time instead of silently
under-counting it.

Deterministic fault injection for all of these paths lives in
:mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import dataclasses
import sys
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.experiments.results import ExperimentResult
from repro.telemetry import collect, names as tm
from repro.telemetry.spans import Span
from repro.runtime import faults
from repro.runtime.cache import ResultCache
from repro.runtime.journal import RunJournal

#: Ceiling for one exponential-backoff delay between retry attempts.
DEFAULT_BACKOFF_MAX_S = 30.0


@dataclasses.dataclass
class TaskOutcome:
    """What happened to one experiment in a batch."""

    experiment_id: str
    status: str  # done | failed | timeout | skipped
    result: ExperimentResult | None = None
    cache_hit: bool = False
    duration_s: float = 0.0
    attempts: int = 0
    error: str | None = None


@dataclasses.dataclass
class BatchSummary:
    """Aggregate of one :func:`run_batch` invocation."""

    outcomes: list[TaskOutcome]
    jobs: int
    quick: bool
    wall_time_s: float

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(
            1
            for o in self.outcomes
            if o.status != "skipped" and not o.cache_hit
        )

    @property
    def failed(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def timed_out(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == "timeout"]

    @property
    def skipped(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == "skipped"]

    @property
    def hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def render(self) -> str:
        """One-paragraph plain-text summary for the terminal."""
        done = sum(1 for o in self.outcomes if o.status == "done")
        parts = [
            f"batch: {done}/{len(self.outcomes)} done"
            f" ({self.cache_hits} cached, {len(self.skipped)} resumed,"
            f" {len(self.failed)} failed, {len(self.timed_out)} timed out)",
            f"jobs={self.jobs} wall={self.wall_time_s:.2f}s"
            f" hit-rate={self.hit_rate:.1%}",
        ]
        for o in self.failed:
            parts.append(f"FAILED {o.experiment_id}: {o.error}")
        for o in self.timed_out:
            parts.append(f"TIMEOUT {o.experiment_id}: {o.error}")
        return "\n".join(parts)


def _normalize(result: ExperimentResult) -> ExperimentResult:
    """Round-trip through the dict form so every path prints the same."""
    return ExperimentResult.from_dict(result.as_dict())


def _package_parent() -> str:
    """Directory to prepend to ``sys.path`` in spawned workers."""
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


def _worker_init(package_parent: str) -> None:  # pragma: no cover - child
    if package_parent not in sys.path:
        sys.path.insert(0, package_parent)


def _worker_run(
    experiment_id: str,
    quick: bool,
    ctx: "collect.TraceContext | None" = None,
) -> dict[str, Any]:
    """Executed in a worker process; returns a picklable payload.

    With a :class:`~repro.telemetry.collect.TraceContext`, the task runs
    under a process-local tracer/metrics registry whose spans (rooted at
    an ``experiment`` span) and metric deltas ship home inside this
    envelope for the parent to merge under its ``task`` span.
    """
    from repro import telemetry
    from repro.experiments import registry

    faults.apply(experiment_id)
    spec = registry.get(experiment_id)
    with collect.worker_collection(ctx) as shipment:
        start = time.perf_counter()
        with telemetry.span(tm.SPAN_EXPERIMENT, id=experiment_id, quick=quick):
            result = spec.runner(quick=quick)
        duration_s = time.perf_counter() - start
    return {
        "experiment_id": experiment_id,
        "duration_s": duration_s,
        "result": result.as_dict(),
        "telemetry": shipment.export(),
    }


def _error_text(exc: BaseException) -> str:
    tail = traceback.format_exception_only(type(exc), exc)
    return "".join(tail).strip() or type(exc).__name__


def _backoff_delay(attempt: int, backoff: float, backoff_max: float) -> float:
    """Delay before retry number ``attempt + 1`` (exponential, capped)."""
    if backoff <= 0.0:
        return 0.0
    return min(backoff * (2.0 ** (attempt - 1)), backoff_max)


def run_batch(
    ids: Sequence[str],
    *,
    quick: bool = True,
    jobs: int = 1,
    cache: ResultCache | None = None,
    journal: RunJournal | None = None,
    resume_completed: Iterable[str] = (),
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.0,
    backoff_max: float = DEFAULT_BACKOFF_MAX_S,
) -> BatchSummary:
    """Run ``ids``; returns per-task outcomes in input order.

    ``cache=None`` disables caching entirely. ``timeout`` bounds each
    task's execution measured from *its own* submission to a worker and
    only applies to pool execution (``jobs > 1``); a task past its
    deadline is journaled as ``timeout``, its hung worker is reaped by
    recycling the pool, and — like a crashed task — it is retried while
    attempts remain. ``retries`` is the number of *additional* attempts
    granted to a task whose execution raised or timed out. ``backoff``
    seconds (doubling per attempt, capped at ``backoff_max``) separate a
    failure from its retry.
    """
    from repro import telemetry
    from repro.experiments import registry

    start = time.perf_counter()
    resume_completed = set(resume_completed)
    if journal is not None:
        journal.write_header(ids=list(ids), quick=quick, jobs=jobs)
    telemetry.gauge(tm.METRIC_RUNTIME_WORKERS).set(jobs)
    trace_id = collect.new_trace_id()

    with telemetry.span(
        tm.SPAN_BATCH, n_tasks=len(ids), jobs=jobs, quick=quick,
        trace_id=trace_id,
    ):
        outcomes: dict[str, TaskOutcome] = {}
        to_execute: list[str] = []
        for exp_id in ids:
            if exp_id in resume_completed:
                outcomes[exp_id] = TaskOutcome(exp_id, "skipped")
                telemetry.counter(tm.METRIC_TASKS_RESUMED).inc()
                if journal is not None:
                    journal.record(exp_id, "skipped")
                continue
            if journal is not None:
                journal.record(exp_id, "pending")
            cached = None
            if cache is not None:
                key = registry.get(exp_id).task_key(quick=quick)
                with telemetry.span(tm.SPAN_CACHE_LOOKUP, id=exp_id):
                    cached = cache.get(key)
            if cached is not None:
                outcomes[exp_id] = TaskOutcome(
                    exp_id, "done", result=cached, cache_hit=True
                )
                telemetry.counter(tm.METRIC_CACHE_HITS).inc()
                if journal is not None:
                    journal.record(exp_id, "done", cache="hit")
            else:
                if cache is not None:
                    telemetry.counter(tm.METRIC_CACHE_MISSES).inc()
                to_execute.append(exp_id)

        executed = (
            _execute_inline(
                to_execute,
                quick=quick,
                journal=journal,
                retries=retries,
                backoff=backoff,
                backoff_max=backoff_max,
            )
            if jobs <= 1
            else _execute_pool(
                to_execute,
                quick=quick,
                jobs=jobs,
                journal=journal,
                timeout=timeout,
                retries=retries,
                backoff=backoff,
                backoff_max=backoff_max,
                trace_id=trace_id,
            )
        )
        for exp_id, outcome in executed.items():
            outcomes[exp_id] = outcome
            if outcome.status == "done":
                telemetry.counter(tm.METRIC_TASKS_COMPLETED).inc()
                telemetry.histogram(tm.METRIC_TASK_WALL_S).observe(
                    outcome.duration_s
                )
                if cache is not None and outcome.result is not None:
                    key = registry.get(exp_id).task_key(quick=quick)
                    cache.put(
                        key,
                        outcome.result,
                        quick=quick,
                        wall_time_s=outcome.duration_s,
                    )
            elif outcome.status != "timeout":
                # timeout events are already counted per occurrence by
                # the pool loop (runtime.tasks.timeout).
                telemetry.counter(tm.METRIC_TASKS_FAILED).inc()

    summary = BatchSummary(
        outcomes=[outcomes[exp_id] for exp_id in ids],
        jobs=jobs,
        quick=quick,
        wall_time_s=time.perf_counter() - start,
    )
    if cache is not None:
        cache.record_run(
            hits=summary.cache_hits, misses=summary.cache_misses
        )
    return summary


def _run_with_manifest(
    exp_id: str, *, quick: bool
) -> tuple[ExperimentResult, float]:
    """Execute one task in-process under a span + provenance manifest.

    Calls the driver directly (not :func:`repro.experiments.registry.run`)
    so no invocation-specific telemetry table ends up inside a result that
    may be cached and replayed later.
    """
    from repro import telemetry
    from repro.experiments import registry

    faults.apply(exp_id)
    spec = registry.get(exp_id)
    manifest = telemetry.start_manifest(exp_id, quick=quick)
    status = "ok"
    start = time.perf_counter()
    try:
        # Same span vocabulary as the pool path: a `task` wrapper with an
        # `experiment` root for the driver's own spans, so serial and
        # parallel traces differ only in scheduler plumbing.
        with telemetry.span(tm.SPAN_TASK, id=exp_id, quick=quick):
            with telemetry.span(tm.SPAN_EXPERIMENT, id=exp_id, quick=quick):
                result = spec.runner(quick=quick)
    except Exception:
        status = "error"
        raise
    finally:
        telemetry.finish_manifest(manifest, status=status)
    return _normalize(result), time.perf_counter() - start


def _execute_inline(
    ids: Sequence[str],
    *,
    quick: bool,
    journal: RunJournal | None,
    retries: int,
    backoff: float = 0.0,
    backoff_max: float = DEFAULT_BACKOFF_MAX_S,
) -> dict[str, TaskOutcome]:
    outcomes: dict[str, TaskOutcome] = {}
    for exp_id in ids:
        for attempt in range(1, retries + 2):
            if journal is not None:
                journal.record(exp_id, "running", attempt=attempt)
            try:
                result, duration = _run_with_manifest(exp_id, quick=quick)
            except Exception as exc:
                outcomes[exp_id] = TaskOutcome(
                    exp_id,
                    "failed",
                    attempts=attempt,
                    error=_error_text(exc),
                )
                if journal is not None:
                    journal.record(
                        exp_id,
                        "failed",
                        attempt=attempt,
                        error=_error_text(exc),
                    )
                if attempt <= retries:
                    delay = _backoff_delay(attempt, backoff, backoff_max)
                    if delay > 0.0:
                        time.sleep(delay)
                continue
            outcomes[exp_id] = TaskOutcome(
                exp_id,
                "done",
                result=result,
                duration_s=duration,
                attempts=attempt,
            )
            if journal is not None:
                journal.record(
                    exp_id,
                    "done",
                    cache="miss",
                    duration_s=duration,
                    attempt=attempt,
                )
            break
    return outcomes


@dataclasses.dataclass
class _InFlight:
    """Book-keeping for one submitted-but-unresolved pool task."""

    experiment_id: str
    submitted_at: float  # time.monotonic() at submission
    deadline: float | None  # submitted_at + timeout, None = no timeout
    span: Span | None = None  # open `task` span (None when telemetry off)


@dataclasses.dataclass
class _Waiting:
    """A task queued for (re)submission."""

    experiment_id: str
    ready_at: float  # time.monotonic() before which it must not start
    new_attempt: bool  # False when requeued by a pool recycle


def _new_pool(jobs: int, n_tasks: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=min(jobs, n_tasks),
        initializer=_worker_init,
        initargs=(_package_parent(),),
    )


def _reap_pool(pool: ProcessPoolExecutor, *, reason: str, n_hung: int) -> None:
    """Terminate a pool whose running futures cannot be cancelled.

    ``shutdown(cancel_futures=True)`` only drops *queued* work; a worker
    stuck inside a task would keep the process alive forever, so the
    worker processes are terminated (then killed if necessary) after the
    executor stops accepting work.
    """
    from repro import telemetry

    with telemetry.span(tm.SPAN_POOL_REAP, reason=reason, n_hung=n_hung):
        procs = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + 2.0
        for proc in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - stubborn child
                proc.kill()
                proc.join(timeout=1.0)
    telemetry.counter(tm.METRIC_POOL_RECYCLED).inc()


def _execute_pool(
    ids: Sequence[str],
    *,
    quick: bool,
    jobs: int,
    journal: RunJournal | None,
    timeout: float | None,
    retries: int,
    backoff: float = 0.0,
    backoff_max: float = DEFAULT_BACKOFF_MAX_S,
    trace_id: str = "",
) -> dict[str, TaskOutcome]:
    """Deadline-driven pool execution.

    Submission is throttled to the pool width so a task's deadline clock
    starts when it actually reaches a worker, not when the batch began.
    The loop wakes on the first completion or the earliest deadline /
    backoff expiry, whichever comes first, so a hung task is declared
    ``timeout`` about ``timeout`` seconds after *its own* start even if
    it was submitted last.
    """
    from repro import telemetry
    from repro.experiments import registry

    outcomes: dict[str, TaskOutcome] = {}
    if not ids:
        return outcomes
    # Load every experiment driver in the parent *before* forking the
    # pool: workers inherit the warm module graph, so a task's first
    # execution is not charged ~0.5 s of scipy imports against its
    # deadline (under a spawn start method the import cost reappears in
    # the worker — timeouts there must budget for startup).
    registry.get(ids[0])
    max_workers = min(jobs, len(ids))
    attempts = {exp_id: 0 for exp_id in ids}
    waiting: list[_Waiting] = [_Waiting(exp_id, 0.0, True) for exp_id in ids]
    running: dict[Future, _InFlight] = {}
    pool = _new_pool(jobs, len(ids))
    recycle_reason: str | None = None
    hung = 0

    def resolve(exp_id: str, status: str, **kwargs: Any) -> None:
        outcomes[exp_id] = TaskOutcome(
            exp_id, status, attempts=attempts[exp_id], **kwargs
        )

    def requeue_for_retry(exp_id: str, now: float) -> None:
        telemetry.counter(tm.METRIC_TASKS_RETRIED).inc()
        delay = _backoff_delay(attempts[exp_id], backoff, backoff_max)
        waiting.append(_Waiting(exp_id, now + delay, True))

    try:
        while waiting or running:
            now = time.monotonic()
            # A recycle request (hung worker or broken pool) is honored
            # once the loop is back at a submission point: every innocent
            # in-flight task is requeued (no extra attempt charged) and a
            # fresh executor replaces the poisoned one.
            if recycle_reason is not None:
                for future, flight in running.items():
                    future.cancel()
                    collect.close_task_span(flight.span, status="requeued")
                    waiting.append(
                        _Waiting(flight.experiment_id, now, False)
                    )
                running.clear()
                _reap_pool(pool, reason=recycle_reason, n_hung=hung)
                pool = _new_pool(jobs, len(ids))
                recycle_reason = None
                hung = 0

            # Fill free worker slots with tasks whose backoff has expired.
            ready = [w for w in waiting if w.ready_at <= now]
            while ready and len(running) < max_workers:
                item = ready.pop(0)
                waiting.remove(item)
                if item.new_attempt:
                    attempts[item.experiment_id] += 1
                if journal is not None:
                    journal.record(
                        item.experiment_id,
                        "running",
                        attempt=attempts[item.experiment_id],
                    )
                task_span = collect.open_task_span(
                    item.experiment_id,
                    quick=quick,
                    attempt=attempts[item.experiment_id],
                )
                ctx = collect.current_context(
                    item.experiment_id,
                    trace_id=trace_id,
                    parent_span_id=(
                        task_span.span_id if task_span is not None else None
                    ),
                )
                future = pool.submit(
                    _worker_run, item.experiment_id, quick, ctx
                )
                running[future] = _InFlight(
                    experiment_id=item.experiment_id,
                    submitted_at=now,
                    deadline=None if timeout is None else now + timeout,
                    span=task_span,
                )

            if not running:
                # Everything is waiting out a backoff delay.
                next_ready = min(w.ready_at for w in waiting)
                time.sleep(max(0.0, next_ready - time.monotonic()))
                continue

            # Sleep until something completes, a deadline passes, or a
            # backoff expires — whichever is first.
            wake_times = [
                f.deadline for f in running.values() if f.deadline is not None
            ] + [w.ready_at for w in waiting if w.ready_at > now]
            poll = (
                None
                if not wake_times
                else max(0.0, min(wake_times) - time.monotonic())
            )
            done, _ = futures_wait(
                running, timeout=poll, return_when=FIRST_COMPLETED
            )

            now = time.monotonic()
            for future in done:
                flight = running.pop(future)
                exp_id = flight.experiment_id
                attempt = attempts[exp_id]
                wait_s = now - flight.submitted_at
                try:
                    payload = future.result(timeout=0)
                except (Exception, CancelledError) as exc:
                    error = _error_text(exc)
                    if journal is not None:
                        journal.record(
                            exp_id, "failed", attempt=attempt, error=error
                        )
                    if isinstance(exc, BrokenExecutor):
                        # The whole executor is poisoned (worker died
                        # outside our control); every sibling future is
                        # about to fail the same way — recycle instead.
                        recycle_reason = recycle_reason or "broken-pool"
                    with telemetry.span(
                        tm.SPAN_TASK_WAIT, id=exp_id, status="failed",
                        wait_s=wait_s,
                    ):
                        pass
                    collect.close_task_span(flight.span, status="failed")
                    if attempt <= retries:
                        requeue_for_retry(exp_id, now)
                    else:
                        resolve(exp_id, "failed", error=error)
                    continue
                with telemetry.span(
                    tm.SPAN_TASK_WAIT, id=exp_id, status="done", wait_s=wait_s
                ):
                    pass
                # Merge the worker's shipped spans/metrics under the task
                # span *before* closing it, so the sink streams children
                # ahead of their parent (same order a with-block yields).
                collect.absorb(
                    payload.get("telemetry"), task_span=flight.span
                )
                collect.close_task_span(flight.span, status="done")
                resolve(
                    exp_id,
                    "done",
                    result=ExperimentResult.from_dict(payload["result"]),
                    duration_s=payload["duration_s"],
                )
                if journal is not None:
                    journal.record(
                        exp_id,
                        "done",
                        cache="miss",
                        duration_s=payload["duration_s"],
                        attempt=attempt,
                    )

            # Deadline sweep: anything still running past its own
            # deadline is declared timed out *now*, not when its future
            # happens to be waited on.
            expired = [
                (future, flight)
                for future, flight in running.items()
                if flight.deadline is not None and flight.deadline <= now
            ]
            for future, flight in expired:
                del running[future]
                future.cancel()  # no-op for running futures; documented
                exp_id = flight.experiment_id
                attempt = attempts[exp_id]
                elapsed = now - flight.submitted_at
                error = (
                    f"timed out after {elapsed:.2f}s"
                    f" (timeout {timeout}s, attempt {attempt})"
                )
                telemetry.counter(tm.METRIC_TASKS_TIMEOUT).inc()
                with telemetry.span(
                    tm.SPAN_TASK_WAIT, id=exp_id, status="timeout",
                    wait_s=elapsed,
                ):
                    pass
                collect.close_task_span(flight.span, status="timeout")
                if journal is not None:
                    journal.record(
                        exp_id, "timeout", attempt=attempt, error=error,
                        duration_s=elapsed,
                    )
                hung += 1
                recycle_reason = recycle_reason or "hung-worker"
                if attempt <= retries:
                    requeue_for_retry(exp_id, now)
                else:
                    resolve(
                        exp_id, "timeout", error=error, duration_s=elapsed
                    )
    finally:
        if recycle_reason is not None or hung:
            _reap_pool(pool, reason=recycle_reason or "hung-worker",
                       n_hung=hung)
        else:
            pool.shutdown(wait=True, cancel_futures=True)
    return outcomes
