"""Parallel experiment scheduler.

Runs a set of experiment ids through (in order of precedence per task):

1. the **resume set** — tasks already completed in a previous journal are
   skipped outright;
2. the **result cache** — a task whose content-addressed key (see
   :mod:`repro.runtime.fingerprint`) is cached returns in milliseconds;
3. **execution** — inline for ``jobs=1``, or fanned out across a
   ``ProcessPoolExecutor`` with bounded retry on worker failure and an
   approximate per-task timeout.

Every computed result is normalized through the ``as_dict``/``from_dict``
round-trip before it is rendered or cached, so serial runs, parallel
runs, and cache hits all print byte-identical tables.

With telemetry enabled the scheduler opens a ``batch`` span with one
``task`` (inline) or ``task.wait`` (pool) child per executed experiment,
keeps a run manifest per inline-executed task, and publishes
``runtime.cache.hits`` / ``runtime.cache.misses`` /
``runtime.tasks.*`` counters plus a ``runtime.task_wall_s`` histogram and
a ``runtime.workers`` gauge — the numbers behind the batch summary
section in reports.
"""

from __future__ import annotations

import dataclasses
import sys
import time
import traceback
from concurrent.futures import (
    CancelledError,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.experiments.results import ExperimentResult
from repro.runtime.cache import ResultCache
from repro.runtime.journal import RunJournal


@dataclasses.dataclass
class TaskOutcome:
    """What happened to one experiment in a batch."""

    experiment_id: str
    status: str  # done | failed | skipped
    result: ExperimentResult | None = None
    cache_hit: bool = False
    duration_s: float = 0.0
    attempts: int = 0
    error: str | None = None


@dataclasses.dataclass
class BatchSummary:
    """Aggregate of one :func:`run_batch` invocation."""

    outcomes: list[TaskOutcome]
    jobs: int
    quick: bool
    wall_time_s: float

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(
            1
            for o in self.outcomes
            if o.status != "skipped" and not o.cache_hit
        )

    @property
    def failed(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def skipped(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == "skipped"]

    @property
    def hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def render(self) -> str:
        """One-paragraph plain-text summary for the terminal."""
        done = sum(1 for o in self.outcomes if o.status == "done")
        parts = [
            f"batch: {done}/{len(self.outcomes)} done"
            f" ({self.cache_hits} cached, {len(self.skipped)} resumed,"
            f" {len(self.failed)} failed)",
            f"jobs={self.jobs} wall={self.wall_time_s:.2f}s"
            f" hit-rate={self.hit_rate:.1%}",
        ]
        for o in self.failed:
            parts.append(f"FAILED {o.experiment_id}: {o.error}")
        return "\n".join(parts)


def _normalize(result: ExperimentResult) -> ExperimentResult:
    """Round-trip through the dict form so every path prints the same."""
    return ExperimentResult.from_dict(result.as_dict())


def _package_parent() -> str:
    """Directory to prepend to ``sys.path`` in spawned workers."""
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


def _worker_init(package_parent: str) -> None:  # pragma: no cover - child
    if package_parent not in sys.path:
        sys.path.insert(0, package_parent)


def _worker_run(experiment_id: str, quick: bool) -> dict[str, Any]:
    """Executed in a worker process; returns a picklable payload."""
    from repro.experiments import registry

    spec = registry.get(experiment_id)
    start = time.perf_counter()
    result = spec.runner(quick=quick)
    return {
        "experiment_id": experiment_id,
        "duration_s": time.perf_counter() - start,
        "result": result.as_dict(),
    }


def _error_text(exc: BaseException) -> str:
    tail = traceback.format_exception_only(type(exc), exc)
    return "".join(tail).strip() or type(exc).__name__


def run_batch(
    ids: Sequence[str],
    *,
    quick: bool = True,
    jobs: int = 1,
    cache: ResultCache | None = None,
    journal: RunJournal | None = None,
    resume_completed: Iterable[str] = (),
    timeout: float | None = None,
    retries: int = 1,
) -> BatchSummary:
    """Run ``ids``; returns per-task outcomes in input order.

    ``cache=None`` disables caching entirely. ``timeout`` bounds how long
    the scheduler waits per task and only applies to pool execution
    (``jobs > 1``); a timed-out task is recorded as failed without retry,
    though its worker may hold the slot until the attempt finishes.
    ``retries`` is the number of *additional* attempts granted to a task
    whose execution raised.
    """
    from repro import telemetry
    from repro.experiments import registry

    start = time.perf_counter()
    resume_completed = set(resume_completed)
    if journal is not None:
        journal.write_header(ids=list(ids), quick=quick, jobs=jobs)
    telemetry.gauge("runtime.workers").set(jobs)

    with telemetry.span("batch", n_tasks=len(ids), jobs=jobs, quick=quick):
        outcomes: dict[str, TaskOutcome] = {}
        to_execute: list[str] = []
        for exp_id in ids:
            if exp_id in resume_completed:
                outcomes[exp_id] = TaskOutcome(exp_id, "skipped")
                telemetry.counter("runtime.tasks.resumed").inc()
                if journal is not None:
                    journal.record(exp_id, "skipped")
                continue
            if journal is not None:
                journal.record(exp_id, "pending")
            cached = None
            if cache is not None:
                key = registry.get(exp_id).task_key(quick=quick)
                with telemetry.span("cache.lookup", id=exp_id):
                    cached = cache.get(key)
            if cached is not None:
                outcomes[exp_id] = TaskOutcome(
                    exp_id, "done", result=cached, cache_hit=True
                )
                telemetry.counter("runtime.cache.hits").inc()
                if journal is not None:
                    journal.record(exp_id, "done", cache="hit")
            else:
                if cache is not None:
                    telemetry.counter("runtime.cache.misses").inc()
                to_execute.append(exp_id)

        executed = (
            _execute_inline(
                to_execute, quick=quick, journal=journal, retries=retries
            )
            if jobs <= 1
            else _execute_pool(
                to_execute,
                quick=quick,
                jobs=jobs,
                journal=journal,
                timeout=timeout,
                retries=retries,
            )
        )
        for exp_id, outcome in executed.items():
            outcomes[exp_id] = outcome
            if outcome.status == "done":
                telemetry.counter("runtime.tasks.completed").inc()
                telemetry.histogram("runtime.task_wall_s").observe(
                    outcome.duration_s
                )
                if cache is not None and outcome.result is not None:
                    key = registry.get(exp_id).task_key(quick=quick)
                    cache.put(
                        key,
                        outcome.result,
                        quick=quick,
                        wall_time_s=outcome.duration_s,
                    )
            else:
                telemetry.counter("runtime.tasks.failed").inc()

    summary = BatchSummary(
        outcomes=[outcomes[exp_id] for exp_id in ids],
        jobs=jobs,
        quick=quick,
        wall_time_s=time.perf_counter() - start,
    )
    if cache is not None:
        cache.record_run(
            hits=summary.cache_hits, misses=summary.cache_misses
        )
    return summary


def _run_with_manifest(
    exp_id: str, *, quick: bool
) -> tuple[ExperimentResult, float]:
    """Execute one task in-process under a span + provenance manifest.

    Calls the driver directly (not :func:`repro.experiments.registry.run`)
    so no invocation-specific telemetry table ends up inside a result that
    may be cached and replayed later.
    """
    from repro import telemetry
    from repro.experiments import registry

    spec = registry.get(exp_id)
    manifest = telemetry.start_manifest(exp_id, quick=quick)
    status = "ok"
    start = time.perf_counter()
    try:
        with telemetry.span("task", id=exp_id, quick=quick):
            result = spec.runner(quick=quick)
    except Exception:
        status = "error"
        raise
    finally:
        telemetry.finish_manifest(manifest, status=status)
    return _normalize(result), time.perf_counter() - start


def _execute_inline(
    ids: Sequence[str],
    *,
    quick: bool,
    journal: RunJournal | None,
    retries: int,
) -> dict[str, TaskOutcome]:
    outcomes: dict[str, TaskOutcome] = {}
    for exp_id in ids:
        for attempt in range(1, retries + 2):
            if journal is not None:
                journal.record(exp_id, "running", attempt=attempt)
            try:
                result, duration = _run_with_manifest(exp_id, quick=quick)
            except Exception as exc:
                outcomes[exp_id] = TaskOutcome(
                    exp_id,
                    "failed",
                    attempts=attempt,
                    error=_error_text(exc),
                )
                if journal is not None:
                    journal.record(
                        exp_id,
                        "failed",
                        attempt=attempt,
                        error=_error_text(exc),
                    )
                continue
            outcomes[exp_id] = TaskOutcome(
                exp_id,
                "done",
                result=result,
                duration_s=duration,
                attempts=attempt,
            )
            if journal is not None:
                journal.record(
                    exp_id,
                    "done",
                    cache="miss",
                    duration_s=duration,
                    attempt=attempt,
                )
            break
    return outcomes


def _execute_pool(
    ids: Sequence[str],
    *,
    quick: bool,
    jobs: int,
    journal: RunJournal | None,
    timeout: float | None,
    retries: int,
) -> dict[str, TaskOutcome]:
    from repro import telemetry

    outcomes: dict[str, TaskOutcome] = {}
    if not ids:
        return outcomes
    attempts = {exp_id: 0 for exp_id in ids}
    pending = list(ids)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(ids)),
        initializer=_worker_init,
        initargs=(_package_parent(),),
    ) as pool:
        while pending:
            futures = {}
            for exp_id in pending:
                attempts[exp_id] += 1
                if journal is not None:
                    journal.record(
                        exp_id, "running", attempt=attempts[exp_id]
                    )
                futures[exp_id] = pool.submit(_worker_run, exp_id, quick)
            round_failures: list[str] = []
            for exp_id, future in futures.items():
                attempt = attempts[exp_id]
                try:
                    with telemetry.span("task.wait", id=exp_id):
                        payload = future.result(timeout=timeout)
                except FutureTimeoutError:
                    future.cancel()
                    error = f"timed out after {timeout}s"
                    outcomes[exp_id] = TaskOutcome(
                        exp_id, "failed", attempts=attempt, error=error
                    )
                    if journal is not None:
                        journal.record(
                            exp_id, "failed", attempt=attempt, error=error
                        )
                    continue
                except (Exception, CancelledError) as exc:
                    error = _error_text(exc)
                    if journal is not None:
                        journal.record(
                            exp_id, "failed", attempt=attempt, error=error
                        )
                    if attempt <= retries:
                        telemetry.counter("runtime.tasks.retried").inc()
                        round_failures.append(exp_id)
                    else:
                        outcomes[exp_id] = TaskOutcome(
                            exp_id, "failed", attempts=attempt, error=error
                        )
                    continue
                outcomes[exp_id] = TaskOutcome(
                    exp_id,
                    "done",
                    result=ExperimentResult.from_dict(payload["result"]),
                    duration_s=payload["duration_s"],
                    attempts=attempt,
                )
                if journal is not None:
                    journal.record(
                        exp_id,
                        "done",
                        cache="miss",
                        duration_s=payload["duration_s"],
                        attempt=attempt,
                    )
            pending = round_failures
    return outcomes
