"""Batch run journal: append-only JSONL, the unit of resumability.

Every scheduler batch can stream its task lifecycle to a journal file —
one JSON object per line, flushed per event, so a SIGKILL mid-sweep
loses at most the line being written. A later invocation passes the same
file to ``--resume``: tasks whose *last* recorded status is terminal
(``done`` or ``skipped``) are not re-executed, everything else (still
``pending``/``running`` when the process died, ``failed``, or
``timeout``) runs again — a timed-out task is interrupted work, not a
verdict, so resume always re-runs it.
Resume appends to the same file, so the journal stays a complete record
of the batch across however many invocations it took to finish.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Iterator

#: Last-recorded statuses that mean "do not run this task again".
COMPLETED_STATUSES = frozenset({"done", "skipped"})


@dataclasses.dataclass(frozen=True)
class JournalEntry:
    """One task-lifecycle event, as read back from a journal file."""

    task: str
    status: str  # pending | running | done | failed | timeout | skipped
    cache: str | None = None  # "hit" | "miss" for done entries
    duration_s: float | None = None
    attempt: int = 1
    error: str | None = None


class RunJournal:
    """Append-only JSONL writer for one batch run."""

    def __init__(self, path: str | Path, *, append: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(  # noqa: SIM115 - lifetime spans the batch
            self.path, "a" if append else "w", encoding="utf-8"
        )

    def write_header(
        self, *, ids: list[str], quick: bool, jobs: int
    ) -> None:
        self._write(
            {
                "event": "batch",
                "ids": ids,
                "quick": quick,
                "jobs": jobs,
                "ts": time.time(),
            }
        )

    def record(
        self,
        task: str,
        status: str,
        *,
        cache: str | None = None,
        duration_s: float | None = None,
        attempt: int = 1,
        error: str | None = None,
    ) -> None:
        record: dict[str, Any] = {
            "event": "task",
            "task": task,
            "status": status,
            "attempt": attempt,
            "ts": time.time(),
        }
        if cache is not None:
            record["cache"] = cache
        if duration_s is not None:
            record["duration_s"] = round(duration_s, 6)
        if error is not None:
            record["error"] = error
        self._write(record)

    def _write(self, record: dict[str, Any]) -> None:
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_entries(path: str | Path) -> Iterator[JournalEntry]:
    """Parse task events from a journal file (tolerates torn last lines)."""
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except OSError:
        return
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:  # torn write from an interrupted run
            continue
        if record.get("event") != "task" or "task" not in record:
            continue
        yield JournalEntry(
            task=record["task"],
            status=record.get("status", "pending"),
            cache=record.get("cache"),
            duration_s=record.get("duration_s"),
            attempt=record.get("attempt", 1),
            error=record.get("error"),
        )


def final_statuses(path: str | Path) -> dict[str, JournalEntry]:
    """Task -> last recorded entry (the state that counts for resume)."""
    last: dict[str, JournalEntry] = {}
    for entry in read_entries(path):
        last[entry.task] = entry
    return last


def completed_tasks(path: str | Path) -> set[str]:
    """Tasks a ``--resume`` run must not execute again."""
    return {
        task
        for task, entry in final_statuses(path).items()
        if entry.status in COMPLETED_STATUSES
    }
