"""Deterministic fault injection for the batch scheduler.

Testing the scheduler's unhappy paths — hangs, crashes, slow tasks,
flaky-once failures — must not require real multi-minute wall-clock
hangs or nondeterministic races. This module lets a test (or a CI smoke
job) declare, per experiment id, a *behavior* the task exhibits before
its driver runs:

``hang``
    Sleep forever. The scheduler's deadline logic must declare the task
    ``timeout`` and reap the worker by recycling the pool.
``hang_once``
    Hang on the first attempt, run normally afterwards — exercises the
    timeout → retry → success path. Requires fault state (see below).
``crash``
    Raise :class:`FaultInjected` every attempt.
``flaky_once``
    Raise :class:`FaultInjected` on the first attempt only — exercises
    retry-with-backoff → eventual success. Requires fault state.
``delay:SECS``
    Sleep ``SECS`` seconds, then run normally.

Plans are carried by environment variables so they survive the hop into
``ProcessPoolExecutor`` workers:

* ``OPM_REPRO_FAULTS`` — the plan spec, e.g.
  ``"fig7=hang;table2=crash;eq1=delay:0.25"``.
* ``OPM_REPRO_FAULTS_STATE`` — directory for cross-process attempt
  markers, needed by the ``*_once`` behaviors (each first attempt drops
  a marker file; later attempts see it and behave normally). Without it
  the ``*_once`` behaviors fall back to in-process memory, which is only
  deterministic for inline (``jobs=1``) execution.

Programmatic use inside one process can bypass the environment with
:func:`install`. Injection points call :func:`apply` with the task id;
outside of an installed or environment-configured plan it is a no-op, so
production runs pay one dict lookup against an empty plan.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path

#: Plan spec environment variable read by :func:`active_plan`.
ENV_SPEC = "OPM_REPRO_FAULTS"
#: Directory for cross-process ``*_once`` attempt markers.
ENV_STATE = "OPM_REPRO_FAULTS_STATE"

_KINDS = frozenset({"hang", "hang_once", "crash", "flaky_once", "delay"})


class FaultInjected(RuntimeError):
    """Raised by ``crash``/``flaky_once`` faults (picklable across workers)."""


@dataclasses.dataclass(frozen=True)
class Fault:
    """One injected behavior for one experiment id."""

    kind: str  # hang | hang_once | crash | flaky_once | delay
    seconds: float = 0.0  # delay duration (``delay`` only)


class FaultPlan:
    """Mapping of experiment id -> :class:`Fault`."""

    def __init__(self, faults: dict[str, Fault] | None = None) -> None:
        self.faults = dict(faults or {})
        self._seen: set[str] = set()  # in-process *_once fallback state

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``"id=kind[:secs];id2=kind2"`` into a plan.

        Raises :class:`ValueError` naming the offending clause so a typo
        in ``OPM_REPRO_FAULTS`` fails loudly instead of silently running
        a fault-free batch.
        """
        faults: dict[str, Fault] = {}
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if "=" not in clause:
                raise ValueError(f"fault clause {clause!r} is not 'id=kind'")
            exp_id, _, behavior = clause.partition("=")
            kind, _, arg = behavior.partition(":")
            exp_id, kind = exp_id.strip(), kind.strip()
            if kind not in _KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} in clause {clause!r} "
                    f"(expected one of {sorted(_KINDS)})"
                )
            seconds = 0.0
            if kind == "delay":
                try:
                    seconds = float(arg)
                except ValueError:
                    raise ValueError(
                        f"fault clause {clause!r}: delay needs "
                        "a numeric ':SECS' argument"
                    ) from None
            faults[exp_id] = Fault(kind, seconds)
        return cls(faults)

    def as_spec(self) -> str:
        """Inverse of :meth:`parse` (environment-variable form)."""
        parts = []
        for exp_id, fault in self.faults.items():
            if fault.kind == "delay":
                parts.append(f"{exp_id}=delay:{fault.seconds}")
            else:
                parts.append(f"{exp_id}={fault.kind}")
        return ";".join(parts)

    def _first_attempt(self, exp_id: str) -> bool:
        """True exactly once per task, tracked across processes if
        ``OPM_REPRO_FAULTS_STATE`` is set (marker files), else in-process."""
        state_dir = os.environ.get(ENV_STATE)
        if state_dir:
            marker = Path(state_dir) / f"fault.{exp_id}.attempted"
            marker.parent.mkdir(parents=True, exist_ok=True)
            try:
                marker.touch(exist_ok=False)
            except FileExistsError:
                return False
            return True
        if exp_id in self._seen:
            return False
        self._seen.add(exp_id)
        return True

    def apply(self, exp_id: str) -> None:
        """Execute the configured fault for ``exp_id`` (no-op if none)."""
        fault = self.faults.get(exp_id)
        if fault is None:
            return
        if fault.kind == "delay":
            time.sleep(fault.seconds)
        elif fault.kind == "crash":
            raise FaultInjected(f"injected crash for {exp_id}")
        elif fault.kind == "flaky_once":
            if self._first_attempt(exp_id):
                raise FaultInjected(f"injected flaky-once crash for {exp_id}")
        elif fault.kind == "hang" or (
            fault.kind == "hang_once" and self._first_attempt(exp_id)
        ):
            _hang()


def _hang() -> None:  # pragma: no cover - the worker gets terminated
    while True:
        time.sleep(0.05)


_installed: FaultPlan | None = None
_env_spec: str | None = None
_env_plan: FaultPlan = FaultPlan()


def install(plan: FaultPlan | None) -> None:
    """Set (or with ``None`` clear) the in-process plan, overriding env."""
    global _installed
    _installed = plan


def active_plan() -> FaultPlan:
    """The installed plan, else one parsed from ``OPM_REPRO_FAULTS``.

    The environment-derived plan is cached per spec string so its
    in-process ``*_once`` fallback state survives across calls.
    """
    # The env-derived plan is intentionally cached in module globals so
    # *_once fallback state survives across calls inside one worker; the
    # whole layer is inert unless OPM_REPRO_FAULTS (fingerprint-
    # allowlisted) is set.
    global _env_spec, _env_plan  # audit: ignore[PURE001]
    if _installed is not None:
        return _installed
    spec = os.environ.get(ENV_SPEC, "")
    if spec != _env_spec:
        _env_spec = spec
        _env_plan = FaultPlan.parse(spec) if spec else FaultPlan()
    return _env_plan


def apply(exp_id: str) -> None:
    """Injection hook: run any configured fault for ``exp_id``."""
    plan = active_plan()
    if plan:
        plan.apply(exp_id)
