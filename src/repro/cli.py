"""Command-line interface: regenerate any paper figure or table.

Usage::

    opm-repro list
    opm-repro run fig7 [--full] [--csv-dir results/]
    opm-repro run all --jobs 4 --journal batch.jsonl
    opm-repro run all --resume batch.jsonl
    opm-repro run fig6 --trace run.jsonl
    opm-repro cache stats
    opm-repro profile fig6
    opm-repro trace tree run.jsonl
    opm-repro trace critical-path run.jsonl
    opm-repro trace top run.jsonl --format json
    opm-repro trace flame run.jsonl -o run.folded
    opm-repro audit src/repro --format json
    opm-repro serve --port 8177 --jobs 4
    opm-repro serve-bench -o BENCH_serve.json
    python -m repro run table4

Batch runs (``run all``, or any ``run`` with ``--jobs``/``--journal``/
``--resume``) go through the :mod:`repro.runtime` scheduler: experiments
fan out across ``--jobs`` worker processes and, unless ``--no-cache`` is
given, unchanged results replay from the content-addressed cache in
milliseconds. Parallel, serial, and cached paths print byte-identical
tables.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.experiments import all_experiments
from repro.experiments import run as run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="opm-repro",
        description=(
            "Reproduction of 'Exploring and Analyzing the Real Impact of "
            "Modern On-Package Memory on HPC Scientific Kernels' (SC '17)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list all experiment ids")
    validatep = sub.add_parser(
        "validate",
        help="cross-validate the analytic model against the exact simulator",
    )
    validatep.add_argument(
        "--sampled",
        action="store_true",
        help="use the streaming sampled stack-distance estimator "
        "(bounded memory; adds the instrumented sparse kernels)",
    )
    validatep.add_argument(
        "--window",
        type=int,
        default=4096,
        help="sampling window length in references (with --sampled)",
    )
    validatep.add_argument(
        "--period",
        type=int,
        default=4,
        help="analyze one in PERIOD windows (with --sampled)",
    )
    reportp = sub.add_parser(
        "report", help="generate the full Markdown reproduction report"
    )
    reportp.add_argument("-o", "--output", default="report.md")
    reportp.add_argument("--full", action="store_true")
    reportp.add_argument(
        "experiments",
        nargs="*",
        help="restrict to these experiment ids (default: all)",
    )
    reportp.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run experiments through the parallel scheduler with N worker "
            "processes; the report gains a 'Batch execution' section"
        ),
    )
    reportp.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the result cache (scheduler runs only)",
    )
    reportp.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: ~/.cache/opm-repro "
        "or $OPM_REPRO_CACHE_DIR)",
    )
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", help="experiment id (fig1..fig30, table2..table5, eq1, all)")
    runp.add_argument(
        "--full",
        action="store_true",
        help="paper-scale sweeps (default: reduced quick sweeps)",
    )
    runp.add_argument(
        "--csv-dir",
        default=None,
        help="also write each result table as CSV under this directory",
    )
    runp.add_argument(
        "--svg-dir",
        default=None,
        help="also render figure-shaped tables as SVG under this directory",
    )
    runp.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "enable telemetry and stream spans + run manifests to PATH "
            "as JSONL (results also gain a 'telemetry' summary table)"
        ),
    )
    runp.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the ASCII rendering (useful with --csv-dir)",
    )
    runp.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for batch runs (default: 1 = in-process)",
    )
    runp.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the result cache (batch runs only)",
    )
    runp.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: ~/.cache/opm-repro "
        "or $OPM_REPRO_CACHE_DIR)",
    )
    runp.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write per-task status JSONL to PATH (enables later --resume)",
    )
    runp.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help=(
            "resume an interrupted batch: skip tasks already 'done' in "
            "this journal, append new events to it"
        ),
    )
    runp.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECS",
        help=(
            "per-task timeout, measured from each task's own start on a "
            "worker (parallel runs only); a task past its deadline is "
            "journaled as 'timeout', its hung worker is reaped by "
            "recycling the pool, and the task is retried like a failure"
        ),
    )
    runp.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help=(
            "extra attempts for a task whose execution raised or timed "
            "out (default 1)"
        ),
    )
    runp.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        metavar="SECS",
        help=(
            "base delay before retrying a failed or timed-out task, "
            "doubling per attempt (default 0 = retry immediately)"
        ),
    )
    runp.add_argument(
        "--backoff-max",
        type=float,
        default=30.0,
        metavar="SECS",
        help="ceiling for one exponential-backoff delay (default 30)",
    )
    cachep = sub.add_parser(
        "cache", help="inspect or clear the content-addressed result cache"
    )
    cache_sub = cachep.add_subparsers(dest="cache_command", required=True)
    for name, help_text in [
        ("stats", "show entry count, size, and hit/miss counters"),
        ("clear", "delete every cached result"),
    ]:
        sp = cache_sub.add_parser(name, help=help_text)
        sp.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="result cache location (default: ~/.cache/opm-repro "
            "or $OPM_REPRO_CACHE_DIR)",
        )
    profilep = sub.add_parser(
        "profile",
        help=(
            "run one experiment with telemetry enabled and print the "
            "per-phase wall/self-time breakdown"
        ),
    )
    profilep.add_argument("experiment", help="experiment id (or 'all')")
    profilep.add_argument(
        "--full",
        action="store_true",
        help="paper-scale sweeps (default: reduced quick sweeps)",
    )
    profilep.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="also stream spans + manifests to PATH as JSONL",
    )
    profilep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "profile through the parallel scheduler with N worker "
            "processes; worker-side spans merge into the breakdown"
        ),
    )
    tracep = sub.add_parser(
        "trace",
        help="analyze a JSONL trace file written by --trace",
    )
    trace_sub = tracep.add_subparsers(dest="trace_command", required=True)
    treep = trace_sub.add_parser(
        "tree", help="print the span forest as an indented waterfall"
    )
    treep.add_argument("path", help="JSONL trace file")
    treep.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        help="truncate the tree below depth N (root = 0)",
    )
    cpathp = trace_sub.add_parser(
        "critical-path",
        help="longest parent-to-child chain under the batch root",
    )
    cpathp.add_argument("path", help="JSONL trace file")
    cpathp.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    topp = trace_sub.add_parser(
        "top", help="per-span-name count/total/p50/p99 table"
    )
    topp.add_argument("path", help="JSONL trace file")
    topp.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    flamep = trace_sub.add_parser(
        "flame",
        help="folded stacks (self-time in µs) for flamegraph tooling",
    )
    flamep.add_argument("path", help="JSONL trace file")
    flamep.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="write folded stacks to PATH instead of stdout",
    )
    servep = sub.add_parser(
        "serve",
        help="run the memory-advisor HTTP service (POST /v1/advise)",
    )
    servep.add_argument("--host", default="127.0.0.1")
    servep.add_argument("--port", type=int, default=8177)
    servep.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker shards for query execution (0 = inline; default 2)",
    )
    servep.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared result cache location (default: ~/.cache/opm-repro "
        "or $OPM_REPRO_CACHE_DIR)",
    )
    servep.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching (every query executes)",
    )
    servep.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECS",
        help="per-execution deadline; a hung shard is recycled (default 30)",
    )
    servep.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts after a crashed execution (default 1)",
    )
    servep.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="enable telemetry and stream spans to PATH as JSONL",
    )
    sbenchp = sub.add_parser(
        "serve-bench",
        help="load-test the advisor service and write BENCH_serve.json",
    )
    sbenchp.add_argument(
        "-o", "--output", default="BENCH_serve.json", metavar="PATH"
    )
    sbenchp.add_argument("--clients", type=int, default=8, metavar="N")
    sbenchp.add_argument(
        "--requests", type=int, default=40, metavar="N",
        help="requests per client in the mixed phase (default 40)",
    )
    sbenchp.add_argument(
        "--distinct", type=int, default=24, metavar="N",
        help="distinct advise queries in the workload (default 24)",
    )
    sbenchp.add_argument(
        "--identical", type=int, default=100, metavar="N",
        help="identical concurrent queries for the coalescing proof "
        "(default 100)",
    )
    sbenchp.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker shards (0 = inline, the fast CI mode; default 0)",
    )
    sbenchp.add_argument("--seed", type=int, default=7)
    sbenchp.add_argument(
        "--slo-p99-ms", type=float, default=250.0, metavar="MS",
        help="advise-route p99 budget asserted by the verdict (default 250)",
    )
    energyp = sub.add_parser(
        "energy",
        help="price kernels on the per-level energy ledger "
        "(per-level breakdown + energy/time Pareto table)",
    )
    energyp.add_argument(
        "--kernel",
        default="all",
        choices=(
            "all", "stream", "gemm", "cholesky", "spmv",
            "sptrans", "sptrsv", "stencil", "fft",
        ),
        help="one kernel, or 'all' for the full suite (default all)",
    )
    energyp.add_argument(
        "--platform",
        default="all",
        choices=("all", "broadwell", "knl"),
        help="restrict the configuration sweep (default all)",
    )
    energyp.add_argument(
        "--format",
        default="text",
        choices=("text", "json"),
        help="output format (default text)",
    )
    energyp.add_argument(
        "--scale",
        type=float,
        default=0.001,
        metavar="X",
        help="capacity scale factor for the simulated hierarchies "
        "(default 0.001, the conservation-test scale)",
    )
    energyp.add_argument(
        "--reps",
        type=int,
        default=1,
        metavar="N",
        help="trace repetitions per run (default 1)",
    )
    from repro.audit.cli import add_audit_parser

    add_audit_parser(sub)
    return parser


def _resolve_ids(experiment: str) -> list[str] | None:
    """Expand 'all' / validate one id; print the valid ids on failure."""
    specs = all_experiments()
    if experiment == "all":
        return list(specs)
    if experiment not in specs:
        print(f"error: unknown experiment {experiment!r}", file=sys.stderr)
        print("valid ids: " + " ".join(specs), file=sys.stderr)
        return None
    return [experiment]


def _emit_result(result, args: argparse.Namespace) -> None:
    """Render one result and write its CSV/SVG side outputs."""
    if not args.quiet:
        print(result.render())
        print()
    if args.csv_dir:
        for path in result.write_csvs(args.csv_dir):
            print(f"wrote {path}", file=sys.stderr)
    if args.svg_dir:
        from repro.viz.autosvg import write_svgs

        for path in write_svgs(result, args.svg_dir):
            print(f"wrote {path}", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    ids = _resolve_ids(args.experiment)
    if ids is None:
        return 2
    for out_dir in (args.csv_dir, args.svg_dir):
        if out_dir:
            Path(out_dir).mkdir(parents=True, exist_ok=True)
    from repro import telemetry

    # Batch invocations go through the runtime scheduler; a bare
    # single-experiment `run` keeps the legacy in-process path (which
    # attaches per-run telemetry tables under --trace).
    batch = (
        args.experiment == "all"
        or args.jobs > 1
        or args.journal is not None
        or args.resume is not None
    )
    if args.trace:
        telemetry.configure(enabled=True, trace_path=args.trace)
    try:
        if batch:
            return _run_batch(ids, args)
        for exp_id in ids:
            result = run_experiment(exp_id, quick=not args.full)
            _emit_result(result, args)
    finally:
        if args.trace:
            telemetry.disable()
            print(f"wrote trace {args.trace}", file=sys.stderr)
    return 0


def _run_batch(ids: list[str], args: argparse.Namespace) -> int:
    from repro.report import batch_summary_section
    from repro.runtime import (
        ResultCache,
        RunJournal,
        completed_tasks,
        run_batch,
    )

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    journal = None
    resume_completed: set[str] = set()
    if args.resume:
        resume_completed = completed_tasks(args.resume)
        journal = RunJournal(args.resume, append=True)
    elif args.journal:
        journal = RunJournal(args.journal)
    try:
        summary = run_batch(
            ids,
            quick=not args.full,
            jobs=args.jobs,
            cache=cache,
            journal=journal,
            resume_completed=resume_completed,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            backoff_max=args.backoff_max,
        )
    finally:
        if journal is not None:
            journal.close()
    for outcome in summary.outcomes:
        if outcome.result is not None:
            _emit_result(outcome.result, args)
    print(batch_summary_section(summary), file=sys.stderr)
    return 1 if summary.failed or summary.timed_out else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runtime import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    print(cache.stats().render())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    ids = _resolve_ids(args.experiment)
    if ids is None:
        return 2
    from repro import telemetry
    from repro.telemetry.summary import render_profile

    with telemetry.session(trace_path=args.trace, attach_summary=False):
        if args.jobs > 1:
            # The scheduler path merges worker-side spans back into this
            # process's tracer, so the breakdown below covers them too.
            # Cache disabled: a cache hit would profile deserialization.
            from repro.runtime import run_batch

            run_batch(ids, quick=not args.full, jobs=args.jobs, cache=None)
        else:
            for exp_id in ids:
                run_experiment(exp_id, quick=not args.full)
        print(f"== profile: {', '.join(ids)} ==")
        print()
        print(
            render_profile(
                telemetry.get_tracer().finished(),
                telemetry.get_registry().snapshot(),
            )
        )
        print()
        for m in telemetry.manifests():
            rss = (
                f"{m.peak_rss_bytes / 2**20:.1f} MiB"
                if m.peak_rss_bytes
                else "n/a"
            )
            print(
                f"manifest {m.run_id}: {m.experiment_id} "
                f"({'quick' if m.quick else 'full'}) wall "
                f"{m.wall_time_s:.3f} s, peak RSS {rss}, status {m.status}"
            )
    if args.trace:
        print(f"wrote trace {args.trace}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import analyze

    try:
        trace = analyze.load_trace(args.path)
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    json_format = getattr(args, "format", "text") == "json"
    if trace.n_skipped_lines and not json_format:
        # JSON outputs carry the count in-band as n_skipped_lines.
        print(
            f"note: skipped {trace.n_skipped_lines} undecodable line(s) "
            f"in {args.path} (truncated write?)",
            file=sys.stderr,
        )
    if args.trace_command == "tree":
        print(analyze.render_tree(trace, max_depth=args.max_depth))
        return 0
    if args.trace_command == "critical-path":
        steps = analyze.critical_path(trace)
        if json_format:
            print(analyze.critical_path_as_json(trace, steps))
        else:
            print(analyze.render_critical_path(steps))
        return 0
    if args.trace_command == "top":
        rows = analyze.aggregate_spans(trace)
        if json_format:
            print(analyze.top_as_json(trace, rows))
        else:
            print(analyze.render_top(rows))
        return 0
    lines = analyze.fold_stacks(trace)
    text = "\n".join(lines)
    if args.output:
        Path(args.output).write_text(text + "\n" if text else "")
        print(
            f"wrote {len(lines)} folded stack(s) to {args.output}",
            file=sys.stderr,
        )
    elif text:
        print(text)
    else:
        print("(no spans in trace)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro import telemetry
    from repro.serve.app import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        no_cache=args.no_cache,
        timeout_s=args.timeout,
        retries=args.retries,
    )
    if args.trace:
        telemetry.configure(enabled=True, trace_path=args.trace)
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        if args.trace:
            telemetry.disable()
            print(f"wrote trace {args.trace}", file=sys.stderr)
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import run_bench

    doc = run_bench(
        out=Path(args.output),
        clients=args.clients,
        requests_per_client=args.requests,
        distinct=args.distinct,
        identical=args.identical,
        seed=args.seed,
        jobs=args.jobs,
        slo_p99_ms=args.slo_p99_ms,
    )
    verdict = doc["verdict"]
    mixed = doc["mixed"]
    print(
        f"serve-bench: {mixed['requests']} requests in "
        f"{mixed['elapsed_s']:.2f}s ({mixed['throughput_rps']:.0f} rps), "
        f"advise p50 {mixed['routes']['advise']['p50_ms']:.2f} ms / "
        f"p99 {mixed['routes']['advise']['p99_ms']:.2f} ms"
    )
    print(
        f"coalescing proof: {doc['proof']['identical_concurrent']} identical "
        f"concurrent -> {doc['proof']['engine_executions']} engine "
        f"execution(s); coalesced ratio "
        f"{doc['ratios']['coalesced']:.2f}, cache-hit ratio "
        f"{doc['ratios']['cache_hit']:.2f}"
    )
    print(f"wrote {args.output}")
    if not verdict["ok"]:
        failed = [
            k
            for k in ("slo_ok", "coalescing_ok", "no_failures")
            if not verdict[k]
        ]
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    """Price kernels on the energy ledger; non-zero exit on violations."""
    import json

    from repro.experiments.results import DataTable
    from repro.power.ledger import (
        ENERGY_CONFIGS,
        demo_kernel,
        pareto_front,
        price_config,
    )

    kernel_names = (
        ["stream", "gemm", "cholesky", "spmv", "sptrans", "sptrsv",
         "stencil", "fft"]
        if args.kernel == "all"
        else [args.kernel]
    )
    configs = [
        (platform, mode)
        for platform, mode in ENERGY_CONFIGS
        if args.platform in ("all", platform)
    ]
    payload = []
    violations: list[str] = []
    for name in kernel_names:
        runs = [
            price_config(
                demo_kernel(name), platform, mode,
                scale=args.scale, reps=args.reps,
            )
            for platform, mode in configs
        ]
        flags = pareto_front(runs)
        platform_flags: list[bool] = [False] * len(runs)
        for platform in ("broadwell", "knl"):
            sub = [(i, r) for i, r in enumerate(runs) if r.platform == platform]
            for (i, _), flag in zip(sub, pareto_front([r for _, r in sub])):
                platform_flags[i] = flag
        for run_ in runs:
            violations.extend(
                f"{name} {run_.platform}/{run_.mode}: {v}"
                for v in run_.ledger.conservation_violations()
            )
        payload.append(
            {
                "kernel": name,
                "runs": [
                    {
                        **run_.as_dict(),
                        "ledger": run_.ledger.as_dict(),
                        "pareto": flag,
                        "platform_pareto": pflag,
                    }
                    for run_, flag, pflag in zip(runs, flags, platform_flags)
                ],
            }
        )
        if args.format == "text":
            level_rows = [
                (f"{r.platform}/{r.mode}", lv.name, lv.hits, lv.misses,
                 lv.fills, lv.writebacks, lv.dynamic_j)
                for r in runs
                for lv in r.ledger.levels
            ]
            print(f"== {name} ==")
            print(
                DataTable(
                    "levels",
                    ("config", "level", "hits", "misses", "fills",
                     "writebacks", "dynamic_j"),
                    level_rows,
                ).render(max_rows=len(level_rows))
            )
            pareto_rows = [
                (f"{r.platform}/{r.mode}", r.seconds, r.energy_j, r.edp_js,
                 r.gflops_per_watt,
                 "*" if f else "", "*" if pf else "")
                for r, f, pf in zip(runs, flags, platform_flags)
            ]
            print(
                DataTable(
                    "pareto",
                    ("config", "seconds", "energy_j", "edp_js",
                     "gflops_per_watt", "pareto", "platform_pareto"),
                    pareto_rows,
                ).render()
            )
            print()
    if args.format == "json":
        print(
            json.dumps(
                {"kernels": payload, "violations": violations}, indent=2
            )
        )
    if violations:
        for violation in violations:
            print(f"CONSERVATION VIOLATION: {violation}", file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id, spec in all_experiments().items():
            print(f"{exp_id:<8} {spec.paper_artifact:<24} {spec.title}")
        return 0
    if args.command == "validate":
        from repro.validation import report, validate_all

        if args.sampled:
            from repro.kernels import SpmvKernel, SptrsvKernel
            from repro.sparse import generators
            from repro.trace import chunk_arrays, expand_lines
            from repro.validation import (
                validate_case_streamed,
                validate_kernel_streamed,
                workload_zoo,
            )

            cases = []
            for name, factory in workload_zoo().items():
                addrs, wr = factory()
                lines, lw = expand_lines(addrs, 8, wr)
                cases.append(
                    validate_case_streamed(
                        name,
                        chunk_arrays(lines, lw, 1 << 14),
                        window=args.window,
                        period=args.period,
                    )
                )
            # The sparse solvers on generated matrices stand in for the
            # paper's UF-matrix runs: their chunked traces stream through
            # simulator and estimator without ever materializing.
            for kernel in (
                SpmvKernel.from_matrix(generators.random_uniform(600, 6000, seed=7)),
                SptrsvKernel.from_matrix(generators.banded(600, 4000, seed=8)),
            ):
                cases.append(
                    validate_kernel_streamed(
                        kernel, window=args.window, period=args.period
                    )
                )
            print(report(cases))
            return 0
        print(report(validate_all()))
        return 0
    if args.command == "report":
        specs = all_experiments()
        unknown = [e for e in args.experiments if e not in specs]
        if unknown:
            print(
                "error: unknown experiment(s) " + ", ".join(map(repr, unknown)),
                file=sys.stderr,
            )
            print("valid ids: " + " ".join(specs), file=sys.stderr)
            return 2
        from repro import report as report_mod

        cache = None
        if args.jobs > 1 and not args.no_cache:
            from repro.runtime import ResultCache

            cache = ResultCache(args.cache_dir)
        path = report_mod.write(
            args.output,
            quick=not args.full,
            experiment_ids=args.experiments or None,
            jobs=args.jobs,
            cache=cache,
        )
        print(f"wrote {path}")
        return 0
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "energy":
        return _cmd_energy(args)
    if args.command == "audit":
        from repro.audit.cli import main as audit_main

        return audit_main(args)
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    try:
        sys.exit(main())
    except BrokenPipeError:
        # `repro trace tree run.jsonl | head` closes stdout early;
        # exit with SIGPIPE's conventional status instead of a traceback.
        sys.exit(141)
