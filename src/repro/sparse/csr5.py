"""CSR5 storage format (Liu & Vinter, ICS '15) — the SpMV format of the paper.

CSR5 partitions the nonzero space into 2-D tiles of ``omega`` lanes by
``sigma`` slots (``omega * sigma`` nonzeros per tile, the last tile
ragged). Inside a tile, values and column indices are stored
*transposed* (lane-major), which is what makes the layout SIMD-friendly,
and a per-tile descriptor records where rows start (``bit_flag``) plus the
first row touched (``tile_row``). SpMV then reduces each tile with a
segmented sum and scatters per-row partials into ``y`` — load-balanced in
nnz rather than rows, which is the property the paper credits for CSR5's
robustness across sparsity structures.

This implementation keeps the real structural elements (tiled transposed
layout, bit flags, segmented reduction) in vectorized NumPy; the fast
path :func:`spmv_csr5` loops only over tiles.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.sparse.csr import CSRMatrix

#: Defaults matching the AVX2 configuration of the reference code.
DEFAULT_OMEGA = 4
DEFAULT_SIGMA = 16


@dataclasses.dataclass
class CSR5Tile:
    """One tile: transposed payload plus its descriptor."""

    vals: np.ndarray  # float64[n] in lane-major (transposed) order
    cols: np.ndarray  # int32[n]
    row_of: np.ndarray  # int32[n] — owning row per slot, logical order
    bit_flag: np.ndarray  # bool[n] — True where a new row starts
    tile_row: int  # first row represented in the tile

    @property
    def nnz(self) -> int:
        return len(self.vals)


@dataclasses.dataclass
class CSR5Matrix:
    """A CSR5-encoded square sparse matrix."""

    n_rows: int
    n_cols: int
    nnz: int
    omega: int
    sigma: int
    tiles: list[CSR5Tile]
    indptr: np.ndarray  # retained CSR row pointers (tile_ptr equivalent)

    @property
    def tile_size(self) -> int:
        return self.omega * self.sigma

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    def footprint_bytes(self) -> int:
        """Same Table 2 accounting as CSR: 12*nnz + 20*M (bit flags and
        tile descriptors are a small constant overhead the paper folds in).
        """
        return 12 * self.nnz + 20 * self.n_rows


def _transpose_order(n: int, omega: int, sigma: int) -> np.ndarray:
    """Permutation mapping logical slot -> lane-major storage slot.

    A full tile is a sigma x omega grid filled row-major logically and
    stored column-major (lane-major); ragged last tiles keep logical order.
    """
    if n < omega * sigma:
        return np.arange(n)
    grid = np.arange(omega * sigma).reshape(sigma, omega)
    return grid.T.reshape(-1)


def encode(matrix: CSRMatrix, *, omega: int = DEFAULT_OMEGA, sigma: int = DEFAULT_SIGMA) -> CSR5Matrix:
    """Convert CSR to CSR5."""
    if omega < 1 or sigma < 1:
        raise ValueError("omega and sigma must be >= 1")
    nnz = matrix.nnz
    tile_size = omega * sigma
    # Owning row of each nonzero, in CSR (logical) order.
    row_of = np.repeat(
        np.arange(matrix.n_rows, dtype=np.int32), matrix.row_nnz()
    )
    starts = np.zeros(nnz, dtype=bool)
    starts[matrix.indptr[:-1][matrix.row_nnz() > 0]] = True
    tiles: list[CSR5Tile] = []
    for base in range(0, nnz, tile_size):
        end = min(base + tile_size, nnz)
        n = end - base
        perm = _transpose_order(n, omega, sigma)
        logical_vals = matrix.data[base:end]
        logical_cols = matrix.indices[base:end]
        logical_rows = row_of[base:end]
        logical_flags = starts[base:end].copy()
        if n > 0:
            logical_flags[0] = True  # tile boundary starts a segment
        tiles.append(
            CSR5Tile(
                vals=logical_vals[perm],
                cols=logical_cols[perm],
                row_of=logical_rows,
                bit_flag=logical_flags,
                tile_row=int(logical_rows[0]) if n else 0,
            )
        )
    return CSR5Matrix(
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        nnz=nnz,
        omega=omega,
        sigma=sigma,
        tiles=tiles,
        indptr=matrix.indptr.copy(),
    )


def decode(m: CSR5Matrix) -> CSRMatrix:
    """Recover the CSR form (inverse of :func:`encode`)."""
    vals = np.empty(m.nnz)
    cols = np.empty(m.nnz, dtype=np.int32)
    base = 0
    for tile in m.tiles:
        n = tile.nnz
        perm = _transpose_order(n, m.omega, m.sigma)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(n)
        vals[base : base + n] = tile.vals[inv]
        cols[base : base + n] = tile.cols[inv]
        base += n
    return CSRMatrix(
        n_rows=m.n_rows,
        n_cols=m.n_cols,
        indptr=m.indptr.copy(),
        indices=cols,
        data=vals,
    )


def spmv_csr5(m: CSR5Matrix, x: np.ndarray) -> np.ndarray:
    """y = A @ x using per-tile segmented sums (the CSR5 algorithm)."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (m.n_cols,):
        raise ValueError(f"x must have shape ({m.n_cols},)")
    y = np.zeros(m.n_rows)
    for tile in m.tiles:
        n = tile.nnz
        if n == 0:
            continue
        perm = _transpose_order(n, m.omega, m.sigma)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(n)
        # Gather products back into logical (row-contiguous) order, then
        # reduce each segment delimited by the bit flags.
        products = (tile.vals * x[tile.cols])[inv]
        seg_starts = np.flatnonzero(tile.bit_flag)
        partials = np.add.reduceat(products, seg_starts)
        rows = tile.row_of[seg_starts]
        # A row can span tiles (and segments); accumulate, don't assign.
        np.add.at(y, rows, partials)
    return y
