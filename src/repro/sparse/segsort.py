"""Segmented sort (Hou et al., ICS '17) and row ordering.

The paper preprocesses every sparse input by ordering matrix rows with a
segmented sort "for best performance" (Section 3.3). A segmented sort
sorts keys independently within each segment of a partitioned array; we
implement it vectorized via a composite lexicographic argsort, then build
the row-by-length ordering on top.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.csr import CSRMatrix


def segmented_argsort(keys: np.ndarray, seg_offsets: np.ndarray) -> np.ndarray:
    """Indices that sort ``keys`` ascending within each segment.

    ``seg_offsets`` are CSR-style boundaries: segment ``s`` spans
    ``keys[seg_offsets[s]:seg_offsets[s+1]]``.
    """
    keys = np.asarray(keys)
    seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
    if len(seg_offsets) < 1 or seg_offsets[0] != 0 or seg_offsets[-1] != len(keys):
        raise ValueError("seg_offsets must start at 0 and end at len(keys)")
    if np.any(np.diff(seg_offsets) < 0):
        raise ValueError("seg_offsets must be non-decreasing")
    seg_of = np.repeat(
        np.arange(len(seg_offsets) - 1), np.diff(seg_offsets)
    )
    # Stable sort on key with segment as the major radix keeps segments
    # contiguous and sorts inside each one.
    return np.lexsort((keys, seg_of))


def segmented_sort(keys: np.ndarray, seg_offsets: np.ndarray) -> np.ndarray:
    """Sorted copy of ``keys`` (ascending within each segment)."""
    return np.asarray(keys)[segmented_argsort(keys, seg_offsets)]


def order_rows_by_length(matrix: CSRMatrix, *, descending: bool = True) -> tuple[CSRMatrix, np.ndarray]:
    """Permute rows so same-length rows are adjacent (longest first).

    Returns the permuted matrix and the permutation ``perm`` such that
    ``out.row(i) == matrix.row(perm[i])``. This is the preprocessing the
    benchmarked SpMV/SpTRANS codes apply for load balance.
    """
    lengths = matrix.row_nnz()
    order = np.argsort(-lengths if descending else lengths, kind="stable")
    permuted = matrix.to_scipy()[order]
    return CSRMatrix.from_scipy(sp.csr_matrix(permuted)), order
