"""Sync-free SpTRSV scheduling (Liu, Li, Hogg, Duff, Vinter — Euro-Par '16).

The paper's SpTRSV implementation is SpMP's level-scheduled P2P solver;
its own reference [31] (by two of the paper's authors) removes the level
barriers entirely: each row carries an in-degree counter, a row executes
as soon as its last dependency resolves, and completion propagates
point-to-point. On massively threaded hardware this beats level
scheduling exactly when level widths are ragged.

We implement both faces:

* :func:`solve_syncfree` — a functional solve whose execution order is
  the dependency-resolution order (validated against the level solver).
* :func:`simulate_schedule` — an event-driven timing simulation on ``p``
  virtual cores with per-row costs, returning makespan and core
  utilization for *both* disciplines, so the scheduling benefit is a
  measured quantity rather than an assumption. This feeds the ext5
  experiment and refines the SpTRSV parallelism story: level scheduling
  pays ``n_levels`` barrier latencies; sync-free pays only the critical
  path.
"""

from __future__ import annotations

import dataclasses
import heapq

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.levels import build_levels


def solve_syncfree(lower: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``L x = b`` in dependency-resolution order.

    Rows are processed from a ready queue seeded with in-degree-zero rows;
    completing row j decrements the in-degree of every row that reads
    x[j]. The result is identical to forward substitution; the *order*
    is the sync-free execution order.
    """
    if not lower.is_square:
        raise ValueError("matrix must be square")
    b = np.asarray(b, dtype=np.float64)
    n = lower.n_rows
    if b.shape != (n,):
        raise ValueError(f"b must have shape ({n},)")
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    # In-degree = strictly-lower nonzeros per row; consumers via CSC-ish
    # adjacency built once.
    in_degree = np.zeros(n, dtype=np.int64)
    consumers: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        for k in range(int(indptr[i]), int(indptr[i + 1])):
            j = int(indices[k])
            if j < i:
                in_degree[i] += 1
                consumers[j].append(i)
    ready = [i for i in range(n) if in_degree[i] == 0]
    x = np.zeros(n)
    done = 0
    while ready:
        next_ready: list[int] = []
        for i in ready:
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            cols = indices[lo:hi]
            vals = data[lo:hi]
            mask = cols < i
            acc = float(vals[mask] @ x[cols[mask]])
            diag_pos = np.searchsorted(cols, i)
            if diag_pos >= len(cols) or cols[diag_pos] != i:
                raise ValueError(f"missing diagonal in row {i}")
            x[i] = (b[i] - acc) / vals[diag_pos]
            done += 1
            for c in consumers[i]:
                in_degree[c] -= 1
                if in_degree[c] == 0:
                    next_ready.append(c)
        ready = next_ready
    if done != n:
        raise ValueError("dependency cycle: matrix is not lower-triangular")
    return x


@dataclasses.dataclass(frozen=True)
class ScheduleResult:
    """Timing outcome of one scheduling discipline."""

    discipline: str  # "level" or "sync-free"
    makespan: float  # abstract time units
    utilization: float  # busy core-time / (makespan * cores)
    critical_path: float  # lower bound on any schedule

    @property
    def efficiency(self) -> float:
        """makespan / critical_path: 1.0 = optimal."""
        return self.critical_path / self.makespan if self.makespan else 0.0


def _row_costs(lower: CSRMatrix, per_nnz_cost: float, base_cost: float) -> np.ndarray:
    return base_cost + per_nnz_cost * np.diff(lower.indptr)


def simulate_schedule(
    lower: CSRMatrix,
    *,
    cores: int,
    discipline: str = "sync-free",
    per_nnz_cost: float = 1.0,
    base_cost: float = 2.0,
    barrier_cost: float = 20.0,
) -> ScheduleResult:
    """Event-driven makespan simulation of one discipline.

    * ``level``: rows of one wavefront are list-scheduled on ``cores``
      workers; a barrier of ``barrier_cost`` separates consecutive levels.
    * ``sync-free``: rows become ready the moment their last dependency
      finishes; ready rows are greedily assigned to the earliest-free
      core (no barriers).
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    if discipline not in ("level", "sync-free"):
        raise ValueError("discipline must be 'level' or 'sync-free'")
    n = lower.n_rows
    costs = _row_costs(lower, per_nnz_cost, base_cost)
    schedule = build_levels(lower)
    # Critical path: longest cost-weighted dependency chain.
    depth = np.zeros(n)
    indptr, indices = lower.indptr, lower.indices
    for i in range(n):
        deps = indices[int(indptr[i]) : int(indptr[i + 1])]
        deps = deps[deps < i]
        longest = float(depth[deps].max()) if len(deps) else 0.0
        depth[i] = longest + costs[i]
    critical = float(depth.max()) if n else 0.0
    busy = float(costs.sum())

    if discipline == "level":
        makespan = 0.0
        for lvl in range(schedule.n_levels):
            rows = schedule.rows_in_level(lvl)
            lvl_costs = np.sort(costs[rows])[::-1]
            workers = np.zeros(cores)
            for c in lvl_costs:  # LPT list scheduling
                idx = int(np.argmin(workers))
                workers[idx] += c
            makespan += float(workers.max()) + barrier_cost
        makespan -= barrier_cost if schedule.n_levels else 0.0
    else:
        # Sync-free: rows finish when (ready time + queueing) + cost.
        finish = np.zeros(n)
        core_free = [0.0] * cores
        heapq.heapify(core_free)
        # Process rows in a topological order by readiness time.
        order = sorted(range(n), key=lambda i: (depth[i] - costs[i], i))
        for i in order:
            deps = indices[int(indptr[i]) : int(indptr[i + 1])]
            deps = deps[deps < i]
            ready = float(finish[deps].max()) if len(deps) else 0.0
            start = max(ready, heapq.heappop(core_free))
            finish[i] = start + costs[i]
            heapq.heappush(core_free, float(finish[i]))
        makespan = float(finish.max()) if n else 0.0

    utilization = busy / (makespan * cores) if makespan else 0.0
    return ScheduleResult(
        discipline=discipline,
        makespan=makespan,
        utilization=min(1.0, utilization),
        critical_path=critical,
    )


def scheduling_speedup(
    lower: CSRMatrix, *, cores: int, barrier_cost: float = 20.0
) -> float:
    """Makespan ratio level / sync-free (> 1 means sync-free wins)."""
    lvl = simulate_schedule(
        lower, cores=cores, discipline="level", barrier_cost=barrier_cost
    )
    sf = simulate_schedule(lower, cores=cores, discipline="sync-free")
    return lvl.makespan / sf.makespan if sf.makespan else float("inf")
