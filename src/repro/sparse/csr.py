"""Compressed Sparse Row container.

A minimal, validated CSR matrix built on NumPy arrays. The kernels in
:mod:`repro.kernels` operate on this container directly; conversions to
SciPy exist only for test oracles.

The memory footprint follows the paper's Table 2 accounting for SpMV:
``12*nnz + 20*M`` bytes — 8-byte values + 4-byte column indices per
nonzero, 4-byte row pointers plus the 8-byte x and y vectors per row.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.sparse as sp


@dataclasses.dataclass
class CSRMatrix:
    """CSR sparse matrix (double values, int32 indices)."""

    n_rows: int
    n_cols: int
    indptr: np.ndarray  # int64[n_rows + 1]
    indices: np.ndarray  # int32[nnz], column ids, sorted within each row
    data: np.ndarray  # float64[nnz]

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int32)
        self.data = np.ascontiguousarray(self.data, dtype=np.float64)
        if self.n_rows < 0 or self.n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if len(self.indptr) != self.n_rows + 1:
            raise ValueError("indptr length must be n_rows + 1")
        if self.indptr[0] != 0 or np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must start at 0 and be non-decreasing")
        if self.indptr[-1] != len(self.indices) or len(self.indices) != len(self.data):
            raise ValueError("indices/data length must equal indptr[-1]")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.n_cols
        ):
            raise ValueError("column index out of range")

    # -- properties ----------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def is_square(self) -> bool:
        return self.n_rows == self.n_cols

    def row_nnz(self) -> np.ndarray:
        """Number of nonzeros per row."""
        return np.diff(self.indptr)

    def footprint_bytes(self) -> int:
        """SpMV working footprint per paper Table 2: 12*nnz + 20*M."""
        return 12 * self.nnz + 20 * self.n_rows

    def column_span(self) -> float:
        """Mean per-row span of touched columns (x-vector locality proxy)."""
        if self.nnz == 0:
            return 0.0
        starts = self.indptr[:-1]
        ends = self.indptr[1:]
        mask = ends > starts
        if not mask.any():
            return 0.0
        first = self.indices[starts[mask]]
        last = self.indices[ends[mask] - 1]
        return float(np.mean(last - first + 1))

    # -- operations ------------------------------------------------------------

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column ids, values) of row ``i`` as views."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def diagonal(self) -> np.ndarray:
        """Main-diagonal values (zeros where absent)."""
        diag = np.zeros(min(self.n_rows, self.n_cols))
        for i in range(min(self.n_rows, self.n_cols)):
            cols, vals = self.row(i)
            pos = np.searchsorted(cols, i)
            if pos < len(cols) and cols[pos] == i:
                diag[i] = vals[pos]
        return diag

    def lower_triangle(self, *, unit_diagonal_fill: float = 1.0) -> "CSRMatrix":
        """Strictly-lower + diagonal part, inserting missing diagonal entries.

        Mirrors the paper's SpTRSV preparation (appendix A.2.5): "a
        diagonal is added to any singular matrices to make them
        nonsingular, and the lower triangular part is tested".
        """
        if not self.is_square:
            raise ValueError("lower_triangle requires a square matrix")
        coo = self.to_scipy().tocoo()
        keep = coo.row >= coo.col
        rows = coo.row[keep]
        cols = coo.col[keep]
        vals = coo.data[keep]
        present = np.zeros(self.n_rows, dtype=bool)
        present[rows[rows == cols]] = True
        missing = np.flatnonzero(~present)
        rows = np.concatenate([rows, missing])
        cols = np.concatenate([cols, missing])
        vals = np.concatenate([vals, np.full(len(missing), unit_diagonal_fill)])
        lower = sp.coo_matrix((vals, (rows, cols)), shape=self.shape).tocsr()
        # Guard against zero diagonals that survived (explicit zeros).
        dg = lower.diagonal()
        zero = dg == 0.0
        if zero.any():
            lower = lower + sp.diags(np.where(zero, unit_diagonal_fill, 0.0))
        return CSRMatrix.from_scipy(lower.tocsr())

    # -- conversions -----------------------------------------------------------

    @classmethod
    def from_scipy(cls, m: sp.spmatrix) -> "CSRMatrix":
        csr = m.tocsr()
        csr.sort_indices()
        return cls(
            n_rows=csr.shape[0],
            n_cols=csr.shape[1],
            indptr=csr.indptr,
            indices=csr.indices,
            data=csr.data,
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        return cls.from_scipy(sp.csr_matrix(np.asarray(dense, dtype=np.float64)))

    def to_scipy(self) -> sp.csr_matrix:
        return sp.csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )

    def to_dense(self) -> np.ndarray:
        return self.to_scipy().toarray()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix({self.n_rows}x{self.n_cols}, nnz={self.nnz})"
