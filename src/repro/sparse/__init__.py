"""Sparse-matrix substrate: formats, preprocessing, generators, collection."""

from repro.sparse.collection import (
    COLLECTION_SIZE,
    MIN_NNZ,
    build_collection,
    footprint_mb,
    materializable,
)
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csr5 import CSR5Matrix, decode, encode, spmv_csr5
from repro.sparse.descriptors import (
    MATERIALIZE_NNZ_LIMIT,
    MatrixDescriptor,
    default_locality,
    default_parallelism,
    from_matrix,
    from_params,
    measure_structure,
)
from repro.sparse.generators import FAMILIES, generate
from repro.sparse.levels import LevelSchedule, build_levels
from repro.sparse.mmio import read_mm, round_trip, write_mm
from repro.sparse.segsort import order_rows_by_length, segmented_argsort, segmented_sort
from repro.sparse.syncfree import (
    ScheduleResult,
    scheduling_speedup,
    simulate_schedule,
    solve_syncfree,
)

__all__ = [
    "COLLECTION_SIZE",
    "CSCMatrix",
    "CSR5Matrix",
    "CSRMatrix",
    "FAMILIES",
    "LevelSchedule",
    "MATERIALIZE_NNZ_LIMIT",
    "MIN_NNZ",
    "MatrixDescriptor",
    "build_collection",
    "build_levels",
    "decode",
    "default_locality",
    "default_parallelism",
    "encode",
    "footprint_mb",
    "from_matrix",
    "from_params",
    "generate",
    "materializable",
    "measure_structure",
    "order_rows_by_length",
    "read_mm",
    "ScheduleResult",
    "scheduling_speedup",
    "simulate_schedule",
    "solve_syncfree",
    "round_trip",
    "segmented_argsort",
    "segmented_sort",
    "spmv_csr5",
    "write_mm",
]
