"""Matrix Market (coordinate) I/O.

The paper's artifact distributes its 968 inputs as ``.mtx`` files from the
UF (SuiteSparse) collection. We implement the coordinate subset of the
format — real/integer/pattern fields, general/symmetric symmetry — so the
synthetic collection can round-trip through the same file format the
original kernels consumed.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np
import scipy.sparse as sp

from repro.sparse.csr import CSRMatrix

_HEADER = "%%MatrixMarket matrix coordinate {field} {symmetry}\n"


def write_mm(matrix: CSRMatrix, dest: str | Path | TextIO, *, comment: str = "") -> None:
    """Write a CSR matrix in coordinate/real/general Matrix Market form."""
    coo = matrix.to_scipy().tocoo()
    own = isinstance(dest, (str, Path))
    fh: TextIO = open(dest, "w") if own else dest  # type: ignore[arg-type]
    try:
        fh.write(_HEADER.format(field="real", symmetry="general"))
        if comment:
            for line in comment.splitlines():
                fh.write(f"%{line}\n")
        fh.write(f"{matrix.n_rows} {matrix.n_cols} {coo.nnz}\n")
        for r, c, v in zip(coo.row, coo.col, coo.data):
            fh.write(f"{r + 1} {c + 1} {float(v)!r}\n")
    finally:
        if own:
            fh.close()


def read_mm(src: str | Path | TextIO) -> CSRMatrix:
    """Read a coordinate Matrix Market file into CSR.

    Supports ``real``/``integer``/``pattern`` fields and ``general``/
    ``symmetric``/``skew-symmetric`` symmetry (pattern entries become 1.0).
    """
    own = isinstance(src, (str, Path))
    fh: TextIO = open(src) if own else src  # type: ignore[arg-type]
    try:
        header = fh.readline()
        parts = header.strip().split()
        if (
            len(parts) < 5
            or parts[0] != "%%MatrixMarket"
            or parts[1].lower() != "matrix"
            or parts[2].lower() != "coordinate"
        ):
            raise ValueError(f"unsupported MatrixMarket header: {header.strip()!r}")
        field = parts[3].lower()
        symmetry = parts[4].lower()
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"unsupported field type: {field}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise ValueError(f"unsupported symmetry: {symmetry}")
        line_no = 1  # the header line just read
        line = fh.readline()
        line_no += 1
        while line and (line.startswith("%") or not line.strip()):
            line = fh.readline()
            line_no += 1
        try:
            n_rows, n_cols, nnz = (int(tok) for tok in line.split())
        except ValueError:
            raise ValueError(
                f"line {line_no}: expected 'rows cols nnz' size line, "
                f"got {line.strip()!r}"
            ) from None
        rows, cols, vals = _read_entries(fh, nnz, field, line_no)
    finally:
        if own:
            fh.close()
    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirror_rows, mirror_cols, mirror_vals = cols[off], rows[off], sign * vals[off]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, mirror_vals])
    coo = sp.coo_matrix((vals, (rows, cols)), shape=(n_rows, n_cols))
    return CSRMatrix.from_scipy(coo.tocsr())


def _read_entries(
    fh: TextIO, nnz: int, field: str, size_line_no: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Parse the ``nnz`` coordinate entries following the size line.

    Blank lines inside the entry section are skipped (some exporters pad
    with them); a structurally short line raises a :class:`ValueError`
    naming its 1-based line number instead of the bare ``IndexError`` a
    per-token loop would produce. The numeric conversion is vectorized
    (one ``astype`` per column) so multi-million-entry UF matrices parse
    in NumPy rather than in a Python loop; only when a bulk conversion
    fails do we re-scan to locate and report the offending line.
    """
    if nnz == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    want = 2 if field == "pattern" else 3
    entries: list[list[str]] = []
    line_nos: list[int] = []
    line_no = size_line_no
    while len(entries) < nnz:
        line = fh.readline()
        if not line:
            raise ValueError(
                f"line {line_no + 1}: unexpected end of file after "
                f"{len(entries)} of {nnz} entries"
            )
        line_no += 1
        toks = line.split()
        if not toks:
            continue  # blank padding line inside the entry section
        if len(toks) < want:
            raise ValueError(
                f"line {line_no}: matrix entry needs {want} fields "
                f"({'row col' if want == 2 else 'row col value'}), "
                f"got {line.strip()!r}"
            )
        entries.append(toks[:want])
        line_nos.append(line_no)
    table = np.array(entries, dtype=object)
    try:
        rows = table[:, 0].astype(np.int64) - 1
        cols = table[:, 1].astype(np.int64) - 1
        vals = (
            np.ones(nnz, dtype=np.float64)
            if field == "pattern"
            else table[:, 2].astype(np.float64)
        )
    except (ValueError, TypeError):
        for toks, bad_line_no in zip(entries, line_nos):
            try:
                int(toks[0]), int(toks[1])
                if field != "pattern":
                    float(toks[2])
            except ValueError:
                raise ValueError(
                    f"line {bad_line_no}: malformed matrix entry "
                    f"{' '.join(toks)!r}"
                ) from None
        raise
    return rows, cols, vals


def round_trip(matrix: CSRMatrix) -> CSRMatrix:
    """Write + read through an in-memory buffer (testing helper)."""
    buf = io.StringIO()
    write_mm(matrix, buf)
    buf.seek(0)
    return read_mm(buf)
