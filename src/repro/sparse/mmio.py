"""Matrix Market (coordinate) I/O.

The paper's artifact distributes its 968 inputs as ``.mtx`` files from the
UF (SuiteSparse) collection. We implement the coordinate subset of the
format — real/integer/pattern fields, general/symmetric symmetry — so the
synthetic collection can round-trip through the same file format the
original kernels consumed.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np
import scipy.sparse as sp

from repro.sparse.csr import CSRMatrix

_HEADER = "%%MatrixMarket matrix coordinate {field} {symmetry}\n"


def write_mm(matrix: CSRMatrix, dest: str | Path | TextIO, *, comment: str = "") -> None:
    """Write a CSR matrix in coordinate/real/general Matrix Market form."""
    coo = matrix.to_scipy().tocoo()
    own = isinstance(dest, (str, Path))
    fh: TextIO = open(dest, "w") if own else dest  # type: ignore[arg-type]
    try:
        fh.write(_HEADER.format(field="real", symmetry="general"))
        if comment:
            for line in comment.splitlines():
                fh.write(f"%{line}\n")
        fh.write(f"{matrix.n_rows} {matrix.n_cols} {coo.nnz}\n")
        for r, c, v in zip(coo.row, coo.col, coo.data):
            fh.write(f"{r + 1} {c + 1} {float(v)!r}\n")
    finally:
        if own:
            fh.close()


def read_mm(src: str | Path | TextIO) -> CSRMatrix:
    """Read a coordinate Matrix Market file into CSR.

    Supports ``real``/``integer``/``pattern`` fields and ``general``/
    ``symmetric``/``skew-symmetric`` symmetry (pattern entries become 1.0).
    """
    own = isinstance(src, (str, Path))
    fh: TextIO = open(src) if own else src  # type: ignore[arg-type]
    try:
        header = fh.readline()
        parts = header.strip().split()
        if (
            len(parts) < 5
            or parts[0] != "%%MatrixMarket"
            or parts[1].lower() != "matrix"
            or parts[2].lower() != "coordinate"
        ):
            raise ValueError(f"unsupported MatrixMarket header: {header.strip()!r}")
        field = parts[3].lower()
        symmetry = parts[4].lower()
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"unsupported field type: {field}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise ValueError(f"unsupported symmetry: {symmetry}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        n_rows, n_cols, nnz = (int(tok) for tok in line.split())
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            toks = fh.readline().split()
            rows[k] = int(toks[0]) - 1
            cols[k] = int(toks[1]) - 1
            vals[k] = float(toks[2]) if field != "pattern" else 1.0
    finally:
        if own:
            fh.close()
    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirror_rows, mirror_cols, mirror_vals = cols[off], rows[off], sign * vals[off]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, mirror_vals])
    coo = sp.coo_matrix((vals, (rows, cols)), shape=(n_rows, n_cols))
    return CSRMatrix.from_scipy(coo.tocsr())


def round_trip(matrix: CSRMatrix) -> CSRMatrix:
    """Write + read through an in-memory buffer (testing helper)."""
    buf = io.StringIO()
    write_mm(matrix, buf)
    buf.seek(0)
    return read_mm(buf)
