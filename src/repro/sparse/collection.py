"""The synthetic 968-matrix collection.

Stand-in for the paper's input set: all square UF/SuiteSparse matrices
with nnz > 200 000 (968 of 2757 at the time — Section 3.3). We produce
exactly 968 deterministic descriptors whose memory footprints
(12·nnz + 20·M bytes, Table 2) are log-uniform between ~2.4 MB and ~16 GB,
the range the paper's footprint axes span, with structure families mixed
in realistic proportions (grid/banded problems dominate the public
collection; scale-free graphs are a sizable minority).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.sparse.descriptors import MatrixDescriptor, from_params

#: Size of the paper's input set.
COLLECTION_SIZE = 968

#: Minimum nnz filter the paper applies.
MIN_NNZ = 200_000

#: Footprint range targeted by the sampler (bytes).
MIN_FOOTPRINT = 12 * MIN_NNZ + 20 * 1_000  # ≈ 2.4 MB
MAX_FOOTPRINT = 16 * 1024**3  # 16 GiB — past MCDRAM capacity

#: Family mix (weights loosely matching the public collection's makeup).
_FAMILY_WEIGHTS: dict[str, float] = {
    "grid2d": 0.16,
    "grid3d": 0.12,
    "banded": 0.18,
    "block": 0.14,
    "random": 0.12,
    "powerlaw": 0.12,
    "rmat": 0.12,
    "tridiag": 0.04,
}

_COLLECTION_SEED = 20170  # SC '17


def build_collection(
    size: int = COLLECTION_SIZE,
    *,
    seed: int = _COLLECTION_SEED,
    max_footprint: int = MAX_FOOTPRINT,
) -> list[MatrixDescriptor]:
    """Deterministically build the descriptor collection.

    The same ``(size, seed)`` always yields the same matrices, so every
    experiment, test and benchmark sees identical inputs.
    """
    rng = np.random.default_rng(seed)
    families = list(_FAMILY_WEIGHTS)
    weights = np.array([_FAMILY_WEIGHTS[f] for f in families])
    weights = weights / weights.sum()
    descriptors: list[MatrixDescriptor] = []
    log_lo = np.log(MIN_FOOTPRINT)
    log_hi = np.log(max_footprint)
    for k in range(size):
        family = families[int(rng.choice(len(families), p=weights))]
        footprint = float(np.exp(rng.uniform(log_lo, log_hi)))
        # Row-degree (nnz per row) log-uniform in [4, 256): spans the
        # stencil-like and the denser FEM-like regimes.
        row_deg = float(np.exp(rng.uniform(np.log(4.0), np.log(256.0))))
        # footprint = 12*nnz + 20*nnz/row_deg  =>  nnz = fp / (12 + 20/deg)
        nnz = max(MIN_NNZ + 1, int(footprint / (12.0 + 20.0 / row_deg)))
        n_rows = max(64, int(nnz / row_deg))
        mseed = int(rng.integers(0, 2**31 - 1))
        descriptors.append(
            from_params(
                name=f"syn{k:04d}_{family}",
                family=family,
                n_rows=n_rows,
                nnz=nnz,
                seed=mseed,
                jitter=0.3,
            )
        )
    return descriptors


def materializable(
    collection: list[MatrixDescriptor] | None = None,
) -> Iterator[MatrixDescriptor]:
    """Descriptors small enough to generate as real matrices."""
    for d in collection if collection is not None else build_collection():
        if d.can_materialize:
            yield d


def footprint_mb(d: MatrixDescriptor) -> float:
    """Footprint in MB, the x-axis unit of Figures 9–11 and 17–19."""
    return d.footprint_bytes / (1024.0 * 1024.0)
