"""Compressed Sparse Column container — the target format of SpTRANS."""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.sparse as sp

from repro.sparse.csr import CSRMatrix


@dataclasses.dataclass
class CSCMatrix:
    """CSC sparse matrix (double values, int32 indices)."""

    n_rows: int
    n_cols: int
    indptr: np.ndarray  # int64[n_cols + 1]
    indices: np.ndarray  # int32[nnz], row ids, sorted within each column
    data: np.ndarray  # float64[nnz]

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int32)
        self.data = np.ascontiguousarray(self.data, dtype=np.float64)
        if len(self.indptr) != self.n_cols + 1:
            raise ValueError("indptr length must be n_cols + 1")
        if self.indptr[0] != 0 or np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must start at 0 and be non-decreasing")
        if self.indptr[-1] != len(self.indices) or len(self.indices) != len(self.data):
            raise ValueError("indices/data length must equal indptr[-1]")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.n_rows
        ):
            raise ValueError("row index out of range")

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """(row ids, values) of column ``j`` as views."""
        lo, hi = int(self.indptr[j]), int(self.indptr[j + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    @classmethod
    def from_scipy(cls, m: sp.spmatrix) -> "CSCMatrix":
        csc = m.tocsc()
        csc.sort_indices()
        return cls(
            n_rows=csc.shape[0],
            n_cols=csc.shape[1],
            indptr=csc.indptr,
            indices=csc.indices,
            data=csc.data,
        )

    def to_scipy(self) -> sp.csc_matrix:
        return sp.csc_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )

    def to_csr(self) -> CSRMatrix:
        return CSRMatrix.from_scipy(self.to_scipy().tocsr())

    def as_transposed_csr(self) -> CSRMatrix:
        """Reinterpret the CSC arrays as the CSR form of the transpose.

        CSC(A) and CSR(A^T) share identical arrays — this is the zero-copy
        sense in which SpTRANS "transposes" (paper Section 3.1.2: "the CSR
        format is converted to the CSC format, or vice versa").
        """
        return CSRMatrix(
            n_rows=self.n_cols,
            n_cols=self.n_rows,
            indptr=self.indptr,
            indices=self.indices,
            data=self.data,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSCMatrix({self.n_rows}x{self.n_cols}, nnz={self.nnz})"
