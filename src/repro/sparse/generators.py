"""Synthetic sparse-matrix generators.

The paper evaluates on 968 square UF/SuiteSparse matrices with
nnz > 200 000 (Section 3.3). That collection is not redistributable here,
so we generate a deterministic synthetic stand-in spanning the same axes
the paper's figures bin over: memory footprint (∝ nnz), row count, and
sparsity *structure* — from perfectly banded (excellent x-vector locality
in SpMV) to scale-free/random (poor locality), plus the grid Laplacians
and block matrices typical of the real collection.

Every generator takes an explicit ``seed`` and is reproducible.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.csr import CSRMatrix

#: Families available to the collection builder.
FAMILIES = (
    "banded",
    "random",
    "powerlaw",
    "block",
    "grid2d",
    "grid3d",
    "tridiag",
    "rmat",
)


def _finalize(coo: sp.coo_matrix, *, ensure_diagonal: bool) -> CSRMatrix:
    coo.sum_duplicates()
    csr = coo.tocsr()
    if ensure_diagonal:
        dg = csr.diagonal()
        missing = dg == 0.0
        if missing.any():
            csr = csr + sp.diags(np.where(missing, float(csr.shape[0]), 0.0))
    return CSRMatrix.from_scipy(sp.csr_matrix(csr))


def banded(n: int, nnz_target: int, *, seed: int = 0, ensure_diagonal: bool = True) -> CSRMatrix:
    """Matrix with nonzeros confined to a diagonal band.

    Bandwidth is derived from the nnz target; entries inside the band are
    dropped randomly to hit it. These have near-perfect x locality.
    """
    rng = np.random.default_rng(seed)
    per_row = max(1, nnz_target // n)
    half_band = max(1, (per_row + 1) // 2)
    rows = np.repeat(np.arange(n), per_row)
    offsets = rng.integers(-half_band, half_band + 1, size=len(rows))
    cols = np.clip(rows + offsets, 0, n - 1)
    vals = rng.standard_normal(len(rows)) + 2.0
    return _finalize(
        sp.coo_matrix((vals, (rows, cols)), shape=(n, n)),
        ensure_diagonal=ensure_diagonal,
    )


def random_uniform(n: int, nnz_target: int, *, seed: int = 0, ensure_diagonal: bool = True) -> CSRMatrix:
    """Uniformly random pattern — the worst case for x-vector locality."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=nnz_target)
    cols = rng.integers(0, n, size=nnz_target)
    vals = rng.standard_normal(nnz_target) + 2.0
    return _finalize(
        sp.coo_matrix((vals, (rows, cols)), shape=(n, n)),
        ensure_diagonal=ensure_diagonal,
    )


def powerlaw(n: int, nnz_target: int, *, seed: int = 0, alpha: float = 2.1, ensure_diagonal: bool = True) -> CSRMatrix:
    """Scale-free row degrees (Zipf) with uniformly random columns.

    Mimics web/social matrices in the UF collection: a few very heavy rows
    and a long tail — the load-imbalance case CSR5 targets.
    """
    rng = np.random.default_rng(seed)
    degrees = rng.zipf(alpha, size=n).astype(np.int64)
    scale = nnz_target / max(1, degrees.sum())
    degrees = np.maximum(1, (degrees * scale).astype(np.int64))
    rows = np.repeat(np.arange(n), degrees)
    cols = rng.integers(0, n, size=len(rows))
    vals = rng.standard_normal(len(rows)) + 2.0
    return _finalize(
        sp.coo_matrix((vals, (rows, cols)), shape=(n, n)),
        ensure_diagonal=ensure_diagonal,
    )


def block_diagonal(n: int, nnz_target: int, *, seed: int = 0, ensure_diagonal: bool = True) -> CSRMatrix:
    """Dense-ish blocks along the diagonal (FEM-style coupling)."""
    rng = np.random.default_rng(seed)
    per_row = max(1, nnz_target // n)
    block = max(2, per_row)
    n_blocks = -(-n // block)
    rows_l, cols_l = [], []
    for b in range(n_blocks):
        lo = b * block
        hi = min(lo + block, n)
        size = hi - lo
        density = min(1.0, per_row / size)
        mask = rng.random((size, size)) < density
        r, c = np.nonzero(mask)
        rows_l.append(r + lo)
        cols_l.append(c + lo)
    rows = np.concatenate(rows_l)
    cols = np.concatenate(cols_l)
    vals = rng.standard_normal(len(rows)) + 2.0
    return _finalize(
        sp.coo_matrix((vals, (rows, cols)), shape=(n, n)),
        ensure_diagonal=ensure_diagonal,
    )


def grid2d(nx: int, ny: int | None = None, *, seed: int = 0) -> CSRMatrix:
    """5-point Laplacian on an nx-by-ny grid (SPD, diagonally dominant)."""
    ny = ny or nx
    ex = np.ones(nx)
    ey = np.ones(ny)
    tx = sp.diags([-ex[:-1], 2 * ex, -ex[:-1]], [-1, 0, 1])
    ty = sp.diags([-ey[:-1], 2 * ey, -ey[:-1]], [-1, 0, 1])
    lap = sp.kronsum(tx, ty).tocsr() + sp.identity(nx * ny) * 0.01
    return CSRMatrix.from_scipy(sp.csr_matrix(lap))


def grid3d(nx: int, ny: int | None = None, nz: int | None = None, *, seed: int = 0) -> CSRMatrix:
    """7-point Laplacian on a 3-D grid."""
    ny = ny or nx
    nz = nz or nx
    def lap1d(m: int) -> sp.spmatrix:
        e = np.ones(m)
        return sp.diags([-e[:-1], 2 * e, -e[:-1]], [-1, 0, 1])
    lap = sp.kronsum(sp.kronsum(lap1d(nx), lap1d(ny)), lap1d(nz)).tocsr()
    lap = lap + sp.identity(nx * ny * nz) * 0.01
    return CSRMatrix.from_scipy(sp.csr_matrix(lap))


def tridiagonal(n: int, *, seed: int = 0) -> CSRMatrix:
    """Classic tridiagonal system (the extreme banded case)."""
    rng = np.random.default_rng(seed)
    main = rng.random(n) + 3.0
    off = rng.random(n - 1) - 0.5
    return CSRMatrix.from_scipy(
        sp.csr_matrix(sp.diags([off, main, off], [-1, 0, 1]))
    )


def rmat(n: int, nnz_target: int, *, seed: int = 0, a: float = 0.57, b: float = 0.19, c: float = 0.19, ensure_diagonal: bool = True) -> CSRMatrix:
    """Recursive-matrix (R-MAT/Kronecker) pattern — clustered scale-free.

    ``n`` is rounded up to the next power of two internally and trimmed,
    matching the usual graph500-style generator.
    """
    rng = np.random.default_rng(seed)
    scale = max(1, int(np.ceil(np.log2(max(2, n)))))
    rows = np.zeros(nnz_target, dtype=np.int64)
    cols = np.zeros(nnz_target, dtype=np.int64)
    probs = np.array([a, b, c, max(0.0, 1.0 - a - b - c)])
    for bit in range(scale):
        quad = rng.choice(4, size=nnz_target, p=probs)
        rows |= ((quad >> 1) & 1) << bit
        cols |= (quad & 1) << bit
    rows %= n
    cols %= n
    vals = rng.standard_normal(nnz_target) + 2.0
    return _finalize(
        sp.coo_matrix((vals, (rows, cols)), shape=(n, n)),
        ensure_diagonal=ensure_diagonal,
    )


def generate(family: str, n: int, nnz_target: int, *, seed: int = 0) -> CSRMatrix:
    """Dispatch by family name (see :data:`FAMILIES`)."""
    if family == "banded":
        return banded(n, nnz_target, seed=seed)
    if family == "random":
        return random_uniform(n, nnz_target, seed=seed)
    if family == "powerlaw":
        return powerlaw(n, nnz_target, seed=seed)
    if family == "block":
        return block_diagonal(n, nnz_target, seed=seed)
    if family == "grid2d":
        side = max(2, int(np.sqrt(n)))
        return grid2d(side, side, seed=seed)
    if family == "grid3d":
        side = max(2, int(round(n ** (1.0 / 3.0))))
        return grid3d(side, side, side, seed=seed)
    if family == "tridiag":
        return tridiagonal(n, seed=seed)
    if family == "rmat":
        return rmat(n, nnz_target, seed=seed)
    raise ValueError(f"unknown family {family!r}; choose from {FAMILIES}")
