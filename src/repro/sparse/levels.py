"""Dependency level sets for sparse triangular solves.

SpTRSV on ``L x = b`` is inherently sequential (paper Section 3.1.2):
``x[i]`` depends on every ``x[j]`` with ``L[i, j] != 0, j < i``. Level
scheduling groups rows into *wavefronts* — all rows in a level depend only
on earlier levels and can be solved in parallel. The number of levels and
the level-size distribution determine the exploitable parallelism, which
the performance model uses to derive memory-level parallelism (the paper's
explanation for why MCDRAM can *lose* to DDR on SpTRSV).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.sparse.csr import CSRMatrix


@dataclasses.dataclass(frozen=True)
class LevelSchedule:
    """Wavefront decomposition of a lower-triangular matrix."""

    level_of: np.ndarray  # int32[n] — level index of each row
    level_offsets: np.ndarray  # int64[n_levels + 1] into `order`
    order: np.ndarray  # int32[n] — rows sorted by level

    @property
    def n_levels(self) -> int:
        return len(self.level_offsets) - 1

    @property
    def n_rows(self) -> int:
        return len(self.level_of)

    def level_sizes(self) -> np.ndarray:
        return np.diff(self.level_offsets)

    @property
    def avg_parallelism(self) -> float:
        """Mean rows solvable concurrently = n / n_levels."""
        return self.n_rows / self.n_levels if self.n_levels else 0.0

    def rows_in_level(self, lvl: int) -> np.ndarray:
        lo, hi = int(self.level_offsets[lvl]), int(self.level_offsets[lvl + 1])
        return self.order[lo:hi]


def build_levels(lower: CSRMatrix) -> LevelSchedule:
    """Compute the level schedule of a lower-triangular CSR matrix.

    ``level[i] = 1 + max(level[j])`` over the strictly-lower dependencies
    of row ``i`` (0 when there are none). Rows are processed in index
    order, which is a valid topological order for a lower-triangular
    system.
    """
    n = lower.n_rows
    if not lower.is_square:
        raise ValueError("level scheduling requires a square matrix")
    level = np.zeros(n, dtype=np.int32)
    indptr = lower.indptr
    indices = lower.indices
    for i in range(n):
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        deps = indices[lo:hi]
        deps = deps[deps < i]  # strictly-lower dependencies
        if len(deps):
            level[i] = int(level[deps].max()) + 1
    order = np.argsort(level, kind="stable").astype(np.int32)
    n_levels = int(level.max()) + 1 if n else 0
    counts = np.bincount(level, minlength=n_levels)
    offsets = np.zeros(n_levels + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return LevelSchedule(level_of=level, level_offsets=offsets, order=order)
