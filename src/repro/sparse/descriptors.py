"""Analytic matrix descriptors.

A :class:`MatrixDescriptor` captures the features of a sparse matrix that
the performance model actually consumes — size, nonzero count, and two
structure scores — without materializing the nonzeros. This is what lets
the reproduction sweep 968 matrices up to multi-GB footprints (the paper's
Figures 9–11 and 17–22) in seconds.

Structure scores:

* ``locality`` in [0, 1] — how well column accesses of SpMV reuse the x
  vector through a cache: 1 for perfectly banded patterns, ~0 for uniform
  random ones.
* ``parallelism`` >= 1 — average SpTRSV wavefront width (rows per level),
  controlling the memory-level parallelism available to hide latency.

Both can be *measured* from a materialized matrix
(:func:`measure_structure`), which is how the analytic values are
validated in the tests.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.sparse import generators
from repro.sparse.csr import CSRMatrix
from repro.sparse.levels import build_levels

#: Materialization guard: descriptors above this nnz stay analytic.
MATERIALIZE_NNZ_LIMIT = 4_000_000

#: Family -> locality base. The jitter applied by the collection builder
#: stays within +-30% of these.
_FAMILY_LOCALITY: dict[str, float] = {
    "banded": 0.92,
    "tridiag": 0.98,
    "grid2d": 0.85,
    "grid3d": 0.75,
    "block": 0.80,
    "rmat": 0.40,
    "powerlaw": 0.25,
    "random": 0.05,
}


def default_parallelism(family: str, n_rows: int, avg_row_nnz: float) -> float:
    """Mean SpTRSV wavefront width implied by a family's dependency shape.

    Banded/tridiagonal lower triangles are near-pure chains (O(1) rows per
    level); grid Laplacians expose diagonal wavefronts (~n^(1/2) in 2-D,
    ~n^(2/3) in 3-D); block matrices parallelize across blocks; random
    patterns level out in O(log n) levels.
    """
    n = float(max(2, n_rows))
    deg = max(1.0, avg_row_nnz)
    if family == "tridiag":
        return 1.0
    if family == "banded":
        return 1.5
    if family == "grid2d":
        return max(1.0, n**0.5)
    if family == "grid3d":
        return max(1.0, n ** (2.0 / 3.0))
    if family == "block":
        return max(1.0, n / (2.0 * deg))
    # rmat / powerlaw / random: levels ~ log-depth of the dependency DAG.
    return max(1.0, n / (4.0 * np.log2(n)))


@dataclasses.dataclass(frozen=True)
class MatrixDescriptor:
    """Analytic description of one (possibly huge) square sparse matrix."""

    name: str
    family: str
    n_rows: int
    nnz: int
    seed: int
    locality: float
    parallelism: float

    def __post_init__(self) -> None:
        if self.family not in generators.FAMILIES:
            raise ValueError(f"unknown family {self.family!r}")
        if self.n_rows <= 0 or self.nnz <= 0:
            raise ValueError("n_rows and nnz must be positive")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")
        if self.parallelism < 1.0:
            raise ValueError("parallelism must be >= 1")

    @property
    def footprint_bytes(self) -> int:
        """SpMV footprint per paper Table 2: 12*nnz + 20*M."""
        return 12 * self.nnz + 20 * self.n_rows

    @property
    def avg_row_nnz(self) -> float:
        return self.nnz / self.n_rows

    @property
    def can_materialize(self) -> bool:
        return self.nnz <= MATERIALIZE_NNZ_LIMIT

    def materialize(self) -> CSRMatrix:
        """Generate the actual matrix (small descriptors only)."""
        if not self.can_materialize:
            raise ValueError(
                f"{self.name}: nnz={self.nnz} exceeds the materialization "
                f"limit ({MATERIALIZE_NNZ_LIMIT}); use the analytic path"
            )
        return generators.generate(self.family, self.n_rows, self.nnz, seed=self.seed)


def default_locality(family: str) -> float:
    """Locality prior for a family."""
    return _FAMILY_LOCALITY[family]


def from_params(
    name: str,
    family: str,
    n_rows: int,
    nnz: int,
    *,
    seed: int = 0,
    jitter: float = 0.0,
) -> MatrixDescriptor:
    """Build a descriptor with family-derived structure scores.

    ``jitter`` in [0, 1) perturbs the priors deterministically from the
    seed, so a collection of same-family matrices is not artificially
    uniform.
    """
    loc_base = _FAMILY_LOCALITY[family]
    par_base = default_parallelism(family, n_rows, nnz / max(1, n_rows))
    rng = np.random.default_rng(seed)
    wiggle = 1.0 + jitter * (rng.random(2) * 2.0 - 1.0)
    locality = float(np.clip(loc_base * wiggle[0], 0.0, 1.0))
    parallelism = max(1.0, par_base * wiggle[1])
    return MatrixDescriptor(
        name=name,
        family=family,
        n_rows=n_rows,
        nnz=nnz,
        seed=seed,
        locality=locality,
        parallelism=min(parallelism, float(n_rows)),
    )


def measure_structure(matrix: CSRMatrix) -> tuple[float, float]:
    """Measure (locality, parallelism) from a materialized matrix.

    Locality maps the mean per-row column span to [0, 1]: a span equal to
    the mean row degree (perfectly packed band) scores ~1, a span of the
    whole matrix scores ~0. Parallelism is the measured mean SpTRSV
    wavefront width of the lower triangle.
    """
    n = matrix.n_rows
    span = matrix.column_span()
    if n <= 1 or span <= 0:
        locality = 1.0
    else:
        packed = max(1.0, matrix.nnz / max(1, n))
        # Log-scale interpolation between "packed band" and "full span".
        locality = 1.0 - np.log(span / packed) / np.log(max(2.0, n / packed))
        locality = float(np.clip(locality, 0.0, 1.0))
    schedule = build_levels(matrix.lower_triangle())
    return locality, float(schedule.avg_parallelism)


def from_matrix(name: str, matrix: CSRMatrix, *, family: str = "random", seed: int = 0) -> MatrixDescriptor:
    """Descriptor with *measured* structure scores."""
    locality, parallelism = measure_structure(matrix)
    return MatrixDescriptor(
        name=name,
        family=family,
        n_rows=matrix.n_rows,
        nnz=matrix.nnz,
        seed=seed,
        locality=locality,
        parallelism=max(1.0, parallelism),
    )
