"""One-shot reproduction report generator.

``opm-repro report -o report.md`` runs every registered experiment and
assembles a single Markdown document: per-artifact data tables (truncated
to a readable size), the drivers' own notes, and a header recording the
configuration — the file you attach to a reproduction claim.
"""

from __future__ import annotations

import contextlib
import io
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro import telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.cache import ResultCache
    from repro.runtime.scheduler import BatchSummary
from repro._version import __version__
from repro.experiments import all_experiments, run
from repro.experiments.results import DataTable, ExperimentResult
from repro.telemetry.summary import aggregate_phases

#: Keep per-table Markdown output readable.
MAX_ROWS = 16


def _markdown_table(table: DataTable, *, max_rows: int = MAX_ROWS) -> str:
    """Render a DataTable as GitHub Markdown, truncating long bodies."""
    out = io.StringIO()
    out.write("| " + " | ".join(str(c) for c in table.columns) + " |\n")
    out.write("|" + "---|" * len(table.columns) + "\n")
    rows = table.rows
    truncated = 0
    if len(rows) > max_rows:
        truncated = len(rows) - max_rows
        rows = rows[:max_rows]
    for row in rows:
        cells = [
            f"{v:.4g}" if isinstance(v, float) else str(v) for v in row
        ]
        out.write("| " + " | ".join(cells) + " |\n")
    if truncated:
        out.write(f"\n*... {truncated} more rows "
                  f"(full data via `opm-repro run {table.name}` + `--csv-dir`)*\n")
    return out.getvalue()


def render_experiment(result: ExperimentResult, artifact: str) -> str:
    """One report section per experiment."""
    out = io.StringIO()
    out.write(f"## {result.experiment_id} — {result.title}\n\n")
    out.write(f"*Paper artifact: {artifact}*\n\n")
    for table in result.tables:
        out.write(f"### {table.name}\n\n")
        out.write(_markdown_table(table))
        out.write("\n")
    if result.notes:
        out.write("**Notes**\n\n")
        for note in result.notes:
            out.write(f"- {note}\n")
        out.write("\n")
    return out.getvalue()


def _telemetry_section(
    manifests: Sequence[telemetry.RunManifest],
    spans: Sequence[telemetry.Span],
    *,
    top_phases: int = 10,
) -> str:
    """Provenance + wall-time appendix built from this report's own run."""
    out = io.StringIO()
    out.write("## Telemetry\n\n")
    out.write(
        "Every result row above can be tied back to one of these run "
        "manifests (also available as JSONL via `opm-repro run --trace`).\n\n"
    )
    out.write(
        "| experiment | manifest | sweep | wall_s | peak_rss_mib | "
        "platforms | status |\n"
        "|---|---|---|---|---|---|---|\n"
    )
    for m in manifests:
        rss = f"{m.peak_rss_bytes / 2**20:.1f}" if m.peak_rss_bytes else "n/a"
        platforms = (
            " ".join(
                f"{name}={h}" for name, h in sorted(m.platform_spec_hashes.items())
            )
            or "-"
        )
        out.write(
            f"| {m.experiment_id} | {m.run_id} | "
            f"{'quick' if m.quick else 'full'} | "
            f"{m.wall_time_s:.3f} | {rss} | {platforms} | {m.status} |\n"
        )
    rows = aggregate_phases(spans)[:top_phases]
    if rows:
        out.write("\nTop phases by total wall time:\n\n")
        out.write("| phase | count | total_s | self_s |\n|---|---|---|---|\n")
        for r in rows:
            out.write(
                f"| {r.name} | {r.count} | {r.total_s:.4f} | {r.self_s:.4f} |\n"
            )
    out.write("\n")
    return out.getvalue()


def batch_summary_section(summary: "BatchSummary") -> str:
    """Markdown "Batch execution" section for a scheduler run.

    One row per task (status, result source, wall time, attempts) under a
    headline of the batch-level numbers the runtime's telemetry counters
    also carry: worker count, wall time, and cache hit rate.
    """
    out = io.StringIO()
    out.write("## Batch execution\n\n")
    out.write(
        f"Scheduler: {summary.jobs} worker(s), "
        f"{'quick' if summary.quick else 'full'} sweeps, wall "
        f"{summary.wall_time_s:.2f} s; cache hit rate "
        f"{summary.hit_rate:.1%} "
        f"({summary.cache_hits} hits / {summary.cache_misses} misses), "
        f"{len(summary.skipped)} resumed, {len(summary.failed)} failed, "
        f"{len(summary.timed_out)} timed out.\n\n"
    )
    out.write(
        "| task | status | source | wall_s | attempts |\n"
        "|---|---|---|---|---|\n"
    )
    for o in summary.outcomes:
        if o.status == "skipped":
            source = "journal"
        elif o.cache_hit:
            source = "cache"
        elif o.status == "done":
            source = "computed"
        else:
            source = "-"
        out.write(
            f"| {o.experiment_id} | {o.status} | {source} | "
            f"{o.duration_s:.3f} | {o.attempts} |\n"
        )
    for o in summary.failed:
        out.write(f"\n- `{o.experiment_id}` failed: {o.error}\n")
    for o in summary.timed_out:
        out.write(f"\n- `{o.experiment_id}` timed out: {o.error}\n")
    out.write("\n")
    return out.getvalue()


def generate(
    *,
    quick: bool = True,
    experiment_ids: Sequence[str] | None = None,
    with_telemetry: bool = True,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> str:
    """Build the full Markdown report (all experiments by default).

    Unless ``with_telemetry`` is False, the runs execute inside a
    telemetry session and the report ends with a provenance section: one
    run manifest per experiment plus the top wall-time phases.

    With ``jobs > 1`` or a ``cache``, the experiments run through the
    :mod:`repro.runtime` scheduler instead of inline, and the report
    gains a "Batch execution" section (per-task status, result source,
    wall time). Results served from the cache or a worker process carry
    no per-experiment telemetry, so the manifest table only lists tasks
    computed inline.
    """
    specs = all_experiments()
    ids = list(experiment_ids) if experiment_ids else list(specs)
    out = io.StringIO()
    out.write(
        "# OPM reproduction report\n\n"
        f"Package `repro` v{__version__}; sweeps: "
        f"{'quick (reduced grids)' if quick else 'full (appendix grids)'}; "
        "all inputs deterministic.\n\n"
        "Paper: *Exploring and Analyzing the Real Impact of Modern "
        "On-Package Memory on HPC Scientific Kernels*, SC '17.\n\n"
    )
    out.write("Contents: " + ", ".join(ids) + "\n\n")
    scope = (
        telemetry.session(attach_summary=False)
        if with_telemetry
        else contextlib.nullcontext()
    )
    summary = None
    with scope:
        if jobs > 1 or cache is not None:
            from repro.runtime import run_batch

            summary = run_batch(ids, quick=quick, jobs=jobs, cache=cache)
            for outcome in summary.outcomes:
                if outcome.result is None:
                    continue
                out.write(
                    render_experiment(
                        outcome.result,
                        specs[outcome.experiment_id].paper_artifact,
                    )
                )
                out.write("\n---\n\n")
        else:
            for exp_id in ids:
                result = run(exp_id, quick=quick)
                out.write(
                    render_experiment(result, specs[exp_id].paper_artifact)
                )
                out.write("\n---\n\n")
        if summary is not None:
            out.write(batch_summary_section(summary))
        if with_telemetry:
            out.write(
                _telemetry_section(
                    telemetry.manifests(),
                    telemetry.get_tracer().finished(),
                )
            )
    return out.getvalue()


def write(path: str | Path, *, quick: bool = True,
          experiment_ids: Sequence[str] | None = None,
          jobs: int = 1, cache: "ResultCache | None" = None) -> Path:
    """Generate and write the report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        generate(quick=quick, experiment_ids=experiment_ids, jobs=jobs,
                 cache=cache)
    )
    return path
