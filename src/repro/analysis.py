"""Curve analytics: the Stepping-model features as measurable quantities.

The paper reads its figures through a vocabulary — *cache peak*, *cache
valley*, *memory plateau*, *performance-effective region (PER)*,
*energy-effective region (EER)* (Sections 4 and 6). This module turns
that vocabulary into functions over (size, throughput) series so
experiments and tests can assert the features instead of eyeballing them.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class CurveFeatures:
    """Detected Stepping-model features of one throughput curve."""

    peak_indices: tuple[int, ...]
    valley_indices: tuple[int, ...]
    plateau: float

    @property
    def n_peaks(self) -> int:
        return len(self.peak_indices)

    @property
    def n_valleys(self) -> int:
        return len(self.valley_indices)


def _as_arrays(sizes: Sequence[float], gflops: Sequence[float]):
    s = np.asarray(list(sizes), dtype=np.float64)
    g = np.asarray(list(gflops), dtype=np.float64)
    if s.shape != g.shape or s.ndim != 1:
        raise ValueError("sizes and gflops must be 1-D and equally long")
    if len(s) and np.any(np.diff(s) <= 0):
        raise ValueError("sizes must be strictly increasing")
    return s, g


def find_features(
    sizes: Sequence[float],
    gflops: Sequence[float],
    *,
    tolerance: float = 0.02,
) -> CurveFeatures:
    """Detect peaks (local maxima), valleys (local minima *below the final
    plateau*) and the plateau (terminal throughput).

    ``tolerance`` is the relative wiggle ignored when comparing values
    (modelled curves are piecewise flat; measured ones are noisy).
    """
    s, g = _as_arrays(sizes, gflops)
    n = len(g)
    plateau = float(g[-1]) if n else 0.0
    peaks, valleys = [], []
    for i in range(1, n - 1):
        up = g[i] >= g[i - 1] * (1 - tolerance)
        strictly_down = g[i] > g[i + 1] * (1 + tolerance)
        if up and strictly_down:
            peaks.append(i)
        down = g[i] <= g[i - 1] * (1 + tolerance)
        strictly_up = g[i] < g[i + 1] * (1 - tolerance)
        if (
            down
            and strictly_up
            and g[i] < plateau * (1 - tolerance)
        ):
            valleys.append(i)
    return CurveFeatures(
        peak_indices=tuple(peaks),
        valley_indices=tuple(valleys),
        plateau=plateau,
    )


@dataclasses.dataclass(frozen=True)
class Region:
    """A contiguous size interval where some predicate holds."""

    lo: float
    hi: float

    @property
    def width_octaves(self) -> float:
        """log2(hi/lo): how many doublings of problem size it spans."""
        if self.lo <= 0:
            return float("inf")
        return float(np.log2(self.hi / self.lo))

    def contains(self, size: float) -> bool:
        return self.lo <= size <= self.hi


def effective_region(
    sizes: Sequence[float],
    speedup: Sequence[float],
    *,
    threshold: float = 1.01,
) -> Region | None:
    """The PER: the size span where speedup exceeds ``threshold``.

    Returns the convex hull of qualifying sizes (the paper's effective
    regions are contiguous), or None when nothing qualifies.
    """
    s, sp = _as_arrays(sizes, speedup)
    mask = sp > threshold
    if not mask.any():
        return None
    qualifying = s[mask]
    return Region(lo=float(qualifying.min()), hi=float(qualifying.max()))


def energy_effective_region(
    sizes: Sequence[float],
    speedup: Sequence[float],
    power_increase: float,
) -> Region | None:
    """The EER (Eq. 1): speedup must exceed 1 + W. Always a subset of the
    PER — the paper's Figure 28 observation."""
    return effective_region(sizes, speedup, threshold=1.0 + power_increase)


def crossover(
    sizes: Sequence[float],
    a: Sequence[float],
    b: Sequence[float],
) -> float | None:
    """First size where curve ``a`` stops beating curve ``b`` (the
    mode-crossover points of Figures 23-25); None if no crossing."""
    s, ga = _as_arrays(sizes, a)
    _, gb = _as_arrays(sizes, b)
    ahead = ga > gb
    for i in range(1, len(s)):
        if ahead[i - 1] and not ahead[i]:
            return float(s[i])
    return None


def summarize_speedup(speedup: Sequence[float]) -> dict[str, float]:
    """The Table 4/5 scalar columns from a speedup series."""
    sp = np.asarray(list(speedup), dtype=np.float64)
    if len(sp) == 0:
        raise ValueError("empty speedup series")
    return {
        "avg": float(sp.mean()),
        "max": float(sp.max()),
        "min": float(sp.min()),
        "frac_above_1": float(np.mean(sp > 1.001)),
        "geomean": float(np.exp(np.mean(np.log(np.maximum(sp, 1e-12))))),
    }
