"""Shared call-graph and control-flow scaffolding for the audit rules.

Two analyses live here because several rule families need them:

* **Conservative call graph** (:class:`CallGraph`) — a name-based,
  flow-insensitive reachability graph seeded from the worker entry
  points (functions registered as experiment drivers via
  ``@register(...)`` and functions handed to a pool via
  ``.submit(fn, ...)`` / ``initializer=fn``). The PURE rules walk it to
  find state smuggled into workers; LIFE002 walks it to find
  fork-shared telemetry sinks touched on worker paths. It resolves only
  what imports make statically obvious — a rebound alias or a
  first-class function stored in a container contributes no edges — so
  every edge it *does* have is real, and rules stay false-positive-shy
  at the cost of missing dynamic dispatch.

* **Intraprocedural CFG** (:class:`Cfg`) — statement-level successor
  edges within one function, enough to ask "can control reach the
  function exit from here without passing one of *these* statements?".
  The LOCK and LIFE rules use it for must-pair properties (flock
  acquire/release, ``Tracer.begin``/``finish``). Approximations, by
  design: every top-level statement of a ``try`` body may jump to every
  handler; an explicit ``raise`` exits via the :data:`RAISE` sentinel
  directly (``finally`` ordering on exceptional paths is not modelled);
  implicit exceptions from arbitrary calls are not modelled at all.
  Rules that consume the CFG document which direction they err in.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterable, Sequence

from repro.audit.engine import SourceModule
from repro.audit.resolve import dotted_chain, qualified_name

__all__ = [
    "EXIT",
    "RAISE",
    "CallGraph",
    "Cfg",
    "FuncInfo",
    "ModuleIndex",
    "build_cfg",
    "local_names",
]


@dataclasses.dataclass
class FuncInfo:
    """One function or method as the call graph sees it."""

    module: str
    qualname: str  # "fn" or "Class.fn"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None


class ModuleIndex:
    """Functions, module-level names and imports of one module."""

    def __init__(self, mod: SourceModule) -> None:
        self.mod = mod
        self.imports = mod.imports
        self.funcs: dict[str, FuncInfo] = {}
        self.module_level: set[str] = set()
        for node in mod.tree.body:
            self._bind_top(node)
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.funcs[node.name] = FuncInfo(
                    mod.module, node.name, node, None
                )
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        qual = f"{node.name}.{item.name}"
                        self.funcs[qual] = FuncInfo(
                            mod.module, qual, item, node.name
                        )

    def _bind_top(self, node: ast.stmt) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            self.module_level.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        self.module_level.add(name.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                self.module_level.add(node.target.id)


class CallGraph:
    """Cross-module function index + reachability from worker entries."""

    def __init__(self, mods: Sequence[SourceModule]) -> None:
        self.indexes: dict[str, ModuleIndex] = {}
        for mod in mods:
            if mod.module:
                self.indexes[mod.module] = ModuleIndex(mod)
        self.reachable = self._reach(self._entries())

    # -- entry points -------------------------------------------------------

    def _entries(self) -> list[tuple[str, str]]:
        entries: list[tuple[str, str]] = []
        for module, index in self.indexes.items():
            for qual, func in index.funcs.items():
                if self._is_driver(func, index):
                    entries.append((module, qual))
            for node in ast.walk(index.mod.tree):
                if isinstance(node, ast.Call):
                    entries.extend(self._submitted(node, index))
        return entries

    def _is_driver(self, func: FuncInfo, index: ModuleIndex) -> bool:
        for deco in func.node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = qualified_name(target, index.imports)
            if name is not None and (
                name == "register" or name.endswith(".register")
            ):
                return True
        return False

    def _submitted(
        self, node: ast.Call, index: ModuleIndex
    ) -> list[tuple[str, str]]:
        refs: list[ast.AST] = []
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            refs.append(node.args[0])
        for kw in node.keywords:
            if kw.arg == "initializer":
                refs.append(kw.value)
        out = []
        for ref in refs:
            resolved = self._resolve_ref(ref, index)
            if resolved is not None:
                out.append(resolved)
        return out

    # -- call graph ---------------------------------------------------------

    def _resolve_ref(
        self, node: ast.AST, index: ModuleIndex
    ) -> tuple[str, str] | None:
        """(module, qualname) a Name/Attribute reference points at."""
        chain = dotted_chain(node)
        if chain is None:
            return None
        if len(chain) == 1:
            name = chain[0]
            if name in index.funcs:
                return index.mod.module, name
            alias = index.imports.aliases.get(name)
            if alias and "." in alias:
                module, _, fn = alias.rpartition(".")
                target = self.indexes.get(module)
                if target is not None and fn in target.funcs:
                    return module, fn
            return None
        qual = qualified_name(node, index.imports)
        if qual is None:
            return None
        # Longest scanned-module prefix wins (modules nest).
        best = None
        for module in self.indexes:
            if qual.startswith(module + ".") and (
                best is None or len(module) > len(best)
            ):
                best = module
        if best is None:
            return None
        tail = qual[len(best) + 1 :]
        if tail in self.indexes[best].funcs:
            return best, tail
        return None

    def _edges(self, module: str, qual: str) -> list[tuple[str, str]]:
        index = self.indexes[module]
        func = index.funcs[qual]
        edges: list[tuple[str, str]] = []
        # Walk the *body* only: the function's own decorators run at
        # definition (import) time, not when a worker calls it.
        for node in (
            n for stmt in func.node.body for n in ast.walk(stmt)
        ):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if (
                chain is not None
                and len(chain) == 2
                and chain[0] == "self"
                and func.cls is not None
            ):
                method = f"{func.cls}.{chain[1]}"
                if method in index.funcs:
                    edges.append((module, method))
                continue
            resolved = self._resolve_ref(node.func, index)
            if resolved is not None:
                edges.append(resolved)
        return edges

    def _reach(
        self, entries: Iterable[tuple[str, str]]
    ) -> set[tuple[str, str]]:
        seen: set[tuple[str, str]] = set()
        stack = [e for e in entries if e[0] in self.indexes]
        while stack:
            module, qual = stack.pop()
            if (module, qual) in seen or qual not in self.indexes[
                module
            ].funcs:
                continue
            seen.add((module, qual))
            stack.extend(self._edges(module, qual))
        return seen

    def reachable_funcs(self) -> Iterable[tuple[ModuleIndex, FuncInfo]]:
        for module, qual in sorted(self.reachable):
            index = self.indexes[module]
            yield index, index.funcs[qual]


def local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally (params + stores), minus 'global' declarations."""
    globals_: set[str] = set()
    locals_: set[str] = set()
    args = func.args
    for a in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ):
        locals_.add(a.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            globals_.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            locals_.add(node.id)
    return locals_ - globals_


# -- intraprocedural CFG ------------------------------------------------------

#: Sentinel CFG node: the function returned or fell off the end.
EXIT = "<exit>"
#: Sentinel CFG node: control left via an explicit ``raise``.
RAISE = "<raise>"


class Cfg:
    """Statement-level successor graph of one function body.

    ``succ`` maps each statement node (and compound headers) to the
    statements that can execute next; :data:`EXIT` / :data:`RAISE` are
    terminal sentinels. ``branches`` records, for each ``ast.If``
    header, its ``(body_entry, orelse_entry)`` pair so path-sensitive
    consumers can follow a single arm.
    """

    def __init__(self) -> None:
        self.succ: dict[object, set[object]] = {}
        self.branches: dict[ast.If, tuple[object, object]] = {}
        self.entry: object = EXIT

    def _edge(self, node: object, to: object) -> None:
        self.succ.setdefault(node, set()).add(to)


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Cfg:
    """CFG over ``func``'s own statements (nested defs are opaque)."""
    cfg = Cfg()
    cfg.entry = _seq(cfg, func.body, EXIT, None)
    return cfg


def _seq(
    cfg: Cfg,
    body: Sequence[ast.stmt],
    follow: object,
    loop: tuple[object, object] | None,
) -> object:
    """Wire a statement sequence; returns its entry node."""
    entry = follow
    for stmt in reversed(body):
        entry = _stmt(cfg, stmt, entry, loop)
    return entry


def _stmt(
    cfg: Cfg,
    node: ast.stmt,
    follow: object,
    loop: tuple[object, object] | None,
) -> object:
    if isinstance(node, ast.If):
        body_entry = _seq(cfg, node.body, follow, loop)
        orelse_entry = _seq(cfg, node.orelse, follow, loop)
        cfg._edge(node, body_entry)
        cfg._edge(node, orelse_entry)
        cfg.branches[node] = (body_entry, orelse_entry)
        return node
    if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
        after = _seq(cfg, node.orelse, follow, loop) if node.orelse else follow
        body_entry = _seq(cfg, node.body, node, (node, follow))
        cfg._edge(node, body_entry)
        cfg._edge(node, after)
        return node
    if isinstance(node, ast.Break):
        cfg._edge(node, loop[1] if loop is not None else follow)
        return node
    if isinstance(node, ast.Continue):
        cfg._edge(node, loop[0] if loop is not None else follow)
        return node
    if isinstance(node, ast.Return):
        cfg._edge(node, EXIT)
        return node
    if isinstance(node, ast.Raise):
        cfg._edge(node, RAISE)
        return node
    if isinstance(node, (ast.With, ast.AsyncWith)):
        cfg._edge(node, _seq(cfg, node.body, follow, loop))
        return node
    if isinstance(node, ast.Try):
        after = (
            _seq(cfg, node.finalbody, follow, loop)
            if node.finalbody
            else follow
        )
        handler_entries = [
            _seq(cfg, h.body, after, loop) for h in node.handlers
        ]
        into_body = (
            _seq(cfg, node.orelse, after, loop) if node.orelse else after
        )
        body_entry = _seq(cfg, node.body, into_body, loop)
        cfg._edge(node, body_entry)
        # Any top-level statement of the protected body may raise into
        # any handler (nested raises inside deeper compounds are routed
        # by their own Raise edges; implicit raises deeper down are the
        # documented approximation).
        for stmt in node.body:
            for h_entry in handler_entries:
                cfg._edge(stmt, h_entry)
        return node
    if isinstance(node, ast.Match):
        for case in node.cases:
            cfg._edge(node, _seq(cfg, case.body, follow, loop))
        cfg._edge(node, follow)  # no case may match
        return node
    cfg._edge(node, follow)
    return node
