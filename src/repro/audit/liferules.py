"""LIFE rules: manual span lifecycles close; workers never touch sinks.

PR 6 sanctioned a manual span API — ``Tracer.begin`` / ``finish`` /
``allocate_id`` — because the scheduler and the serve loop interleave
many logical operations on one thread, which a ``with``-scoped span
cannot express. The price of the manual API is that nothing *forces* a
``begin`` to meet its ``finish``; a dropped span silently truncates the
trace tree that the replay/provenance tooling keys on. LIFE001 makes
the pairing a checked invariant again.

* **LIFE001** — a local name bound from a tracer ``begin(...)`` call
  must, on every non-raising CFG path to the function exit, reach a
  *closing use*: passed to any call (``finish(sp)``,
  ``close_task_span(sp, ...)``, a constructor that takes ownership),
  returned, or stored into an attribute/container. Ownership-transfer
  forms — ``return tracer.begin(...)``, ``begin`` as a call argument,
  ``self.x = begin(...)`` — pass without path analysis; a
  bare-statement ``begin(...)`` is flagged immediately. Path analysis
  uses the intraprocedural CFG from :mod:`repro.audit.callgraph` with
  one path-sensitive refinement: an ``if sp is not None:`` guard only
  follows the non-None arm (after ``begin`` the name cannot be None
  until rebound). Approximations: exceptional exits are out of scope
  (only explicit ``raise`` paths), implicit raises from calls are not
  modelled, and a rebinding ends tracking of the old value.
* **LIFE002** — functions reachable from worker entry points (the
  shared conservative call graph) must not touch the fork-shared
  telemetry sink: no ``attach_sink`` and no ``telemetry.configure``.
  Workers inherit the parent's tracer state across ``fork``; the one
  sanctioned pattern is :func:`repro.telemetry.collect.
  worker_collection`, which swaps in a process-local tracer and ships
  spans back by value.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.audit.callgraph import (
    EXIT,
    RAISE,
    CallGraph,
    Cfg,
    build_cfg,
)
from repro.audit.engine import (
    Finding,
    ProjectContext,
    Rule,
    SourceModule,
)
from repro.audit.resolve import dotted_chain, qualified_name

#: Modules that implement (rather than use) the manual span API.
_LIFECYCLE_IMPL_MODULES = ("repro.telemetry.spans",)


def _is_begin_call(node: ast.Call, mod: SourceModule) -> bool:
    """A ``<tracer-ish>.begin(...)`` call (incl. ``get_tracer().begin``)."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "begin":
        return False
    recv = func.value
    if isinstance(recv, ast.Call):
        name = qualified_name(recv.func, mod.imports)
        return name is not None and (
            name == "get_tracer" or name.endswith("get_tracer")
        )
    chain = dotted_chain(recv)
    if chain is None:
        return False
    return any("tracer" in part.lower() for part in chain)


def _name_used_in(tree: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name)
        and sub.id == name
        and isinstance(sub.ctx, ast.Load)
        for sub in ast.walk(tree)
    )


def _evaluated_parts(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions a CFG node itself evaluates (not its sub-blocks)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _closes(stmt: object, name: str) -> bool:
    """Does executing this CFG node hand ``name`` off or close it?"""
    if not isinstance(stmt, ast.stmt):
        return False
    for part in _evaluated_parts(stmt):
        for sub in ast.walk(part):
            if isinstance(sub, ast.Call):
                for arg in [*sub.args, *[kw.value for kw in sub.keywords]]:
                    if _name_used_in(arg, name):
                        return True
            elif isinstance(sub, ast.Return):
                if sub.value is not None and _name_used_in(sub.value, name):
                    return True
            elif isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) and _name_used_in(sub.value, name):
                        return True
                    if isinstance(target, ast.Name) and target.id == name:
                        return True  # rebinding ends tracking
            elif isinstance(sub, ast.Delete):
                for target in sub.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return True
    return False


def _none_guard_branch(node: ast.If, name: str) -> str | None:
    """'body'/'orelse' when the If tests ``name`` against None-ness."""
    test = node.test
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.left, ast.Name)
        and test.left.id == name
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        if isinstance(test.ops[0], ast.IsNot):
            return "body"
        if isinstance(test.ops[0], ast.Is):
            return "orelse"
    if isinstance(test, ast.Name) and test.id == name:
        return "body"
    if (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and isinstance(test.operand, ast.Name)
        and test.operand.id == name
    ):
        return "orelse"
    return None


def _leaks_to_exit(cfg: Cfg, start: ast.stmt, name: str) -> bool:
    """Can EXIT be reached from ``start`` without a closing use?"""
    seen: set[object] = set()
    work: list[object] = list(cfg.succ.get(start, ()))
    while work:
        node = work.pop()
        if node in seen:
            continue
        seen.add(node)
        if node is RAISE:
            continue  # non-raising paths only
        if node is EXIT:
            return True
        if _closes(node, name):
            continue
        if isinstance(node, ast.If):
            branch = _none_guard_branch(node, name)
            if branch is not None:
                body_entry, orelse_entry = cfg.branches[node]
                work.append(
                    body_entry if branch == "body" else orelse_entry
                )
                continue
        work.extend(cfg.succ.get(node, ()))
    return False


class SpanLifecycleRule(Rule):
    """LIFE001: every manual ``begin`` meets a close on non-raising paths."""

    rule_id = "LIFE001"
    description = (
        "a span opened with the manual Tracer.begin API must be "
        "finished (or ownership handed off: returned, passed to a "
        "call, stored) on every non-raising control-flow path — a "
        "dropped span truncates the trace tree replay keys on"
    )
    scope = ("repro",)

    def applies_to(self, mod: SourceModule) -> bool:
        if mod.module.startswith("repro.audit"):
            return False
        if mod.module.startswith(_LIFECYCLE_IMPL_MODULES):
            return False  # the implementation itself
        return super().applies_to(mod)

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        parents = mod.parent_map()
        cfgs: dict[ast.AST, Cfg] = {}
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call) or not _is_begin_call(
                node, mod
            ):
                continue
            parent = parents.get(node)
            # Ownership-transfer forms need no path analysis.
            if isinstance(parent, (ast.Return, ast.Await)):
                continue
            if isinstance(parent, ast.Call) or (
                isinstance(parent, ast.keyword)
            ):
                continue
            if isinstance(parent, ast.Expr):
                yield self.finding(
                    mod,
                    node,
                    "span begun and immediately dropped — bind it and "
                    "finish it, or use a 'with tracer.span(...)' scope",
                )
                continue
            if not isinstance(parent, ast.Assign):
                continue  # conservative: unusual forms pass
            if len(parent.targets) != 1:
                continue
            target = parent.targets[0]
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                continue  # escapes into object/container state
            if not isinstance(target, ast.Name):
                continue
            func = self._enclosing_function(parent, parents)
            if func is None:
                continue  # module-level begin: out of scope
            cfg = cfgs.get(func)
            if cfg is None:
                cfg = cfgs[func] = build_cfg(func)
            if _leaks_to_exit(cfg, parent, target.id):
                yield self.finding(
                    mod,
                    node,
                    f"span bound to '{target.id}' can reach the end of "
                    f"'{func.name}' without being finished or handed "
                    "off on at least one non-raising path",
                )

    @staticmethod
    def _enclosing_function(
        node: ast.AST, parents: dict[ast.AST, ast.AST]
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        cur = parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = parents.get(cur)
        return None


class ForkSharedSinkRule(Rule):
    """LIFE002: worker-reachable code never touches the shared sink."""

    rule_id = "LIFE002"
    description = (
        "functions reachable from worker entry points must not touch "
        "the fork-shared telemetry sink (attach_sink, "
        "telemetry.configure) — workers inherit parent tracer state "
        "across fork; use collect.worker_collection, which swaps in a "
        "process-local tracer and ships spans back by value"
    )
    scope = ("repro",)

    _BANNED_QUALIFIED = frozenset(
        {
            "repro.telemetry.configure",
            "telemetry.configure",
        }
    )

    def check_project(
        self,
        mods: Sequence[SourceModule],
        ctx: ProjectContext | None = None,
    ) -> Iterable[Finding]:
        scoped = [m for m in mods if self.applies_to(m)]
        if not scoped:
            return
        graph = ctx.callgraph() if ctx is not None else CallGraph(scoped)
        for index, func in graph.reachable_funcs():
            mod = index.mod
            if mod.module.startswith("repro.audit"):
                continue
            for node in (
                n for stmt in func.node.body for n in ast.walk(stmt)
            ):
                if not isinstance(node, ast.Call):
                    continue
                name = qualified_name(node.func, index.imports)
                if name is None:
                    continue
                if name.endswith(".attach_sink") or name == "attach_sink":
                    label = "attach_sink"
                elif name in self._BANNED_QUALIFIED:
                    label = "telemetry.configure"
                else:
                    continue
                yield self.finding(
                    mod,
                    node,
                    f"'{func.qualname}' calls '{label}' on a "
                    "worker-reachable path — the sink is fork-shared "
                    "with the parent; collect through "
                    "collect.worker_collection instead",
                )
