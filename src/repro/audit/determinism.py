"""DET rules: simulation code must be bit-deterministic.

The content-addressed result cache (:mod:`repro.runtime.cache`) replays
a cached table whenever the experiment id + sweep mode + source digest
match; that is only sound if re-executing the same code yields the same
bytes. Unseeded randomness and wall-clock reads are the two ways the
simulation packages could break that contract without any test noticing,
so both are forbidden statically inside the simulation scope
(``repro.memory`` / ``repro.trace`` / ``repro.kernels`` /
``repro.engine``). Orchestration code (scheduler, journal, telemetry)
legitimately reads clocks and is outside the scope.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.audit.engine import Finding, Rule, SourceModule
from repro.audit.resolve import qualified_name

#: Packages whose outputs feed cached, mode-comparable results.
SIMULATION_SCOPE = (
    "repro.memory",
    "repro.trace",
    "repro.kernels",
    "repro.engine",
)

#: numpy.random members that construct explicit generators (fine when
#: seeded) rather than drawing from the legacy global RNG.
_NUMPY_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _calls(mod: SourceModule) -> Iterator[tuple[ast.Call, str]]:
    imports = mod.imports  # shared per-module table, built once per run
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Call):
            name = qualified_name(node.func, imports)
            if name is not None:
                yield node, name


class UnseededRandomRule(Rule):
    """DET001: no global/unseeded RNG draws in simulation code."""

    rule_id = "DET001"
    description = (
        "simulation code must draw randomness from an explicitly seeded "
        "generator (np.random.default_rng(seed)), never the stdlib "
        "'random' module or numpy's legacy global RNG"
    )
    scope = SIMULATION_SCOPE

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        for node, name in _calls(mod):
            if name.startswith("random."):
                tail = name.split(".", 1)[1]
                if tail not in ("Random", "SystemRandom"):
                    yield self.finding(
                        mod,
                        node,
                        f"call to stdlib global RNG '{name}' — results "
                        "depend on interpreter-wide hidden state; use a "
                        "seeded np.random.default_rng instead",
                    )
                else:
                    # random.Random(seed) is deterministic; bare
                    # random.Random() / SystemRandom() are not.
                    if not node.args and not node.keywords:
                        yield self.finding(
                            mod,
                            node,
                            f"'{name}()' without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
            elif name.startswith("numpy.random."):
                tail = name.split(".", 2)[2]
                if tail not in _NUMPY_CONSTRUCTORS:
                    yield self.finding(
                        mod,
                        node,
                        f"call to numpy legacy global RNG '{name}' — "
                        "draws from np.random's hidden global state; use "
                        "a seeded np.random.default_rng instead",
                    )
                elif tail == "default_rng" and not node.args and not node.keywords:
                    yield self.finding(
                        mod,
                        node,
                        "np.random.default_rng() without a seed is "
                        "entropy-seeded and nondeterministic; pass an "
                        "explicit seed",
                    )


class WallClockRule(Rule):
    """DET002: no wall-clock reads in simulation code."""

    rule_id = "DET002"
    description = (
        "simulation code must not read clocks (time.time, time.perf_counter, "
        "datetime.now, ...); timing belongs to the telemetry layer, and "
        "simulated time must be derived from the model"
    )
    scope = SIMULATION_SCOPE

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        for node, name in _calls(mod):
            if name in _WALL_CLOCK:
                yield self.finding(
                    mod,
                    node,
                    f"wall-clock read '{name}' inside simulation code — "
                    "cached results would embed the clock; route timing "
                    "through repro.telemetry or pass timestamps in",
                )
