"""Repo-specific static analysis: the invariants pytest cannot see.

``repro audit`` walks the source tree's ASTs and enforces the
correctness contracts the runtime relies on but never checks:

========  ==============================================================
DET001    no unseeded / global RNG draws in simulation code
DET002    no wall-clock reads in simulation code
SPAN001   span/metric name literals must come from repro.telemetry.names
SPAN002   spans must be opened by a ``with`` block (manual
          begin/finish lifecycles are sanctioned and checked by LIFE001)
PURE001   worker-reachable code must not mutate module-level state
PURE002   worker-reachable env reads limited to the fingerprint allowlist
UNIT001   no +/-/comparison across _bytes/_lines/_elems identifiers
REG001    experiment modules register the id their filename encodes
LOCK001   SharedResultCache mutations only under ``with file_lock(...)``
LOCK002   stats.json read-modify-writes only under ``with file_lock(...)``
LOCK003   every flock acquire pairs with a finally-release
ASYNC001  no blocking calls in ``async def`` bodies
ASYNC002  ``asyncio.shield`` only wraps owned futures
ASYNC003  ``create_task``/``ensure_future`` results must be retained
LIFE001   manual ``Tracer.begin`` closes on every non-raising CFG path
LIFE002   worker-reachable code never touches fork-shared telemetry sinks
========  ==============================================================

Silence a deliberate violation in place with
``# audit: ignore[RULE1,RULE2]`` on the flagged line.

Programmatic use::

    from repro.audit import run_audit
    findings, n_files = run_audit(["src/repro"], select=["DET001"])
"""

from __future__ import annotations

from repro.audit.engine import (
    AuditResult,
    Finding,
    ProjectContext,
    Rule,
    SourceModule,
    default_rules,
    run_audit,
)

__all__ = [
    "AuditResult",
    "Finding",
    "ProjectContext",
    "Rule",
    "SourceModule",
    "default_rules",
    "run_audit",
]
