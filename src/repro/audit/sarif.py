"""SARIF 2.1.0 rendering for audit findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard CI systems and code-scanning UIs ingest; emitting it lets the
audit job upload one artifact that review tooling renders inline
instead of a bespoke JSON document. The renderer is deliberately
minimal-but-valid: one ``run``, the full rule table (so ``ruleIndex``
always resolves), and one ``result`` per finding with a physical
location. Severities map 1:1 onto SARIF levels (``error``/``warning``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

from repro.audit.engine import PARSE_RULE_ID, Finding, Rule

#: The schema the document declares; CI validates against it.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _tool_version() -> str:
    try:
        import repro

        return str(getattr(repro, "__version__", "0"))
    except Exception:  # pragma: no cover - import cycles in odd embeds
        return "0"


def _rule_entries(rules: Sequence[Rule]) -> list[dict[str, Any]]:
    entries = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": rule.severity},
        }
        for rule in rules
    ]
    entries.append(
        {
            "id": PARSE_RULE_ID,
            "shortDescription": {
                "text": "file could not be read or parsed"
            },
            "defaultConfiguration": {"level": "error"},
        }
    )
    return entries


def _artifact_uri(path: str) -> str:
    p = Path(path)
    try:
        p = p.relative_to(Path.cwd())
    except ValueError:
        pass
    return p.as_posix()


def render_sarif(
    findings: Sequence[Finding], rules: Sequence[Rule]
) -> dict[str, Any]:
    """The findings as a SARIF 2.1.0 document (a JSON-ready dict)."""
    rule_entries = _rule_entries(rules)
    index_of = {entry["id"]: i for i, entry in enumerate(rule_entries)}
    results = []
    for finding in findings:
        result: dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": finding.severity,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _artifact_uri(finding.path)
                        },
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
        }
        if finding.rule_id in index_of:
            result["ruleIndex"] = index_of[finding.rule_id]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-audit",
                        "version": _tool_version(),
                        "rules": rule_entries,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
