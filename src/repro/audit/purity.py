"""PURE rules: code reachable from workers must not smuggle state.

The scheduler ships experiment drivers to ``ProcessPoolExecutor``
workers and caches their results under a key derived *only* from
(experiment id, sweep mode, package version, source digest). Two things
silently invalidate that key:

* **module-global mutation** — a driver (or anything it calls) writing
  module state makes the result depend on execution order within a
  worker process, a fork-level race no test reliably reproduces;
* **environment reads outside the fingerprint allowlist** — an env var
  that changes the result but is not part of the cache key means two
  different results share one key.

These rules build a conservative, name-based call graph over every
scanned module, seed it with the worker entry points (functions
registered as experiment drivers via ``@register(...)`` and functions
submitted to a pool via ``.submit(fn, ...)`` / ``initializer=fn``), and
flag offending statements in any reachable function. The graph is a
poor man's race detector: flow-insensitive, no aliasing — but the
mutations it can see are exactly the ones that break cache-key
soundness.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterable, Sequence

from repro.audit.engine import Finding, Rule, SourceModule
from repro.audit.resolve import (
    ImportTable,
    dotted_chain,
    literal_str,
    qualified_name,
)

#: Environment variables the runtime deliberately reads in workers and
#: treats as part of the experiment's identity (fault injection) or as
#: result-neutral plumbing (cache location). Anything else read on a
#: worker path must either join the fingerprint or stop being read.
FINGERPRINT_ENV_ALLOWLIST = frozenset(
    {
        "OPM_REPRO_FAULTS",
        "OPM_REPRO_FAULTS_STATE",
        "OPM_REPRO_CACHE_DIR",
    }
)


@dataclasses.dataclass
class _Func:
    module: str
    qualname: str  # "fn" or "Class.fn"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None


class _ModuleIndex:
    """Functions, module-level names and imports of one module."""

    def __init__(self, mod: SourceModule) -> None:
        self.mod = mod
        self.imports = ImportTable(mod.tree, mod.module)
        self.funcs: dict[str, _Func] = {}
        self.module_level: set[str] = set()
        for node in mod.tree.body:
            self._bind_top(node)
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.funcs[node.name] = _Func(
                    mod.module, node.name, node, None
                )
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        qual = f"{node.name}.{item.name}"
                        self.funcs[qual] = _Func(
                            mod.module, qual, item, node.name
                        )

    def _bind_top(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.module_level.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        self.module_level.add(name.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                self.module_level.add(node.target.id)


class _Project:
    """Cross-module function index + reachability from worker entries."""

    def __init__(self, mods: Sequence[SourceModule]) -> None:
        self.indexes: dict[str, _ModuleIndex] = {}
        for mod in mods:
            if mod.module:
                self.indexes[mod.module] = _ModuleIndex(mod)
        self.reachable = self._reach(self._entries())

    # -- entry points -------------------------------------------------------

    def _entries(self) -> list[tuple[str, str]]:
        entries: list[tuple[str, str]] = []
        for module, index in self.indexes.items():
            for qual, func in index.funcs.items():
                if self._is_driver(func, index):
                    entries.append((module, qual))
            for node in ast.walk(index.mod.tree):
                if isinstance(node, ast.Call):
                    entries.extend(self._submitted(node, index))
        return entries

    def _is_driver(self, func: _Func, index: _ModuleIndex) -> bool:
        for deco in func.node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = qualified_name(target, index.imports)
            if name is not None and (
                name == "register" or name.endswith(".register")
            ):
                return True
        return False

    def _submitted(
        self, node: ast.Call, index: _ModuleIndex
    ) -> list[tuple[str, str]]:
        refs: list[ast.AST] = []
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            refs.append(node.args[0])
        for kw in node.keywords:
            if kw.arg == "initializer":
                refs.append(kw.value)
        out = []
        for ref in refs:
            resolved = self._resolve_ref(ref, index)
            if resolved is not None:
                out.append(resolved)
        return out

    # -- call graph ---------------------------------------------------------

    def _resolve_ref(
        self, node: ast.AST, index: _ModuleIndex
    ) -> tuple[str, str] | None:
        """(module, qualname) a Name/Attribute reference points at."""
        chain = dotted_chain(node)
        if chain is None:
            return None
        if len(chain) == 1:
            name = chain[0]
            if name in index.funcs:
                return index.mod.module, name
            alias = index.imports.aliases.get(name)
            if alias and "." in alias:
                module, _, fn = alias.rpartition(".")
                target = self.indexes.get(module)
                if target is not None and fn in target.funcs:
                    return module, fn
            return None
        qual = qualified_name(node, index.imports)
        if qual is None:
            return None
        # Longest scanned-module prefix wins (modules nest).
        best = None
        for module in self.indexes:
            if qual.startswith(module + ".") and (
                best is None or len(module) > len(best)
            ):
                best = module
        if best is None:
            return None
        tail = qual[len(best) + 1 :]
        if tail in self.indexes[best].funcs:
            return best, tail
        return None

    def _edges(self, module: str, qual: str) -> list[tuple[str, str]]:
        index = self.indexes[module]
        func = index.funcs[qual]
        edges: list[tuple[str, str]] = []
        # Walk the *body* only: the function's own decorators run at
        # definition (import) time, not when a worker calls it.
        for node in (
            n for stmt in func.node.body for n in ast.walk(stmt)
        ):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if (
                chain is not None
                and len(chain) == 2
                and chain[0] == "self"
                and func.cls is not None
            ):
                method = f"{func.cls}.{chain[1]}"
                if method in index.funcs:
                    edges.append((module, method))
                continue
            resolved = self._resolve_ref(node.func, index)
            if resolved is not None:
                edges.append(resolved)
        return edges

    def _reach(
        self, entries: Iterable[tuple[str, str]]
    ) -> set[tuple[str, str]]:
        seen: set[tuple[str, str]] = set()
        stack = [e for e in entries if e[0] in self.indexes]
        while stack:
            module, qual = stack.pop()
            if (module, qual) in seen or qual not in self.indexes[
                module
            ].funcs:
                continue
            seen.add((module, qual))
            stack.extend(self._edges(module, qual))
        return seen

    def reachable_funcs(self) -> Iterable[tuple[_ModuleIndex, _Func]]:
        for module, qual in sorted(self.reachable):
            index = self.indexes[module]
            yield index, index.funcs[qual]


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally (params + stores), minus 'global' declarations."""
    globals_: set[str] = set()
    locals_: set[str] = set()
    args = func.args
    for a in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ):
        locals_.add(a.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            globals_.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            locals_.add(node.id)
    return locals_ - globals_


class _PurityProjectRule(Rule):
    """Shared scaffolding: build the project graph once per audit run."""

    scope = ("repro",)

    def check_project(
        self, mods: Sequence[SourceModule]
    ) -> Iterable[Finding]:
        scoped = [m for m in mods if self.applies_to(m)]
        if not scoped:
            return
        project = _Project(scoped)
        for index, func in project.reachable_funcs():
            yield from self.check_function(index, func)

    def check_function(
        self, index: _ModuleIndex, func: _Func
    ) -> Iterable[Finding]:  # pragma: no cover - overridden
        return ()


class GlobalMutationRule(_PurityProjectRule):
    """PURE001: worker-reachable code must not assign module state."""

    rule_id = "PURE001"
    description = (
        "functions reachable from experiment drivers or pool-submitted "
        "entry points must not mutate module-level state (global "
        "assignments, module-attribute stores, writes into module-level "
        "containers) — workers would diverge by execution order and "
        "cached results would not be a function of their key"
    )

    def check_function(
        self, index: _ModuleIndex, func: _Func
    ) -> Iterable[Finding]:
        mod = index.mod
        locals_ = _local_names(func.node)
        declared_global: set[str] = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
                yield self.finding(
                    mod,
                    node,
                    f"'{func.qualname}' declares global "
                    f"{', '.join(node.names)} on a worker-reachable path",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    yield from self._check_target(
                        mod, index, func, target, locals_
                    )

    def _check_target(
        self,
        mod: SourceModule,
        index: _ModuleIndex,
        func: _Func,
        target: ast.AST,
        locals_: set[str],
    ) -> Iterable[Finding]:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            name = target.value.id
            if name in index.module_level and name not in locals_:
                yield self.finding(
                    mod,
                    target,
                    f"'{func.qualname}' writes into module-level "
                    f"container '{name}' on a worker-reachable path",
                )
        elif isinstance(target, ast.Attribute):
            base = target.value
            chain = dotted_chain(base)
            if chain is None or chain[0] == "self" or chain[0] in locals_:
                return
            resolved = qualified_name(base, index.imports)
            if resolved is None:
                return
            if resolved.split(".", 1)[0] in ("repro", "sys", "os") or (
                chain[0] in index.module_level
            ):
                yield self.finding(
                    mod,
                    target,
                    f"'{func.qualname}' assigns attribute "
                    f"'{resolved}.{target.attr}' (module/global state) on "
                    "a worker-reachable path",
                )


class UnfingerprintedEnvRule(_PurityProjectRule):
    """PURE002: worker-reachable env reads must be fingerprinted."""

    rule_id = "PURE002"
    description = (
        "functions reachable from worker entry points may only read "
        "environment variables in the fingerprint allowlist "
        "(OPM_REPRO_FAULTS[_STATE], OPM_REPRO_CACHE_DIR); any other env "
        "read can change a result without changing its cache key"
    )

    def check_function(
        self, index: _ModuleIndex, func: _Func
    ) -> Iterable[Finding]:
        mod = index.mod
        for node in ast.walk(func.node):
            key_node: ast.AST | None = None
            if isinstance(node, ast.Call):
                name = qualified_name(node.func, index.imports)
                if name in ("os.getenv", "os.environ.get") and node.args:
                    key_node = node.args[0]
                else:
                    continue
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                base = qualified_name(node.value, index.imports)
                if base != "os.environ":
                    continue
                key_node = node.slice
            else:
                continue
            key = literal_str(key_node, index.imports)
            if key is None:
                yield self.finding(
                    mod,
                    node,
                    f"'{func.qualname}' reads an environment variable "
                    "whose name the audit cannot resolve statically on a "
                    "worker-reachable path",
                )
            elif key not in FINGERPRINT_ENV_ALLOWLIST:
                yield self.finding(
                    mod,
                    node,
                    f"'{func.qualname}' reads env var {key!r} on a "
                    f"worker-reachable path but {key!r} is not in the "
                    "fingerprint allowlist",
                )
