"""PURE rules: code reachable from workers must not smuggle state.

The scheduler ships experiment drivers to ``ProcessPoolExecutor``
workers and caches their results under a key derived *only* from
(experiment id, sweep mode, package version, source digest). Two things
silently invalidate that key:

* **module-global mutation** — a driver (or anything it calls) writing
  module state makes the result depend on execution order within a
  worker process, a fork-level race no test reliably reproduces;
* **environment reads outside the fingerprint allowlist** — an env var
  that changes the result but is not part of the cache key means two
  different results share one key.

Both rules walk the conservative worker-reachability graph built by
:mod:`repro.audit.callgraph` — seeded from ``@register(...)`` drivers
and pool-submitted entry points — and flag offending statements in any
reachable function. The graph is shared with the LIFE rules through the
engine's :class:`~repro.audit.engine.ProjectContext`, so one audit run
builds it once no matter how many rule families consume it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.audit.callgraph import CallGraph, FuncInfo, ModuleIndex, local_names
from repro.audit.engine import (
    Finding,
    ProjectContext,
    Rule,
    SourceModule,
)
from repro.audit.resolve import dotted_chain, literal_str, qualified_name

#: Environment variables the runtime deliberately reads in workers and
#: treats as part of the experiment's identity (fault injection) or as
#: result-neutral plumbing (cache location). Anything else read on a
#: worker path must either join the fingerprint or stop being read.
FINGERPRINT_ENV_ALLOWLIST = frozenset(
    {
        "OPM_REPRO_FAULTS",
        "OPM_REPRO_FAULTS_STATE",
        "OPM_REPRO_CACHE_DIR",
    }
)


class _PurityProjectRule(Rule):
    """Shared scaffolding: walk the run-shared worker-reachability graph."""

    scope = ("repro",)

    def check_project(
        self,
        mods: Sequence[SourceModule],
        ctx: ProjectContext | None = None,
    ) -> Iterable[Finding]:
        scoped = [m for m in mods if self.applies_to(m)]
        if not scoped:
            return
        graph = ctx.callgraph() if ctx is not None else CallGraph(scoped)
        for index, func in graph.reachable_funcs():
            yield from self.check_function(index, func)

    def check_function(
        self, index: ModuleIndex, func: FuncInfo
    ) -> Iterable[Finding]:  # pragma: no cover - overridden
        return ()


class GlobalMutationRule(_PurityProjectRule):
    """PURE001: worker-reachable code must not assign module state."""

    rule_id = "PURE001"
    description = (
        "functions reachable from experiment drivers or pool-submitted "
        "entry points must not mutate module-level state (global "
        "assignments, module-attribute stores, writes into module-level "
        "containers) — workers would diverge by execution order and "
        "cached results would not be a function of their key"
    )

    def check_function(
        self, index: ModuleIndex, func: FuncInfo
    ) -> Iterable[Finding]:
        mod = index.mod
        locals_ = local_names(func.node)
        declared_global: set[str] = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
                yield self.finding(
                    mod,
                    node,
                    f"'{func.qualname}' declares global "
                    f"{', '.join(node.names)} on a worker-reachable path",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    yield from self._check_target(
                        mod, index, func, target, locals_
                    )

    def _check_target(
        self,
        mod: SourceModule,
        index: ModuleIndex,
        func: FuncInfo,
        target: ast.AST,
        locals_: set[str],
    ) -> Iterable[Finding]:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            name = target.value.id
            if name in index.module_level and name not in locals_:
                yield self.finding(
                    mod,
                    target,
                    f"'{func.qualname}' writes into module-level "
                    f"container '{name}' on a worker-reachable path",
                )
        elif isinstance(target, ast.Attribute):
            base = target.value
            chain = dotted_chain(base)
            if chain is None or chain[0] == "self" or chain[0] in locals_:
                return
            resolved = qualified_name(base, index.imports)
            if resolved is None:
                return
            if resolved.split(".", 1)[0] in ("repro", "sys", "os") or (
                chain[0] in index.module_level
            ):
                yield self.finding(
                    mod,
                    target,
                    f"'{func.qualname}' assigns attribute "
                    f"'{resolved}.{target.attr}' (module/global state) on "
                    "a worker-reachable path",
                )


class UnfingerprintedEnvRule(_PurityProjectRule):
    """PURE002: worker-reachable env reads must be fingerprinted."""

    rule_id = "PURE002"
    description = (
        "functions reachable from worker entry points may only read "
        "environment variables in the fingerprint allowlist "
        "(OPM_REPRO_FAULTS[_STATE], OPM_REPRO_CACHE_DIR); any other env "
        "read can change a result without changing its cache key"
    )

    def check_function(
        self, index: ModuleIndex, func: FuncInfo
    ) -> Iterable[Finding]:
        mod = index.mod
        for node in ast.walk(func.node):
            key_node: ast.AST | None = None
            if isinstance(node, ast.Call):
                name = qualified_name(node.func, index.imports)
                if name in ("os.getenv", "os.environ.get") and node.args:
                    key_node = node.args[0]
                else:
                    continue
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                base = qualified_name(node.value, index.imports)
                if base != "os.environ":
                    continue
                key_node = node.slice
            else:
                continue
            key = literal_str(key_node, index.imports)
            if key is None:
                yield self.finding(
                    mod,
                    node,
                    f"'{func.qualname}' reads an environment variable "
                    "whose name the audit cannot resolve statically on a "
                    "worker-reachable path",
                )
            elif key not in FINGERPRINT_ENV_ALLOWLIST:
                yield self.finding(
                    mod,
                    node,
                    f"'{func.qualname}' reads env var {key!r} on a "
                    f"worker-reachable path but {key!r} is not in the "
                    "fingerprint allowlist",
                )
