"""ASYNC rules: the serve event loop never blocks and never leaks tasks.

``repro serve`` multiplexes every request on one asyncio thread; a
single blocking call anywhere in an ``async def`` stalls all of them at
once, and the stall is invisible in tests (one request at a time never
notices). Three event-loop disciplines are enforced statically:

* **ASYNC001** — no blocking calls in ``async def`` bodies: stdlib
  blockers (``time.sleep``, ``subprocess.*``, ``open``, path
  read/write helpers, ``Future.result``) plus the repo's own
  known-blocking surface (the result cache's disk API
  ``get_payload``/``put_payload``/``record_run`` and the worker entry
  points). The fix is ``await asyncio.to_thread(...)`` — the blocking
  callable then appears as an *argument*, which the rule deliberately
  does not flag.
* **ASYNC002** — ``asyncio.shield(x)`` must shield an *owned* future
  (a plain name or attribute). Shielding a freshly created coroutine or
  task (``shield(do_work())``) detaches it: when the awaiter is
  cancelled, nothing holds a reference that resolves or cancels the
  inner task on exception paths.
* **ASYNC003** — ``create_task``/``ensure_future`` results must be
  retained (assigned, awaited, or passed on). A bare-statement task is
  garbage-collectable mid-flight and its exceptions vanish into the
  "Task exception was never retrieved" log.

Nested ``def``/``async def`` bodies are excluded from the enclosing
scan — each async function is checked exactly once, and a nested sync
helper is assumed to be dispatched off the loop by its caller (that
call site is where ASYNC001 fires if it is not).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.audit.engine import Finding, Rule, SourceModule
from repro.audit.resolve import qualified_name

#: Fully-qualified callables that block the calling thread.
BLOCKING_QUALIFIED = frozenset(
    {
        "time.sleep",
        "open",
        "os.system",
        "os.replace",
        "os.rename",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.rmtree",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

#: Method names that block regardless of receiver: sync path I/O and
#: the blocking future wait, plus the repo's cache disk API.
BLOCKING_ATTRS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "result",
        "get_payload",
        "put_payload",
        "record_run",
    }
)

#: Worker entry points: calling one inline runs an entire experiment
#: (or advisor evaluation) on the loop thread.
BLOCKING_LOCAL = frozenset({"_pool_worker", "_worker_run"})


def _async_defs(mod: SourceModule) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _own_body_nodes(
    func: ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested defs."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue  # nested defs get their own scan (if async)
        stack.extend(ast.iter_child_nodes(node))


class _AsyncRule(Rule):
    scope = ("repro",)

    def applies_to(self, mod: SourceModule) -> bool:
        if mod.module.startswith("repro.audit"):
            return False
        return super().applies_to(mod)


class BlockingCallInAsyncRule(_AsyncRule):
    """ASYNC001: no blocking calls on the event loop."""

    rule_id = "ASYNC001"
    description = (
        "async def bodies must not call blocking functions (time.sleep, "
        "subprocess, sync file I/O, Future.result, the cache's disk "
        "API, worker entry points) — one blocked coroutine stalls every "
        "request on the loop; dispatch via 'await asyncio.to_thread(...)'"
    )

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        for func in _async_defs(mod):
            for node in _own_body_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                label = self._blocking_label(node, mod)
                if label is not None:
                    yield self.finding(
                        mod,
                        node,
                        f"blocking call '{label}' inside "
                        f"'async def {func.name}' — stalls the event "
                        "loop; use 'await asyncio.to_thread(...)' or "
                        "move it to the worker pool",
                    )

    def _blocking_label(
        self, node: ast.Call, mod: SourceModule
    ) -> str | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in BLOCKING_LOCAL:
            return func.id
        name = qualified_name(func, mod.imports)
        if name is not None and name in BLOCKING_QUALIFIED:
            return name
        if isinstance(func, ast.Attribute) and func.attr in BLOCKING_ATTRS:
            return name if name is not None else f"….{func.attr}"
        return None


class ShieldOwnerRule(_AsyncRule):
    """ASYNC002: shield only futures something else owns."""

    rule_id = "ASYNC002"
    description = (
        "asyncio.shield() must wrap an owned future (a name/attribute "
        "something retains), not an inline coroutine/task creation — a "
        "shielded orphan has no owner to resolve or cancel it when the "
        "awaiter is cancelled on an exception path"
    )

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, mod.imports)
            if name is None or not (
                name == "shield" or name.endswith(".shield")
            ):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if isinstance(arg, (ast.Name, ast.Attribute)):
                continue
            yield self.finding(
                mod,
                node,
                "asyncio.shield() wraps an expression no one retains; "
                "bind the future first so an owner can resolve or "
                "cancel it after the awaiter is cancelled",
            )


class TaskRetentionRule(_AsyncRule):
    """ASYNC003: created tasks must be retained."""

    rule_id = "ASYNC003"
    description = (
        "the result of create_task()/ensure_future() must be retained "
        "(assigned, awaited, or passed on); a fire-and-forget task can "
        "be garbage-collected mid-flight and its exceptions are never "
        "retrieved"
    )

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        parents = mod.parent_map()
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, mod.imports)
            if name is None:
                continue
            tail = name.rpartition(".")[2]
            if tail not in ("create_task", "ensure_future"):
                continue
            if isinstance(parents.get(node), ast.Expr):
                yield self.finding(
                    mod,
                    node,
                    f"'{tail}' result discarded — keep a reference "
                    "(e.g. 'self._task = ...') so the task cannot be "
                    "collected and its exceptions are observed",
                )
