"""UNIT001: no arithmetic across byte/line/element units.

The simulator constantly converts between three address-space units —
raw **bytes**, cache **lines** (bytes / line size), and array
**elements** (bytes / dtype size). The codebase's convention is to
carry the unit in the identifier (``size_bytes``, ``n_lines``,
``n_elems``); this rule makes the convention load-bearing: adding,
subtracting, or comparing two identifiers whose suffixes disagree is
almost certainly a unit confusion (the exact bug class the paper's
capacity/footprint analysis would silently absorb).

Multiplication and division are exempt — they *are* the conversions
(``n_lines * line_bytes``) — and so is any operand produced by a call,
which is how an explicit conversion looks at a use site.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.audit.engine import Finding, Rule, SourceModule

#: Identifier suffix -> unit label.
UNIT_SUFFIXES = {
    "_bytes": "bytes",
    "_lines": "lines",
    "_elems": "elems",
}


def _unit_of(node: ast.AST) -> tuple[str, str] | None:
    """(identifier, unit) when the operand names a unit-suffixed value."""
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    else:
        return None
    for suffix, unit in UNIT_SUFFIXES.items():
        if ident.endswith(suffix) and ident != suffix:
            return ident, unit
    return None


class MixedUnitsRule(Rule):
    """UNIT001: +/-/comparison across different unit suffixes."""

    rule_id = "UNIT001"
    description = (
        "adding, subtracting, or comparing identifiers with different "
        "unit suffixes (_bytes/_lines/_elems) without an explicit "
        "conversion call mixes address-space units"
    )

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(mod, node, node.left, node.right)
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left, right in zip(operands, operands[1:]):
                    yield from self._check_pair(mod, node, left, right)

    def _check_pair(
        self, mod: SourceModule, node: ast.AST, left: ast.AST, right: ast.AST
    ) -> Iterable[Finding]:
        lu, ru = _unit_of(left), _unit_of(right)
        if lu is None or ru is None or lu[1] == ru[1]:
            return
        yield self.finding(
            mod,
            node,
            f"arithmetic mixes units: '{lu[0]}' is {lu[1]} but "
            f"'{ru[0]}' is {ru[1]} — convert explicitly "
            "(e.g. n_lines * line_bytes) before combining",
        )
