"""``repro audit`` — run the invariant checker from the command line.

Exit codes follow the convention the rest of the CLI uses:

* ``0`` — scanned clean (no non-suppressed findings);
* ``1`` — findings reported;
* ``2`` — usage error (unknown rule id in ``--select``, missing path).

``--format json`` emits a stable machine-readable document (schema
version 1) for CI: a ``findings`` list of
``{rule_id, path, line, message, severity}`` objects plus a ``summary``
with per-rule counts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.audit.engine import default_rules, run_audit

#: JSON output schema version (bump on incompatible change).
JSON_SCHEMA_VERSION = 1


def default_paths() -> list[str]:
    """Audit the installed package when no paths are given."""
    import repro

    return [str(Path(repro.__file__).resolve().parent)]


def add_audit_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``audit`` subcommand on the main CLI parser."""
    auditp = sub.add_parser(
        "audit",
        help=(
            "statically check repo invariants (determinism, span "
            "discipline, worker purity, unit safety)"
        ),
    )
    auditp.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to scan (default: the repro package)",
    )
    auditp.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="findings as human-readable lines or a JSON document",
    )
    auditp.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all rules)",
    )
    auditp.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its description and exit",
    )


def main(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}  {rule.description}")
        return 0
    paths = args.paths or default_paths()
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(
            "error: no such path(s): " + ", ".join(missing),
            file=sys.stderr,
        )
        return 2
    select = args.select.split(",") if args.select else None
    try:
        findings, n_files = run_audit(paths, select=select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.output_format == "json":
        by_rule: dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
        print(
            json.dumps(
                {
                    "version": JSON_SCHEMA_VERSION,
                    "findings": [f.as_dict() for f in findings],
                    "summary": {
                        "files_scanned": n_files,
                        "findings": len(findings),
                        "by_rule": dict(sorted(by_rule.items())),
                    },
                },
                indent=2,
                sort_keys=False,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"audit: {n_files} file(s) scanned, {len(findings)} {noun}",
            file=sys.stderr,
        )
    return 1 if findings else 0


def run(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """Standalone entry point (``python -m repro.audit``)."""
    parser = argparse.ArgumentParser(prog="repro-audit")
    sub = parser.add_subparsers(dest="command", required=True)
    add_audit_parser(sub)
    return main(parser.parse_args(["audit", *(argv or [])]))
