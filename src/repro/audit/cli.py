"""``repro audit`` — run the invariant checker from the command line.

Exit codes follow the convention the rest of the CLI uses:

* ``0`` — scanned clean (no non-suppressed findings);
* ``1`` — findings reported;
* ``2`` — usage error (unknown rule id in ``--select``, missing path,
  ``--changed`` outside a git checkout).

Output formats:

* ``--format text`` — one human-readable line per finding;
* ``--format json`` — a stable machine-readable document (schema
  version 1) for CI: a ``findings`` list of
  ``{rule_id, path, line, message, severity}`` objects plus a
  ``summary`` with per-rule counts (and per-rule ``timings`` when
  ``--stats`` is given);
* ``--format sarif`` — a SARIF 2.1.0 document for code-scanning
  uploads (see :mod:`repro.audit.sarif`).

``--changed[=REF]`` scopes the scan to the ``.py`` files git reports as
modified against ``REF`` (default ``HEAD``) plus untracked files — the
fast local pre-push loop. Caveat: project-scope rules (PURE*, LIFE002)
see only the changed subset, so cross-file findings whose evidence
spans an *unchanged* file can be missed; CI always runs the full tree.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.audit.engine import default_rules, run_audit

#: JSON output schema version (bump on incompatible change).
JSON_SCHEMA_VERSION = 1


def default_paths() -> list[str]:
    """Audit the installed package when no paths are given."""
    import repro

    return [str(Path(repro.__file__).resolve().parent)]


def changed_python_files(ref: str) -> list[Path] | None:
    """``.py`` files modified vs ``ref`` plus untracked ones; None on error."""

    def _git(*args: str) -> str:
        return subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            check=True,
        ).stdout

    try:
        top = Path(_git("rev-parse", "--show-toplevel").strip())
        listed = _git("diff", "--name-only", ref, "--").splitlines()
        listed += _git(
            "ls-files", "--others", "--exclude-standard"
        ).splitlines()
    except (OSError, subprocess.CalledProcessError):
        return None
    out = sorted(
        {
            top / line.strip()
            for line in listed
            if line.strip().endswith(".py")
        }
    )
    return [p for p in out if p.exists()]


def _scope_to(paths: Sequence[str], files: list[Path]) -> list[Path]:
    """Changed files restricted to the requested paths (if any)."""
    roots = [Path(p).resolve() for p in paths]
    scoped = []
    for f in files:
        rf = f.resolve()
        for root in roots:
            if rf == root or root in rf.parents:
                scoped.append(f)
                break
    return scoped


def add_audit_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``audit`` subcommand on the main CLI parser."""
    auditp = sub.add_parser(
        "audit",
        help=(
            "statically check repo invariants (determinism, span "
            "discipline, worker purity, unit safety, lock discipline, "
            "async safety, span lifecycles)"
        ),
    )
    auditp.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to scan (default: the repro package)",
    )
    auditp.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="output_format",
        help=(
            "findings as human-readable lines, a JSON document, or a "
            "SARIF 2.1.0 document"
        ),
    )
    auditp.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all rules)",
    )
    auditp.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "scan only .py files git reports changed vs REF (default "
            "HEAD) plus untracked files; use --changed=REF when also "
            "passing paths"
        ),
    )
    auditp.add_argument(
        "--stats",
        action="store_true",
        help="report per-rule wall-clock timing",
    )
    auditp.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its description and exit",
    )


def main(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}  {rule.description}")
        return 0
    changed_ref = getattr(args, "changed", None)
    paths = args.paths or ([] if changed_ref is not None else default_paths())
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(
            "error: no such path(s): " + ", ".join(missing),
            file=sys.stderr,
        )
        return 2
    if changed_ref is not None:
        files = changed_python_files(changed_ref)
        if files is None:
            print(
                "error: --changed requires a git checkout and a "
                f"resolvable ref ({changed_ref!r})",
                file=sys.stderr,
            )
            return 2
        # With explicit paths, scope the changed set to them; bare
        # --changed audits every changed file in the checkout.
        scan: list[Path | str] = (
            list(_scope_to(paths, files)) if paths else list(files)
        )
    else:
        scan = list(paths)
    select = args.select.split(",") if args.select else None
    started = time.perf_counter()
    try:
        result = run_audit(scan, select=select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings, n_files = result.findings, result.n_files
    total_s = time.perf_counter() - started
    want_stats = getattr(args, "stats", False)

    if args.output_format == "json":
        by_rule: dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
        doc = {
            "version": JSON_SCHEMA_VERSION,
            "findings": [f.as_dict() for f in findings],
            "summary": {
                "files_scanned": n_files,
                "findings": len(findings),
                "by_rule": dict(sorted(by_rule.items())),
            },
        }
        if want_stats:
            doc["summary"]["timings"] = {
                rule_id: round(seconds, 6)
                for rule_id, seconds in sorted(
                    result.rule_timings.items()
                )
            }
        print(json.dumps(doc, indent=2, sort_keys=False))
    elif args.output_format == "sarif":
        from repro.audit.sarif import render_sarif

        rules = default_rules()
        if select is not None:
            wanted = {s.strip().upper() for s in select if s.strip()}
            rules = [r for r in rules if r.rule_id in wanted]
        print(json.dumps(render_sarif(findings, rules), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"audit: {n_files} file(s) scanned, {len(findings)} {noun}",
            file=sys.stderr,
        )
    if want_stats and args.output_format != "json":
        # Slowest first; the lazily built call graph is charged to the
        # first project rule that requests it.
        ordered = sorted(
            result.rule_timings.items(), key=lambda kv: -kv[1]
        )
        for rule_id, seconds in ordered:
            print(f"stats: {rule_id:9s} {seconds * 1000:8.2f} ms", file=sys.stderr)
        print(
            f"stats: total     {total_s * 1000:8.2f} ms "
            f"({n_files} files)",
            file=sys.stderr,
        )
    return 1 if findings else 0


def run(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """Standalone entry point (``python -m repro.audit``)."""
    parser = argparse.ArgumentParser(prog="repro-audit")
    sub = parser.add_subparsers(dest="command", required=True)
    add_audit_parser(sub)
    return main(parser.parse_args(["audit", *(argv or [])]))
