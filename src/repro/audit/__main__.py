"""Standalone entry point: ``python -m repro.audit [paths...]``."""

import sys

from repro.audit.cli import run

if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
