"""Rule engine for the repo's AST-based invariant checker.

The engine owns everything rule-agnostic: file discovery, parsing,
module-name resolution, suppression comments, rule selection, and
finding aggregation. Rules are small classes that inspect parsed
modules (:class:`SourceModule`) and yield :class:`Finding` objects;
they never read files themselves.

Two inspection granularities exist because the invariants do:

* ``check_module(mod)`` — runs once per file; enough for rules whose
  evidence is local (an unseeded RNG call, a mis-named span).
* ``check_project(mods, ctx)`` — runs once with every scanned file;
  needed for rules that follow references across files (worker purity
  and fork-safety walk the call graph from experiment drivers into the
  modules they import).

Each source file is read and parsed exactly once per run, and the
expensive derived artifacts are shared: every rule sees the same
:class:`SourceModule` (one AST, one lazily-built import table, one
parent map) and project rules share one :class:`ProjectContext` whose
conservative call graph is built at most once per run no matter how
many rules walk it. ``run_audit`` returns an :class:`AuditResult` that
still unpacks as the historical ``(findings, n_files)`` pair but also
carries per-rule wall-clock timings for ``--stats``.

Suppression is per line: appending ``# audit: ignore[RULE1,RULE2]`` to
the flagged line silences exactly those rules there (bare
``# audit: ignore`` silences every rule on the line). Suppressions are
deliberate and visible in review — the checker has no global baseline
file to hide debt in.
"""

from __future__ import annotations

import ast
import dataclasses
import re
import time
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

#: Rule id reserved for files the engine cannot parse.
PARSE_RULE_ID = "PARSE001"

_SUPPRESS_RE = re.compile(
    r"#\s*audit:\s*ignore(?:\[(?P<rules>[A-Z0-9_,\s]+)\])?"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    message: str
    severity: str = "error"  # "error" | "warning"

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


class SourceModule:
    """One parsed source file plus the metadata rules need."""

    def __init__(self, path: Path, source: str, module: str) -> None:
        self.path = path
        self.source = source
        self.module = module  # dotted name, "" when not package-resolvable
        self.lines = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.suppressions = _parse_suppressions(self.lines)
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._imports: Any = None

    @property
    def imports(self) -> Any:
        """The module's :class:`~repro.audit.resolve.ImportTable`.

        Built on first use and shared by every rule, so N rules never
        re-scan the import statements N times.
        """
        if self._imports is None:
            from repro.audit.resolve import ImportTable

            self._imports = ImportTable(self.tree, self.module)
        return self._imports

    def parent_map(self) -> dict[ast.AST, ast.AST]:
        """Child node -> parent node for the whole tree (lazily built)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return not rules or rule_id in rules


def _parse_suppressions(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """1-based line -> suppressed rule ids (empty set = all rules)."""
    found: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        spec = m.group("rules")
        if spec is None:
            found[lineno] = frozenset()
        else:
            found[lineno] = frozenset(
                part.strip() for part in spec.split(",") if part.strip()
            )
    return found


class Rule:
    """Base class: one invariant, one id, an optional module scope."""

    rule_id: str = ""
    description: str = ""
    severity: str = "error"
    #: Dotted-module prefixes this rule applies to; empty = every file.
    scope: tuple[str, ...] = ()

    def applies_to(self, mod: SourceModule) -> bool:
        if not self.scope:
            return True
        return any(
            mod.module == prefix or mod.module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        return ()

    def check_project(
        self,
        mods: Sequence[SourceModule],
        ctx: "ProjectContext | None" = None,
    ) -> Iterable[Finding]:
        return ()

    def finding(
        self, mod: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=str(mod.path),
            line=getattr(node, "lineno", 1),
            message=message,
            severity=self.severity,
        )


class ProjectContext:
    """Per-run artifacts shared by every project-scope rule.

    The conservative call graph is the expensive one — building it
    walks every scanned AST — so it is constructed at most once per
    audit run, on first request, and handed to each project rule
    instead of each rule rebuilding its own copy.
    """

    def __init__(self, mods: Sequence[SourceModule]) -> None:
        self.mods = mods
        self._callgraph: Any = None

    def callgraph(self) -> Any:
        """The worker-reachability :class:`~repro.audit.callgraph.CallGraph`
        over the run's ``repro``-package modules (built lazily, once)."""
        if self._callgraph is None:
            from repro.audit.callgraph import CallGraph

            scoped = [
                m
                for m in self.mods
                if m.module == "repro" or m.module.startswith("repro.")
            ]
            self._callgraph = CallGraph(scoped)
        return self._callgraph


@dataclasses.dataclass
class AuditResult:
    """What one audit run produced.

    Unpacks as the historical ``(findings, n_files)`` pair so existing
    callers keep working; ``rule_timings`` maps rule id -> seconds spent
    in that rule (module passes + project pass) for ``--stats``.
    """

    findings: list[Finding]
    n_files: int
    rule_timings: dict[str, float] = dataclasses.field(default_factory=dict)

    def __iter__(self) -> Iterator[Any]:
        return iter((self.findings, self.n_files))

    def __getitem__(self, index: int) -> Any:
        return (self.findings, self.n_files)[index]


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name for ``path``.

    Anchors at the *last* path component named like a package root we
    know about (``repro``, ``tests``, ``benchmarks``); fixture trees in
    temp directories resolve the same way as the real package, so scoped
    rules behave identically in tests.
    """
    parts = list(path.parts)
    anchor = None
    for i, part in enumerate(parts[:-1]):
        if part in ("repro", "tests", "benchmarks"):
            anchor = i
    if anchor is None:
        return ""
    dotted = list(parts[anchor:-1]) + [path.stem]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def discover_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if "__pycache__" not in sub.parts:
                    seen.add(sub)
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)


def load_module(path: Path) -> SourceModule | Finding:
    """Parse one file; a parse failure is itself a finding."""
    try:
        source = path.read_text(encoding="utf-8")
        return SourceModule(path, source, module_name_for(path))
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return Finding(
            rule_id=PARSE_RULE_ID,
            path=str(path),
            line=line,
            message=f"cannot parse file: {exc}",
        )


def default_rules() -> list[Rule]:
    """One instance of every shipped rule, grouped by family."""
    from repro.audit.asyncrules import (
        BlockingCallInAsyncRule,
        ShieldOwnerRule,
        TaskRetentionRule,
    )
    from repro.audit.determinism import UnseededRandomRule, WallClockRule
    from repro.audit.liferules import ForkSharedSinkRule, SpanLifecycleRule
    from repro.audit.lockrules import (
        FlockPairRule,
        SharedCacheMutationRule,
        StatsWriteRule,
    )
    from repro.audit.purity import GlobalMutationRule, UnfingerprintedEnvRule
    from repro.audit.registry_rules import RegistryIdRule
    from repro.audit.spanrules import SpanNameRule, SpanWithoutWithRule
    from repro.audit.units import MixedUnitsRule

    return [
        UnseededRandomRule(),
        WallClockRule(),
        SpanNameRule(),
        SpanWithoutWithRule(),
        GlobalMutationRule(),
        UnfingerprintedEnvRule(),
        MixedUnitsRule(),
        RegistryIdRule(),
        SharedCacheMutationRule(),
        StatsWriteRule(),
        FlockPairRule(),
        BlockingCallInAsyncRule(),
        ShieldOwnerRule(),
        TaskRetentionRule(),
        SpanLifecycleRule(),
        ForkSharedSinkRule(),
    ]


def run_audit(
    paths: Sequence[Path | str],
    *,
    select: Iterable[str] | None = None,
    rules: Sequence[Rule] | None = None,
) -> AuditResult:
    """Audit ``paths``; returns an :class:`AuditResult`.

    The result unpacks as ``(non-suppressed findings, files scanned)``.
    ``select`` restricts to the given rule ids; unknown ids raise
    ``ValueError`` (the CLI maps that to exit code 2).
    """
    rules = list(default_rules() if rules is None else rules)
    if select is not None:
        wanted = {s.strip().upper() for s in select if s.strip()}
        known = {rule.rule_id for rule in rules}
        unknown = wanted - known
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        rules = [rule for rule in rules if rule.rule_id in wanted]

    findings: list[Finding] = []
    mods: list[SourceModule] = []
    for path in discover_files(Path(p) for p in paths):
        loaded = load_module(path)
        if isinstance(loaded, Finding):
            findings.append(loaded)
        else:
            mods.append(loaded)

    by_path = {str(m.path): m for m in mods}
    ctx = ProjectContext(mods)
    timings: dict[str, float] = {}
    for rule in rules:
        started = time.perf_counter()
        raw: list[Finding] = []
        for mod in mods:
            if rule.applies_to(mod):
                raw.extend(rule.check_module(mod))
        raw.extend(rule.check_project(mods, ctx))
        timings[rule.rule_id] = time.perf_counter() - started
        for finding in raw:
            mod = by_path.get(finding.path)
            if mod is not None and mod.suppressed(
                finding.rule_id, finding.line
            ):
                continue
            findings.append(finding)

    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    n_files = len(mods) + sum(
        1 for f in findings if f.rule_id == PARSE_RULE_ID
    )
    return AuditResult(findings, n_files, timings)
