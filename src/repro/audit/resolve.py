"""Static name resolution shared by the audit rules.

Rules reason about *qualified* names ("numpy.random.rand",
"os.environ.get", "repro.runtime.faults.apply"), but source code uses
whatever aliases its imports introduced. :class:`ImportTable` records a
module's import statements once; :func:`qualified_name` then rewrites a
``Name``/``Attribute`` chain into the canonical dotted form, so a rule
matches ``np.random.rand`` and ``numpy.random.rand`` (and
``from numpy.random import rand``) identically.

This is deliberately flow-insensitive: a rebound alias or a dynamically
imported module resolves to nothing, and rules treat unresolvable names
as out of scope rather than guessing.
"""

from __future__ import annotations

import ast


class ImportTable:
    """Alias -> canonical dotted prefix for one module's imports."""

    def __init__(self, tree: ast.Module, module: str = "") -> None:
        self.aliases: dict[str, str] = {}
        #: Module-level ``NAME = "literal"`` string constants.
        self.str_constants: dict[str, str] = {}
        self.module = module
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else name
                    self.aliases[name] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{base}.{alias.name}"
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self.str_constants[node.targets[0].id] = node.value.value

    def _resolve_from(self, node: ast.ImportFrom) -> str | None:
        base = node.module or ""
        if node.level:
            parts = self.module.split(".") if self.module else []
            if node.level > len(parts):
                return None
            anchor = parts[: len(parts) - node.level]
            base = ".".join(anchor + ([base] if base else []))
        return base or None


def dotted_chain(node: ast.AST) -> list[str] | None:
    """["np", "random", "rand"] for ``np.random.rand``; None otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def qualified_name(node: ast.AST, imports: ImportTable) -> str | None:
    """Canonical dotted name of a Name/Attribute chain, if resolvable."""
    chain = dotted_chain(node)
    if chain is None:
        return None
    head = imports.aliases.get(chain[0], chain[0])
    return ".".join([head] + chain[1:])


def literal_str(node: ast.AST, imports: ImportTable) -> str | None:
    """The string a node statically evaluates to, if any.

    Handles string constants and module-level ``NAME = "literal"``
    references (the idiom env-var keys use).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return imports.str_constants.get(node.id)
    return None
