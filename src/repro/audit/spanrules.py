"""SPAN rules: telemetry names stay canonical, spans always close.

``report.py``, ``telemetry.summary`` and the CI assertions key on span
and metric *names*; a typo'd name silently vanishes from every consumer.
SPAN001 therefore requires each literal name passed to ``span()`` /
``counter()`` / ``gauge()`` / ``histogram()`` to come from the canonical
registry (:mod:`repro.telemetry.names`). Call sites that reference the
registry's constants (or its prefix helpers) are canonical by
construction and pass without inspection.

SPAN002 enforces the lifecycle: a span object only records itself when
its context manager exits, so a ``span(...)`` call that is not the
subject of a ``with`` block (and is not a ``return``-ed wrapper result)
is a span that never closes — it would leak an entry on the tracer's
stack and misparent every later span on that thread.

SPAN002 deliberately does **not** police the sanctioned manual
lifecycle API — ``Tracer.begin`` / ``finish`` / ``allocate_id`` /
``ingest`` — which the scheduler and serve loop use where many logical
operations interleave on one thread and a ``with`` scope cannot
express the span's extent. Manual lifecycles have their own dedicated
invariant: LIFE001 (:mod:`repro.audit.liferules`) proves each
``begin`` reaches a ``finish``/ownership-handoff on every non-raising
control-flow path. No ``# audit: ignore[SPAN002]`` suppressions are
needed (or present) at manual-lifecycle call sites.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.audit.engine import Finding, Rule, SourceModule
from repro.audit.resolve import ImportTable, dotted_chain, qualified_name

#: Dotted suffixes that open a span on a tracer or the telemetry facade.
_SPAN_CALLERS = ("telemetry.span", "tracer.span")
_METRIC_ATTRS = ("counter", "gauge", "histogram")
_NAMES_MODULE = "repro.telemetry.names"

#: The sanctioned manual-lifecycle API (checked by LIFE001, not here).
MANUAL_LIFECYCLE_ATTRS = frozenset(
    {"begin", "finish", "allocate_id", "ingest"}
)


def _is_span_call(node: ast.Call, imports: ImportTable) -> bool:
    name = qualified_name(node.func, imports)
    if name is None:
        return False
    if name == f"{_NAMES_MODULE}.span":  # not a thing; guard anyway
        return False
    tail = name.rpartition(".")[2]
    if tail in MANUAL_LIFECYCLE_ATTRS:
        # tracer.begin(...)/finish(...)/allocate_id() are the manual
        # lifecycle API, not with-scoped spans; LIFE001 owns them.
        return False
    return name.endswith(".span") or name == "span"


def _is_metric_call(node: ast.Call, imports: ImportTable) -> bool:
    name = qualified_name(node.func, imports)
    if name is None:
        return False
    head, _, tail = name.rpartition(".")
    if tail not in _METRIC_ATTRS:
        return False
    # Only the telemetry facade / registry objects mint metrics; keep
    # unrelated .counter() methods (e.g. collections.Counter) out.
    return head.endswith("telemetry") or head.endswith("registry") or head == ""


def _is_registry_reference(node: ast.AST, imports: ImportTable) -> bool:
    """True when the name argument references repro.telemetry.names."""
    chain = dotted_chain(node)
    if chain is None:
        return False
    resolved = qualified_name(node, imports)
    if resolved is not None and resolved.startswith(_NAMES_MODULE + "."):
        return True
    # ``from repro.telemetry.names import SPAN_X`` resolves fully above;
    # accept the naming convention as a fallback for aliased imports.
    return chain[-1].startswith(("SPAN_", "METRIC_"))


class SpanNameRule(Rule):
    """SPAN001: literal span/metric names must be in the registry."""

    rule_id = "SPAN001"
    description = (
        "span and metric names passed as string literals must come from "
        "repro.telemetry.names (SPAN_NAMES / METRIC_NAMES / registered "
        "prefixes); consumers key on these names"
    )
    scope = ("repro",)

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if mod.module.startswith(("repro.telemetry", "repro.audit")):
            # The registry itself and the checker's fixtures are exempt;
            # everything else in the package is held to the contract.
            return
        from repro.telemetry import names as tm

        imports = mod.imports
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            arg = node.args[0]
            if _is_span_call(node, imports):
                yield from self._check_name(
                    mod, node, arg, imports, "span", tm.SPAN_NAMES, ()
                )
            elif _is_metric_call(node, imports):
                yield from self._check_name(
                    mod,
                    node,
                    arg,
                    imports,
                    "metric",
                    tm.METRIC_NAMES,
                    tm.METRIC_PREFIXES,
                )

    def _check_name(
        self,
        mod: SourceModule,
        node: ast.Call,
        arg: ast.AST,
        imports: ImportTable,
        kind: str,
        registry: frozenset[str],
        prefixes: tuple[str, ...],
    ) -> Iterator[Finding]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value not in registry and not arg.value.startswith(
                tuple(prefixes)
            ):
                yield self.finding(
                    mod,
                    node,
                    f"{kind} name {arg.value!r} is not in the canonical "
                    "registry (repro.telemetry.names); register it there "
                    "and reference the constant",
                )
        elif isinstance(arg, ast.JoinedStr):
            yield self.finding(
                mod,
                node,
                f"dynamically formatted {kind} name — use the prefix "
                "helpers in repro.telemetry.names so the prefix stays "
                "registered",
            )
        # Name/Attribute arguments referencing the registry are canonical
        # by construction; other variables are out of static reach.


class SpanWithoutWithRule(Rule):
    """SPAN002: a span must be opened by a ``with`` block."""

    rule_id = "SPAN002"
    description = (
        "tracer.span()/telemetry.span() returns a context manager that "
        "only records on exit; opening one outside a 'with' block leaks "
        "an unclosed span (the manual Tracer.begin/finish/allocate_id "
        "API is sanctioned separately and checked by LIFE001)"
    )
    scope = ("repro",)

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if mod.module.startswith("repro.audit"):
            return
        imports = mod.imports
        parents = mod.parent_map()
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_span_call(node, imports):
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.withitem):
                continue
            if isinstance(parent, ast.Return):
                # A facade returning the context manager for its caller
                # to enter (repro.telemetry.span does exactly this).
                continue
            yield self.finding(
                mod,
                node,
                "span opened outside a 'with' block — it will never "
                "close; write 'with ...span(name) as sp:'",
            )
