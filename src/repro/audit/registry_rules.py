"""REG001: experiment modules register the id their filename promises.

DESIGN.md's per-experiment index, the CLI's ``run <id>`` namespace, the
result cache's task keys, and CI's journal assertions all assume that
``experiments/fig06_stepping.py`` registers exactly ``fig6``. A driver
module that registers a different id (or forgets to register) still
imports cleanly and passes unit tests — the drift only surfaces as a
"unknown experiment" CLI error or, worse, a cache key pointing at the
wrong module. This rule pins the mapping statically: filename stem
``(fig|table|ext|eq)<NN>_*`` must register id ``<prefix><int(NN)>``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.audit.engine import Finding, Rule, SourceModule
from repro.audit.resolve import qualified_name

_STEM_RE = re.compile(r"^(fig|table|ext|eq)(\d+)_")


def expected_id(stem: str) -> str | None:
    """'fig06_stepping' -> 'fig6'; None for non-driver module names."""
    m = _STEM_RE.match(stem)
    if m is None:
        return None
    return f"{m.group(1)}{int(m.group(2))}"


class RegistryIdRule(Rule):
    """REG001: registered experiment id must match the filename stem."""

    rule_id = "REG001"
    description = (
        "each experiments/(fig|table|ext|eq)NN_*.py module must call "
        "register('<prefix><NN>', ...) with the id its filename encodes"
    )
    scope = ("repro.experiments",)

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        want = expected_id(mod.path.stem)
        if want is None:
            return
        imports = mod.imports
        registered: list[tuple[ast.Call, str | None]] = []
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, imports)
            if name is None or not (
                name == "register" or name.endswith(".register")
            ):
                continue
            arg = node.args[0] if node.args else None
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                registered.append((node, arg.value))
            else:
                registered.append((node, None))
        if not registered:
            yield self.finding(
                mod,
                mod.tree,
                f"driver module never registers an experiment; expected "
                f"register({want!r}, ...)",
            )
            return
        for node, got in registered:
            if got is None:
                yield self.finding(
                    mod,
                    node,
                    "experiment id must be a string literal so the "
                    "filename mapping is statically checkable",
                )
            elif got != want:
                yield self.finding(
                    mod,
                    node,
                    f"registered id {got!r} does not match filename "
                    f"{mod.path.name!r} (expected {want!r})",
                )
