"""LOCK rules: shared-cache writes stay under the lock file.

The serve layer points N workers plus any concurrent ``repro run``
batch at one cache directory; :class:`~repro.runtime.cache.
SharedResultCache` keeps that sound by funnelling every mutation
through ``file_lock`` (an ``fcntl.flock`` on a lock file). Nothing at
runtime *checks* that discipline — a new mutating method that forgets
the lock works perfectly in every single-process test and only
corrupts state under concurrent load. These rules pin the discipline
statically:

* **LOCK001** — inside a class the repo designates as lock-guarded
  (``SharedResultCache``), calls that mutate the shared store
  (``super().put/put_payload/clear`` and direct ``_atomic_write_json``)
  must sit lexically inside ``with file_lock(...)``.
* **LOCK002** — the ``stats.json`` read-modify-write (any
  ``_atomic_write_json``/``write_text`` whose arguments mention
  ``stats.json``) must sit inside ``with file_lock(...)``; two
  unserialized writers lose each other's lifetime counts.
* **LOCK003** — a raw ``fcntl.flock(fd, LOCK_EX/LOCK_SH)`` acquire
  must be inside a ``try`` whose ``finally`` releases the same fd
  (``os.close(fd)``, ``fd.close()``, or ``flock(fd, LOCK_UN)``), so no
  CFG path leaks a held lock.

All three checks are lexical/structural, not interprocedural: a
mutation performed under a lock taken by the *caller* would be flagged
and needs a rationale suppression. That direction of error is the safe
one — the reviewer sees the claim in the diff.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.audit.engine import Finding, Rule, SourceModule
from repro.audit.resolve import qualified_name

#: Classes whose mutating methods must hold the cache-wide lock file.
GUARDED_CLASSES = ("SharedResultCache",)

#: ``super().<attr>(...)`` calls that mutate the shared on-disk store.
_MUTATING_SUPER_ATTRS = frozenset({"put", "put_payload", "clear"})


def _under_file_lock(node: ast.AST, mod: SourceModule) -> bool:
    """True when ``node`` is lexically inside ``with file_lock(...):``."""
    parents = mod.parent_map()
    cur: ast.AST | None = node
    while cur is not None:
        if isinstance(cur, (ast.With, ast.AsyncWith)):
            for item in cur.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    name = qualified_name(expr.func, mod.imports)
                    if name is not None and (
                        name == "file_lock" or name.endswith(".file_lock")
                    ):
                        return True
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False  # don't credit a lock in an enclosing function
        cur = parents.get(cur)
    return False


def _is_super_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "super"
    )


def _mentions_literal(node: ast.AST, needle: str) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and needle in sub.value
        ):
            return True
    return False


class SharedCacheMutationRule(Rule):
    """LOCK001: SharedResultCache mutations only under file_lock."""

    rule_id = "LOCK001"
    description = (
        "inside a lock-guarded cache class (SharedResultCache), calls "
        "that mutate the shared store (super().put/put_payload/clear, "
        "_atomic_write_json) must be lexically inside "
        "'with file_lock(...)' — an unguarded write races every other "
        "process sharing the cache directory"
    )
    scope = ("repro.runtime", "repro.serve")

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        for cls in mod.tree.body:
            if (
                not isinstance(cls, ast.ClassDef)
                or cls.name not in GUARDED_CLASSES
            ):
                continue
            for node in ast.walk(cls):
                if not isinstance(node, ast.Call):
                    continue
                label = self._mutator(node, mod)
                if label is None:
                    continue
                if not _under_file_lock(node, mod):
                    yield self.finding(
                        mod,
                        node,
                        f"'{cls.name}' mutates the shared store via "
                        f"'{label}' outside 'with file_lock(...)'",
                    )

    def _mutator(self, node: ast.Call, mod: SourceModule) -> str | None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_SUPER_ATTRS
            and _is_super_call(func.value)
        ):
            return f"super().{func.attr}"
        name = qualified_name(func, mod.imports)
        if name is not None and (
            name == "_atomic_write_json"
            or name.endswith("._atomic_write_json")
        ):
            return "_atomic_write_json"
        return None


class StatsWriteRule(Rule):
    """LOCK002: stats.json writes must hold the stats lock file."""

    rule_id = "LOCK002"
    description = (
        "writes to the cache's stats.json (the hit/miss "
        "read-modify-write) must be inside 'with file_lock(...)'; "
        "unserialized writers lose each other's lifetime counts"
    )
    scope = ("repro.runtime", "repro.serve")

    _WRITE_ATTRS = frozenset({"write_text", "write_bytes"})

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._writes_stats(node, mod):
                continue
            if not _under_file_lock(node, mod):
                yield self.finding(
                    mod,
                    node,
                    "stats.json write outside 'with file_lock(...)' — "
                    "the read-modify-write must be serialized through "
                    "the lock file",
                )

    def _writes_stats(self, node: ast.Call, mod: SourceModule) -> bool:
        func = node.func
        is_writer = False
        name = qualified_name(func, mod.imports)
        if name is not None and (
            name == "_atomic_write_json"
            or name.endswith("._atomic_write_json")
        ):
            is_writer = True
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in self._WRITE_ATTRS
        ):
            is_writer = _mentions_literal(func.value, "stats.json")
        if not is_writer:
            return False
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            if _mentions_literal(arg, "stats.json"):
                return True
        if isinstance(func, ast.Attribute):
            return _mentions_literal(func.value, "stats.json")
        return False


class FlockPairRule(Rule):
    """LOCK003: every flock acquire pairs with a finally-release."""

    rule_id = "LOCK003"
    description = (
        "fcntl.flock(fd, LOCK_EX/LOCK_SH) must be inside a try whose "
        "finally releases the same fd (os.close(fd) / fd.close() / "
        "flock(fd, LOCK_UN)) so no control-flow path leaks a held lock"
    )
    scope = ("repro",)

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        parents = mod.parent_map()
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_acquire(node, mod):
                continue
            fd = (
                node.args[0].id
                if node.args and isinstance(node.args[0], ast.Name)
                else None
            )
            if not self._released_in_finally(node, fd, mod, parents):
                yield self.finding(
                    mod,
                    node,
                    "flock acquired without a pairing release in a "
                    "'finally' block — a raise between acquire and "
                    "release leaks the lock for every other process",
                )

    def _is_acquire(self, node: ast.Call, mod: SourceModule) -> bool:
        name = qualified_name(node.func, mod.imports)
        if name is None or not (
            name == "flock" or name.endswith(".flock")
        ):
            return False
        if len(node.args) < 2:
            return False
        ids = {
            part
            for sub in ast.walk(node.args[1])
            for part in (
                [sub.id]
                if isinstance(sub, ast.Name)
                else [sub.attr]
                if isinstance(sub, ast.Attribute)
                else []
            )
        }
        if "LOCK_UN" in ids:
            return False  # a release, not an acquire
        return bool(ids & {"LOCK_EX", "LOCK_SH"})

    def _released_in_finally(
        self,
        node: ast.AST,
        fd: str | None,
        mod: SourceModule,
        parents: dict[ast.AST, ast.AST],
    ) -> bool:
        cur: ast.AST | None = node
        while cur is not None:
            if isinstance(cur, ast.Try) and cur.finalbody:
                for stmt in cur.finalbody:
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Call) and self._is_release(
                            sub, fd, mod
                        ):
                            return True
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            cur = parents.get(cur)
        return False

    def _is_release(
        self, node: ast.Call, fd: str | None, mod: SourceModule
    ) -> bool:
        name = qualified_name(node.func, mod.imports)
        same_fd = (
            fd is None
            or any(
                isinstance(a, ast.Name) and a.id == fd for a in node.args
            )
        )
        if name is not None and (
            name == "os.close" or name.endswith(".close")
        ):
            if name.endswith(".close") and name != "os.close":
                # fd.close(): the receiver is the fd itself.
                return fd is None or name == f"{fd}.close"
            return same_fd
        if name is not None and (
            name == "flock" or name.endswith(".flock")
        ):
            unlocks = any(
                (isinstance(sub, ast.Attribute) and sub.attr == "LOCK_UN")
                or (isinstance(sub, ast.Name) and sub.id == "LOCK_UN")
                for a in node.args
                for sub in ast.walk(a)
            )
            return unlocks and same_fd
        return False
