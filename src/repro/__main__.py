"""``python -m repro`` entry point."""

import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # `python -m repro trace tree run.jsonl | head` closes stdout early;
    # exit with SIGPIPE's conventional status instead of a traceback.
    sys.exit(141)
