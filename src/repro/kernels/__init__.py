"""The eight scientific kernels of the study (paper Table 2).

Each kernel exposes a functional NumPy implementation (``run``/
``validate``) and an analytic :class:`~repro.kernels.profile.WorkloadProfile`
(``profile``) for the performance engine.
"""

from repro.kernels.base import Kernel
from repro.kernels.characteristics import (
    KERNEL_ORDER,
    KernelCharacteristics,
    ai_spectrum,
    table2,
)
from repro.kernels.cholesky import CholeskyKernel, tiled_cholesky
from repro.kernels.fft import FftKernel, fft_1d, fft_3d
from repro.kernels.gemm import GemmKernel, tiled_gemm
from repro.kernels.profile import Phase, ReuseCurve, WorkloadProfile
from repro.kernels.spmv import SpmvKernel, spmv_csr
from repro.kernels.sptrans import SptransKernel, merge_trans, scan_trans
from repro.kernels.sptrsv import SptrsvKernel, solve_levels
from repro.kernels.stencil import StencilKernel, iso3dfd_step
from repro.kernels.stream import StreamKernel, triad

__all__ = [
    "CholeskyKernel",
    "FftKernel",
    "GemmKernel",
    "KERNEL_ORDER",
    "Kernel",
    "KernelCharacteristics",
    "Phase",
    "ReuseCurve",
    "SpmvKernel",
    "SptransKernel",
    "SptrsvKernel",
    "StencilKernel",
    "StreamKernel",
    "WorkloadProfile",
    "ai_spectrum",
    "fft_1d",
    "fft_3d",
    "iso3dfd_step",
    "merge_trans",
    "scan_trans",
    "solve_levels",
    "spmv_csr",
    "table2",
    "tiled_cholesky",
    "tiled_gemm",
    "triad",
]
