"""Sparse matrix transposition (ScanTrans / MergeTrans, Wang et al. ICS '16).

Functional face: both published algorithms, CSR -> CSC.

* **ScanTrans** (the paper's Broadwell choice): per-partition column
  histograms, a vertical prefix scan locating every nonzero's output slot,
  then a single scatter pass. Our vectorized equivalent keeps the three
  passes explicit.
* **MergeTrans** (the KNL choice): partition the nonzeros into blocks,
  sort each block by column, then merge blocks pairwise for
  ``log2(blocks)`` rounds — trading random scatter for sequential merges
  that sit well in small per-core caches.

Analytic face: SpTRANS mostly *rearranges* data (little FP work — the
paper reports ops = nnz log nnz as the throughput numerator, Table 2);
its traffic is two full passes over the nonzeros plus a
structure-dependent scatter whose locality follows the input's column
distribution. It re-tiles for the LLC, which is why the paper sees almost
no MCDRAM benefit on KNL (Section 4.2.2).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.characteristics import sptrans_characteristics
from repro.kernels.profile import Phase, ReuseCurve, WorkloadProfile
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.descriptors import MatrixDescriptor, from_matrix


def scan_trans(matrix: CSRMatrix) -> CSCMatrix:
    """ScanTrans: histogram -> prefix scan -> scatter."""
    n_rows, n_cols = matrix.shape
    # Pass 1: column histogram.
    counts = np.bincount(matrix.indices, minlength=n_cols)
    # Pass 2: prefix scan produces the CSC column pointers.
    indptr = np.zeros(n_cols + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # Pass 3: scatter every nonzero to its slot. A stable counting order
    # (argsort with the column as key) is the vectorized equivalent of the
    # per-partition offset bookkeeping in the reference code and preserves
    # row-sortedness within each column.
    order = np.argsort(matrix.indices, kind="stable")
    rows = np.repeat(
        np.arange(n_rows, dtype=np.int32), matrix.row_nnz()
    )[order]
    data = matrix.data[order]
    return CSCMatrix(
        n_rows=n_rows, n_cols=n_cols, indptr=indptr, indices=rows, data=data
    )


def merge_trans(matrix: CSRMatrix, *, n_blocks: int = 8) -> CSCMatrix:
    """MergeTrans: block-local counting sorts + log2(blocks) merge rounds."""
    n_rows, n_cols = matrix.shape
    nnz = matrix.nnz
    rows_of = np.repeat(np.arange(n_rows, dtype=np.int32), matrix.row_nnz())
    # Split the nonzero space into blocks and sort each by column (stable
    # keeps the row order, i.e. CSC row-sortedness).
    bounds = np.linspace(0, nnz, num=max(1, n_blocks) + 1, dtype=np.int64)
    blocks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for b in range(len(bounds) - 1):
        lo, hi = int(bounds[b]), int(bounds[b + 1])
        cols = matrix.indices[lo:hi]
        order = np.argsort(cols, kind="stable")
        blocks.append(
            (cols[order], rows_of[lo:hi][order], matrix.data[lo:hi][order])
        )
    # Merge rounds: pairwise stable merges until one sorted run remains.
    while len(blocks) > 1:
        merged = []
        for i in range(0, len(blocks) - 1, 2):
            merged.append(_merge_pair(blocks[i], blocks[i + 1]))
        if len(blocks) % 2:
            merged.append(blocks[-1])
        blocks = merged
    cols, rows, data = (
        blocks[0] if blocks else (np.array([], dtype=np.int32),) * 3
    )
    counts = np.bincount(cols, minlength=n_cols) if len(cols) else np.zeros(n_cols, dtype=np.int64)
    indptr = np.zeros(n_cols + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSCMatrix(
        n_rows=n_rows,
        n_cols=n_cols,
        indptr=indptr,
        indices=np.asarray(rows, dtype=np.int32),
        data=np.asarray(data, dtype=np.float64),
    )


def _merge_pair(
    a: tuple[np.ndarray, np.ndarray, np.ndarray],
    b: tuple[np.ndarray, np.ndarray, np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable two-way merge of (cols, rows, vals) runs sorted by cols."""
    cols = np.concatenate([a[0], b[0]])
    rows = np.concatenate([a[1], b[1]])
    vals = np.concatenate([a[2], b[2]])
    # A stable sort of the concatenation equals a stable merge, and for
    # runs that are already sorted timsort-style kinds detect them; for
    # NumPy, 'stable' radix/mergesort exploits pre-sortedness reasonably.
    order = np.argsort(cols, kind="stable")
    return cols[order], rows[order], vals[order]


@dataclasses.dataclass
class SptransKernel(Kernel):
    """Transpose one sparse matrix (algorithm per target platform)."""

    descriptor: MatrixDescriptor
    matrix: CSRMatrix | None = None
    algorithm: str = "scan"  # "scan" (Broadwell) or "merge" (KNL)

    name = "sptrans"

    def __post_init__(self) -> None:
        if self.algorithm not in ("scan", "merge"):
            raise ValueError("algorithm must be 'scan' or 'merge'")

    @classmethod
    def from_matrix(
        cls, matrix: CSRMatrix, *, name: str = "input", algorithm: str = "scan"
    ) -> "SptransKernel":
        return cls(
            descriptor=from_matrix(name, matrix),
            matrix=matrix,
            algorithm=algorithm,
        )

    def _materialized(self) -> CSRMatrix:
        if self.matrix is None:
            self.matrix = self.descriptor.materialize()
        return self.matrix

    # -- functional ---------------------------------------------------------

    def run(self) -> CSCMatrix:
        m = self._materialized()
        return scan_trans(m) if self.algorithm == "scan" else merge_trans(m)

    def validate(self) -> bool:
        m = self._materialized()
        out = self.run()
        # The CSC arrays of A are exactly the CSR arrays of A^T.
        ref = m.to_scipy().T.tocsr()
        got = out.as_transposed_csr().to_scipy()
        return bool((got != ref).nnz == 0)  # identical pattern and values

    # -- analytic -----------------------------------------------------------

    def flops(self) -> float:
        d = self.descriptor
        return sptrans_characteristics(d.nnz, d.n_rows).operations

    def profile(self) -> WorkloadProfile:
        d = self.descriptor
        nnz, m = float(d.nnz), float(d.n_rows)
        footprint = 24.0 * nnz + 8.0 * m  # Table 2: input + output + ptrs
        # Histogram pass: stream column ids, bump 4-byte counters.
        hist = Phase(
            name="histogram",
            flops=0.0,
            demand_bytes=4.0 * nnz + 4.0 * nnz,  # reads + counter updates
            reuse=ReuseCurve.mix(
                [
                    (ReuseCurve([(footprint, 1.0)]), 0.5),
                    # Counter array: 4M bytes, locality follows structure.
                    (
                        ReuseCurve.from_knots(
                            [(64.0 * max(1.0, d.avg_row_nnz), d.locality)],
                            footprint=4.0 * m,
                        ),
                        0.5,
                    ),
                ]
            ),
            write_fraction=0.5,
            mlp=4.0,
        )
        # Scan pass: sequential over M counters.
        scan = Phase(
            name="scan",
            flops=0.0,
            demand_bytes=8.0 * m,
            reuse=ReuseCurve([(4.0 * m, 1.0)]),
            write_fraction=0.5,
            mlp=8.0,
        )
        # Scatter pass: stream the payload in, scatter it out. MergeTrans
        # converts the scatter into log-round sequential merges: more
        # demand, better locality.
        rounds = np.log2(max(2.0, nnz / 1e5)) if self.algorithm == "merge" else 1.0
        scatter_locality = (
            min(1.0, d.locality + 0.4) if self.algorithm == "merge" else d.locality
        )
        scatter = Phase(
            name="scatter" if self.algorithm == "scan" else "merge-rounds",
            flops=self.flops(),
            demand_bytes=24.0 * nnz * rounds,
            reuse=ReuseCurve.mix(
                [
                    (ReuseCurve([(footprint, 1.0)]), 0.5),
                    (
                        ReuseCurve.from_knots(
                            [(2.0e6, scatter_locality * 0.9)],
                            footprint=12.0 * nnz,
                        ),
                        0.5,
                    ),
                ]
            ),
            write_fraction=0.5,
            mlp=3.0,
        )
        return WorkloadProfile(
            kernel=self.name,
            params={"nnz": d.nnz, "rows": d.n_rows, "algorithm": self.algorithm},
            phases=(hist, scan, scatter),
            arrays={
                "in_vals": int(8 * d.nnz),
                "in_cols": int(4 * d.nnz),
                "in_ptr": int(4 * d.n_rows),
                "out_vals": int(8 * d.nnz),
                "out_rows": int(4 * d.nnz),
                "out_ptr": int(4 * d.n_rows),
            },
            # Index manipulation, not FP: the Table 2 "ops" numerator is
            # synthetic, so the attainable fraction of FP peak is tiny.
            compute_efficiency=0.1,
        )
