"""iso3dfd stencil (YASK-style, 16th order in space, 2nd in time).

Functional face: the 3-D finite-difference kernel the paper benchmarks —
for every interior cell, a symmetric 8-coefficient star along each axis
(48 neighbor loads) plus the previous-timestep term: 61 flops per cell
(Table 2), swept with cache blocking. Implemented with shifted-slice
vectorization and validated against a direct loop oracle on small grids.

Analytic face: with blocking, a cell's neighborhood is served from the
block working set; compulsory traffic is one read + one write of the grid
per sweep, and when the block set does not fit a level the halo planes are
re-fetched. The paper's Broadwell observation — a 24 MB blocked footprint
(3 MB block x 8 threads) that beats the 6 MB L3 but fits eDRAM, making
eDRAM win continuously (Section 4.1.3) — is reproduced by these working
sets.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.characteristics import stencil_characteristics
from repro.kernels.profile import Phase, ReuseCurve, WorkloadProfile

#: Half-width of the 16th-order star (8 points each side per axis).
RADIUS = 8

#: Flops per cell: 48 neighbor FMAs + center + previous-step update.
FLOPS_PER_CELL = 61.0

#: Paper blocking: 64 x 64 x 96 cells per thread block (~3 MB).
DEFAULT_BLOCK_CELLS = 64 * 64 * 96


def iso3dfd_coefficients() -> np.ndarray:
    """Symmetric 8-tap finite-difference coefficients (16th order)."""
    # Standard central-difference weights for the second derivative.
    c = np.array(
        [
            -3.0548446,
            +1.7777778,
            -3.1111111e-1,
            +7.5420876e-2,
            -1.7676768e-2,
            +3.4800350e-3,
            -5.1800051e-4,
            +5.0742907e-5,
            -2.4281275e-6,
        ]
    )
    return c


def iso3dfd_step(prev: np.ndarray, curr: np.ndarray, vel: np.ndarray) -> np.ndarray:
    """One 2nd-order-in-time step on the interior; boundaries untouched."""
    if prev.shape != curr.shape or curr.shape != vel.shape:
        raise ValueError("grids must share a shape")
    if min(curr.shape) < 2 * RADIUS + 1:
        raise ValueError(f"grid must be at least {2 * RADIUS + 1} per axis")
    c = iso3dfd_coefficients()
    r = RADIUS
    core = (slice(r, -r),) * 3
    lap = 3.0 * c[0] * curr[core]
    for axis in range(3):
        for k in range(1, r + 1):
            plus = [slice(r, -r)] * 3
            minus = [slice(r, -r)] * 3
            plus[axis] = slice(r + k, curr.shape[axis] - r + k)
            minus[axis] = slice(r - k, curr.shape[axis] - r - k)
            lap = lap + c[k] * (curr[tuple(plus)] + curr[tuple(minus)])
    out = curr.copy()
    out[core] = 2.0 * curr[core] - prev[core] + vel[core] * lap
    return out


@dataclasses.dataclass
class StencilKernel(Kernel):
    """iso3dfd on an ``nx x ny x nz`` grid for ``steps`` timesteps."""

    nx: int
    ny: int
    nz: int
    steps: int = 1
    threads: int = 8
    seed: int = 0

    name = "stencil"

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 2 * RADIUS + 1:
            raise ValueError("grid too small for a 16th-order stencil")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny * self.nz

    # -- functional ---------------------------------------------------------

    def run(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        shape = (self.nx, self.ny, self.nz)
        prev = rng.standard_normal(shape)
        curr = rng.standard_normal(shape)
        vel = rng.random(shape) * 0.1
        for _ in range(self.steps):
            prev, curr = curr, iso3dfd_step(prev, curr, vel)
        return curr

    # -- analytic -----------------------------------------------------------

    def flops(self) -> float:
        return self.steps * stencil_characteristics(self.n_cells).operations

    def profile(self) -> WorkloadProfile:
        cells = float(self.n_cells)
        word = 8.0
        grid_bytes = word * cells
        footprint = 3.0 * grid_bytes  # prev, curr, vel
        # Demand: neighbor loads after vector folding. YASK's folding
        # turns most of the 49 logical reads per cell into register/L1
        # reuse; what reaches the hierarchy is roughly one line-touch per
        # neighbor *plane*, i.e. ~2 * RADIUS + 1 touches per cell along the
        # worst axis plus the write and the two auxiliary grids.
        touches_per_cell = 2.0 * RADIUS + 5.0
        demand = self.steps * word * cells * touches_per_cell
        # Cache-blocked working set (per the paper's 64x64x96 blocking
        # across `threads` threads).
        block_ws = word * DEFAULT_BLOCK_CELLS * self.threads
        # Plane working set: reuse across the leading axis needs
        # (2 R + 1) decks of ny x nz resident.
        plane_ws = word * (2.0 * RADIUS + 1.0) * self.ny * self.nz
        compulsory = self.steps * (2.0 * grid_bytes + grid_bytes)  # r+w+vel
        best_frac = max(0.0, 1.0 - compulsory / demand)
        reuse = ReuseCurve.from_knots(
            [
                (min(plane_ws, block_ws), best_frac * 0.9),
                (max(plane_ws, block_ws), best_frac),
            ],
            footprint=footprint,
        )
        phase = Phase(
            name="iso3dfd-sweeps",
            flops=self.flops(),
            demand_bytes=demand,
            reuse=reuse,
            write_fraction=1.0 / touches_per_cell,
            mlp=20.0,
        )
        return WorkloadProfile(
            kernel=self.name,
            params={
                "nx": self.nx,
                "ny": self.ny,
                "nz": self.nz,
                "steps": self.steps,
            },
            phases=(phase,),
            arrays={
                "prev": int(grid_bytes),
                "curr": int(grid_bytes),
                "vel": int(grid_bytes),
            },
            compute_efficiency=0.45,
        )
