"""Instrumented kernels: cache-line access traces from the real algorithms.

DESIGN.md Section 2 promises that kernels "can emit cache-line traces for
small problems to drive the trace simulator". This module walks the same
loop nests as the functional implementations and yields
:class:`~repro.trace.events.Access` events — the ground-truth input for
validating each kernel's analytic :class:`ReuseCurve` against the exact
simulator (``tests/test_kernel_traces.py``).

Traces are meant for *small* configurations (the generators guard against
accidentally emitting billions of events). Array placement mirrors the
profile's ``arrays`` dict: consecutive page-aligned regions.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.cholesky import CholeskyKernel
from repro.kernels.fft import FftKernel
from repro.kernels.gemm import GemmKernel
from repro.kernels.spmv import SpmvKernel
from repro.kernels.sptrans import SptransKernel
from repro.kernels.sptrsv import SptrsvKernel
from repro.kernels.stencil import RADIUS, StencilKernel
from repro.kernels.stream import StreamKernel
from repro.sparse.levels import build_levels
from repro.trace.events import Access

PAGE = 4096
WORD = 8

#: Guard: refuse traces that would exceed this many events.
MAX_EVENTS = 50_000_000


def _layout(sizes: dict[str, int]) -> dict[str, int]:
    """Page-aligned consecutive base addresses for named arrays."""
    bases = {}
    cursor = PAGE
    for name, size in sizes.items():
        bases[name] = cursor
        cursor += -(-size // PAGE) * PAGE
    return bases


def _guard(n_events: int, label: str) -> None:
    if n_events > MAX_EVENTS:
        raise ValueError(
            f"{label}: ~{n_events:.3g} events exceed the trace guard "
            f"({MAX_EVENTS}); use the analytic profile for this size"
        )


def trace_stream(kernel: StreamKernel, *, reps: int = 1) -> Iterator[Access]:
    """TRIAD: read b[i], read c[i], write a[i]."""
    n = kernel.n
    _guard(3 * n * reps, "stream")
    base = _layout({"a": n * WORD, "b": n * WORD, "c": n * WORD})
    for _ in range(reps):
        for i in range(n):
            yield Access(base["b"] + i * WORD)
            yield Access(base["c"] + i * WORD)
            yield Access(base["a"] + i * WORD, write=True)


def trace_gemm(kernel: GemmKernel, *, reps: int = 1) -> Iterator[Access]:
    """Tiled GEMM loop nest (k-loop innermost over a resident C tile).

    Emits the blocked reference stream at word granularity: for each
    (i, j) C tile and k panel, the A and B tile elements in the order the
    micro-kernel consumes them.
    """
    n, b = kernel.order, min(kernel.tile, kernel.order)
    _guard(2 * n**3 * reps, "gemm")
    fp = n * n * WORD
    base = _layout({"A": fp, "B": fp, "C": fp})

    def addr(array: str, i: int, j: int) -> int:
        return base[array] + (i * n + j) * WORD

    for _ in range(reps):
        for i0 in range(0, n, b):
            for j0 in range(0, n, b):
                for p0 in range(0, n, b):
                    for i in range(i0, min(i0 + b, n)):
                        for j in range(j0, min(j0 + b, n)):
                            for p in range(p0, min(p0 + b, n)):
                                yield Access(addr("A", i, p))
                                yield Access(addr("B", p, j))
                            yield Access(addr("C", i, j), write=True)


def trace_cholesky(kernel: CholeskyKernel, *, reps: int = 1) -> Iterator[Access]:
    """Right-looking tiled Cholesky reference stream (update-dominated)."""
    n, b = kernel.order, min(kernel.tile, kernel.order)
    _guard(n**3 * reps, "cholesky")
    base = _layout({"A": n * n * WORD})

    def addr(i: int, j: int) -> int:
        return base["A"] + (i * n + j) * WORD

    for _ in range(reps):
        for k0 in range(0, n, b):
            k1 = min(k0 + b, n)
            # POTRF on the diagonal tile.
            for i in range(k0, k1):
                for j in range(k0, i + 1):
                    yield Access(addr(i, j), write=True)
            # TRSM panel + SYRK/GEMM trailing update.
            for i0 in range(k1, n, b):
                i1 = min(i0 + b, n)
                for i in range(i0, i1):
                    for p in range(k0, k1):
                        yield Access(addr(i, p), write=True)
                for j0 in range(k1, i1, b):
                    j1 = min(j0 + b, i1)
                    for i in range(i0, i1):
                        for j in range(j0, j1):
                            for p in range(k0, k1):
                                yield Access(addr(i, p))
                                yield Access(addr(j, p))
                            yield Access(addr(i, j), write=True)


def trace_spmv(kernel: SpmvKernel, *, reps: int = 1) -> Iterator[Access]:
    """CSR SpMV: stream row pointers, values, column ids; gather x."""
    matrix = kernel.matrix if kernel.matrix is not None else kernel.descriptor.materialize()
    _guard(4 * matrix.nnz * reps, "spmv")
    base = _layout(
        {
            "vals": matrix.nnz * WORD,
            "cols": matrix.nnz * 4,
            "indptr": (matrix.n_rows + 1) * 4,
            "x": matrix.n_cols * WORD,
            "y": matrix.n_rows * WORD,
        }
    )
    for _ in range(reps):
        for i in range(matrix.n_rows):
            yield Access(base["indptr"] + i * 4, size=4)
            lo, hi = int(matrix.indptr[i]), int(matrix.indptr[i + 1])
            for k in range(lo, hi):
                yield Access(base["cols"] + k * 4, size=4)
                yield Access(base["vals"] + k * WORD)
                yield Access(base["x"] + int(matrix.indices[k]) * WORD)
            yield Access(base["y"] + i * WORD, write=True)


def trace_sptrsv(kernel: SptrsvKernel, *, reps: int = 1) -> Iterator[Access]:
    """Level-scheduled forward solve: same streams as SpMV, level order."""
    matrix = kernel.matrix if kernel.matrix is not None else kernel.descriptor.materialize()
    lower = matrix.lower_triangle()
    schedule = build_levels(lower)
    _guard(4 * lower.nnz * reps, "sptrsv")
    base = _layout(
        {
            "vals": lower.nnz * WORD,
            "cols": lower.nnz * 4,
            "indptr": (lower.n_rows + 1) * 4,
            "x": lower.n_rows * WORD,
            "b": lower.n_rows * WORD,
        }
    )
    for _ in range(reps):
        for lvl in range(schedule.n_levels):
            for i in schedule.rows_in_level(lvl):
                i = int(i)
                yield Access(base["indptr"] + i * 4, size=4)
                lo, hi = int(lower.indptr[i]), int(lower.indptr[i + 1])
                for k in range(lo, hi):
                    yield Access(base["cols"] + k * 4, size=4)
                    yield Access(base["vals"] + k * WORD)
                    j = int(lower.indices[k])
                    if j < i:  # strictly-lower dependency gathers x[j]
                        yield Access(base["x"] + j * WORD)
                yield Access(base["b"] + i * WORD)
                yield Access(base["x"] + i * WORD, write=True)


def trace_stencil(kernel: StencilKernel, *, reps: int = 1) -> Iterator[Access]:
    """iso3dfd sweeps: star-neighbor reads, vel read, write.

    Neighbor reads are emitted at the granularity the analytic profile
    models (one touch per plane offset along each axis).
    """
    nx, ny, nz = kernel.nx, kernel.ny, kernel.nz
    cells = nx * ny * nz
    _guard((6 * RADIUS + 4) * cells * kernel.steps * reps, "stencil")
    grid_bytes = cells * WORD
    base = _layout({"prev": grid_bytes, "curr": grid_bytes, "vel": grid_bytes})

    def addr(array: str, i: int, j: int, k: int) -> int:
        return base[array] + ((i * ny + j) * nz + k) * WORD

    r = RADIUS
    for _ in range(reps * kernel.steps):
        for i in range(r, nx - r):
            for j in range(r, ny - r):
                for k in range(r, nz - r):
                    yield Access(addr("curr", i, j, k))
                    for t in range(1, r + 1):
                        yield Access(addr("curr", i + t, j, k))
                        yield Access(addr("curr", i - t, j, k))
                        yield Access(addr("curr", i, j + t, k))
                        yield Access(addr("curr", i, j - t, k))
                        yield Access(addr("curr", i, j, k + t))
                        yield Access(addr("curr", i, j, k - t))
                    yield Access(addr("prev", i, j, k))
                    yield Access(addr("vel", i, j, k))
                    yield Access(addr("curr", i, j, k), write=True)


def trace_sptrans(kernel: SptransKernel, *, reps: int = 1) -> Iterator[Access]:
    """ScanTrans passes: histogram, scan, scatter (column-ordered writes)."""
    matrix = kernel.matrix if kernel.matrix is not None else kernel.descriptor.materialize()
    _guard(6 * matrix.nnz * reps, "sptrans")
    n_rows, n_cols, nnz = matrix.n_rows, matrix.n_cols, matrix.nnz
    base = _layout(
        {
            "in_vals": nnz * WORD,
            "in_cols": nnz * 4,
            "counts": n_cols * 4,
            "out_vals": nnz * WORD,
            "out_rows": nnz * 4,
            "out_ptr": (n_cols + 1) * 4,
        }
    )
    order = np.argsort(matrix.indices, kind="stable")
    slot_of = np.empty(nnz, dtype=np.int64)
    slot_of[order] = np.arange(nnz)
    for _ in range(reps):
        # Pass 1: histogram of column ids.
        for k in range(nnz):
            yield Access(base["in_cols"] + k * 4, size=4)
            yield Access(
                base["counts"] + int(matrix.indices[k]) * 4, size=4, write=True
            )
        # Pass 2: prefix scan of the counters.
        for j in range(n_cols):
            yield Access(base["counts"] + j * 4, size=4)
            yield Access(base["out_ptr"] + j * 4, size=4, write=True)
        # Pass 3: scatter values/rows to their column-ordered slots.
        for k in range(nnz):
            yield Access(base["in_cols"] + k * 4, size=4)
            yield Access(base["in_vals"] + k * WORD)
            slot = int(slot_of[k])
            yield Access(base["out_vals"] + slot * WORD, write=True)
            yield Access(base["out_rows"] + slot * 4, size=4, write=True)


def trace_fft(kernel: FftKernel, *, reps: int = 1) -> Iterator[Access]:
    """3-D FFT passes: log2(n) butterfly sweeps per axis over the cube.

    Emits the pencil-walk pattern at word-pair (complex) granularity: for
    each axis, each pencil is swept ``ceil(log2 n)`` times (the butterfly
    stages), with pencil elements contiguous along the Z axis only —
    reproducing the strided access of the Y/X passes.
    """
    import math

    n = kernel.size
    n_points = n**3
    stages = max(1, math.ceil(math.log2(n)))
    _guard(3 * 2 * n_points * stages * reps, "fft")
    cbytes = 16
    base = _layout({"cube": n_points * cbytes})

    def addr(i: int, j: int, k: int) -> int:
        return base["cube"] + ((i * n + j) * n + k) * cbytes

    for _ in range(reps):
        for axis in (1, 0, 2):  # Y, X, Z as the paper orders the passes
            for _stage in range(stages):
                for a in range(n):
                    for b in range(n):
                        for c in range(n):
                            if axis == 0:
                                i, j, k = c, a, b
                            elif axis == 1:
                                i, j, k = a, c, b
                            else:
                                i, j, k = a, b, c
                            yield Access(addr(i, j, k), size=cbytes)
                            yield Access(addr(i, j, k), size=cbytes, write=True)


def kernel_trace(kernel: Kernel, *, reps: int = 1) -> Iterator[Access]:
    """Dispatch to the tracer for ``kernel``'s type."""
    dispatch = {
        StreamKernel: trace_stream,
        GemmKernel: trace_gemm,
        CholeskyKernel: trace_cholesky,
        SpmvKernel: trace_spmv,
        SptransKernel: trace_sptrans,
        SptrsvKernel: trace_sptrsv,
        StencilKernel: trace_stencil,
        FftKernel: trace_fft,
    }
    for cls, fn in dispatch.items():
        if isinstance(kernel, cls):
            return fn(kernel, reps=reps)  # type: ignore[arg-type]
    raise TypeError(f"no tracer for {type(kernel).__name__}")
