"""Instrumented kernels: cache-line access traces from the real algorithms.

DESIGN.md Section 2 promises that kernels "can emit cache-line traces for
small problems to drive the trace simulator". This module walks the same
loop nests as the functional implementations and yields
:class:`~repro.trace.events.Access` events — the ground-truth input for
validating each kernel's analytic :class:`ReuseCurve` against the exact
simulator (``tests/test_kernel_traces.py``).

Traces are meant for *small* configurations (the generators guard against
accidentally emitting billions of events). Array placement mirrors the
profile's ``arrays`` dict: consecutive page-aligned regions.

:func:`kernel_trace_chunks` is the batched face of the same streams: all
eight paper kernels construct their per-repetition reference order
directly as numpy arrays (the level-scheduled solvers build theirs from
the schedule's stable row order); unknown kernel types fall back to the
scalar tracer behind :func:`repro.trace.batch.chunk_accesses`. Either way
the emitted line-address chunks replay the scalar trace exactly, event
for event (``tests/test_trace_batch.py`` pins this differentially).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro import telemetry
from repro.kernels.base import Kernel
from repro.kernels.cholesky import CholeskyKernel
from repro.kernels.fft import FftKernel
from repro.kernels.gemm import GemmKernel
from repro.kernels.spmv import SpmvKernel
from repro.kernels.sptrans import SptransKernel
from repro.kernels.sptrsv import SptrsvKernel
from repro.kernels.stencil import RADIUS, StencilKernel
from repro.kernels.stream import StreamKernel
from repro.platforms.spec import LINE_BYTES
from repro.sparse.levels import build_levels
from repro.telemetry import names as tm
from repro.trace.batch import CHUNK, chunk_accesses, chunk_arrays, expand_lines
from repro.trace.events import Access

PAGE = 4096
WORD = 8

#: Guard: refuse traces that would exceed this many events.
MAX_EVENTS = 50_000_000


def _layout(sizes: dict[str, int]) -> dict[str, int]:
    """Page-aligned consecutive base addresses for named arrays."""
    bases = {}
    cursor = PAGE
    for name, size in sizes.items():
        bases[name] = cursor
        cursor += -(-size // PAGE) * PAGE
    return bases


def _guard(n_events: int, label: str) -> None:
    if n_events > MAX_EVENTS:
        raise ValueError(
            f"{label}: ~{n_events:.3g} events exceed the trace guard "
            f"({MAX_EVENTS}); use the analytic profile for this size"
        )


def trace_stream(kernel: StreamKernel, *, reps: int = 1) -> Iterator[Access]:
    """TRIAD: read b[i], read c[i], write a[i]."""
    n = kernel.n
    _guard(3 * n * reps, "stream")
    base = _layout({"a": n * WORD, "b": n * WORD, "c": n * WORD})
    for _ in range(reps):
        for i in range(n):
            yield Access(base["b"] + i * WORD)
            yield Access(base["c"] + i * WORD)
            yield Access(base["a"] + i * WORD, write=True)


def trace_gemm(kernel: GemmKernel, *, reps: int = 1) -> Iterator[Access]:
    """Tiled GEMM loop nest (k-loop innermost over a resident C tile).

    Emits the blocked reference stream at word granularity: for each
    (i, j) C tile and k panel, the A and B tile elements in the order the
    micro-kernel consumes them.
    """
    n, b = kernel.order, min(kernel.tile, kernel.order)
    _guard(2 * n**3 * reps, "gemm")
    fp = n * n * WORD
    base = _layout({"A": fp, "B": fp, "C": fp})

    def addr(array: str, i: int, j: int) -> int:
        return base[array] + (i * n + j) * WORD

    for _ in range(reps):
        for i0 in range(0, n, b):
            for j0 in range(0, n, b):
                for p0 in range(0, n, b):
                    for i in range(i0, min(i0 + b, n)):
                        for j in range(j0, min(j0 + b, n)):
                            for p in range(p0, min(p0 + b, n)):
                                yield Access(addr("A", i, p))
                                yield Access(addr("B", p, j))
                            yield Access(addr("C", i, j), write=True)


def trace_cholesky(kernel: CholeskyKernel, *, reps: int = 1) -> Iterator[Access]:
    """Right-looking tiled Cholesky reference stream (update-dominated)."""
    n, b = kernel.order, min(kernel.tile, kernel.order)
    _guard(n**3 * reps, "cholesky")
    base = _layout({"A": n * n * WORD})

    def addr(i: int, j: int) -> int:
        return base["A"] + (i * n + j) * WORD

    for _ in range(reps):
        for k0 in range(0, n, b):
            k1 = min(k0 + b, n)
            # POTRF on the diagonal tile.
            for i in range(k0, k1):
                for j in range(k0, i + 1):
                    yield Access(addr(i, j), write=True)
            # TRSM panel + SYRK/GEMM trailing update.
            for i0 in range(k1, n, b):
                i1 = min(i0 + b, n)
                for i in range(i0, i1):
                    for p in range(k0, k1):
                        yield Access(addr(i, p), write=True)
                for j0 in range(k1, i1, b):
                    j1 = min(j0 + b, i1)
                    for i in range(i0, i1):
                        for j in range(j0, j1):
                            for p in range(k0, k1):
                                yield Access(addr(i, p))
                                yield Access(addr(j, p))
                            yield Access(addr(i, j), write=True)


def trace_spmv(kernel: SpmvKernel, *, reps: int = 1) -> Iterator[Access]:
    """CSR SpMV: stream row pointers, values, column ids; gather x."""
    matrix = kernel.matrix if kernel.matrix is not None else kernel.descriptor.materialize()
    _guard(4 * matrix.nnz * reps, "spmv")
    base = _layout(
        {
            "vals": matrix.nnz * WORD,
            "cols": matrix.nnz * 4,
            "indptr": (matrix.n_rows + 1) * 4,
            "x": matrix.n_cols * WORD,
            "y": matrix.n_rows * WORD,
        }
    )
    for _ in range(reps):
        for i in range(matrix.n_rows):
            yield Access(base["indptr"] + i * 4, size=4)
            lo, hi = int(matrix.indptr[i]), int(matrix.indptr[i + 1])
            for k in range(lo, hi):
                yield Access(base["cols"] + k * 4, size=4)
                yield Access(base["vals"] + k * WORD)
                yield Access(base["x"] + int(matrix.indices[k]) * WORD)
            yield Access(base["y"] + i * WORD, write=True)


def trace_sptrsv(kernel: SptrsvKernel, *, reps: int = 1) -> Iterator[Access]:
    """Level-scheduled forward solve: same streams as SpMV, level order."""
    matrix = kernel.matrix if kernel.matrix is not None else kernel.descriptor.materialize()
    lower = matrix.lower_triangle()
    schedule = build_levels(lower)
    _guard(4 * lower.nnz * reps, "sptrsv")
    base = _layout(
        {
            "vals": lower.nnz * WORD,
            "cols": lower.nnz * 4,
            "indptr": (lower.n_rows + 1) * 4,
            "x": lower.n_rows * WORD,
            "b": lower.n_rows * WORD,
        }
    )
    for _ in range(reps):
        for lvl in range(schedule.n_levels):
            for i in schedule.rows_in_level(lvl):
                i = int(i)
                yield Access(base["indptr"] + i * 4, size=4)
                lo, hi = int(lower.indptr[i]), int(lower.indptr[i + 1])
                for k in range(lo, hi):
                    yield Access(base["cols"] + k * 4, size=4)
                    yield Access(base["vals"] + k * WORD)
                    j = int(lower.indices[k])
                    if j < i:  # strictly-lower dependency gathers x[j]
                        yield Access(base["x"] + j * WORD)
                yield Access(base["b"] + i * WORD)
                yield Access(base["x"] + i * WORD, write=True)


def trace_stencil(kernel: StencilKernel, *, reps: int = 1) -> Iterator[Access]:
    """iso3dfd sweeps: star-neighbor reads, vel read, write.

    Neighbor reads are emitted at the granularity the analytic profile
    models (one touch per plane offset along each axis).
    """
    nx, ny, nz = kernel.nx, kernel.ny, kernel.nz
    cells = nx * ny * nz
    _guard((6 * RADIUS + 4) * cells * kernel.steps * reps, "stencil")
    grid_bytes = cells * WORD
    base = _layout({"prev": grid_bytes, "curr": grid_bytes, "vel": grid_bytes})

    def addr(array: str, i: int, j: int, k: int) -> int:
        return base[array] + ((i * ny + j) * nz + k) * WORD

    r = RADIUS
    for _ in range(reps * kernel.steps):
        for i in range(r, nx - r):
            for j in range(r, ny - r):
                for k in range(r, nz - r):
                    yield Access(addr("curr", i, j, k))
                    for t in range(1, r + 1):
                        yield Access(addr("curr", i + t, j, k))
                        yield Access(addr("curr", i - t, j, k))
                        yield Access(addr("curr", i, j + t, k))
                        yield Access(addr("curr", i, j - t, k))
                        yield Access(addr("curr", i, j, k + t))
                        yield Access(addr("curr", i, j, k - t))
                    yield Access(addr("prev", i, j, k))
                    yield Access(addr("vel", i, j, k))
                    yield Access(addr("curr", i, j, k), write=True)


def trace_sptrans(kernel: SptransKernel, *, reps: int = 1) -> Iterator[Access]:
    """ScanTrans passes: histogram, scan, scatter (column-ordered writes)."""
    matrix = kernel.matrix if kernel.matrix is not None else kernel.descriptor.materialize()
    _guard(6 * matrix.nnz * reps, "sptrans")
    n_rows, n_cols, nnz = matrix.n_rows, matrix.n_cols, matrix.nnz
    base = _layout(
        {
            "in_vals": nnz * WORD,
            "in_cols": nnz * 4,
            "counts": n_cols * 4,
            "out_vals": nnz * WORD,
            "out_rows": nnz * 4,
            "out_ptr": (n_cols + 1) * 4,
        }
    )
    order = np.argsort(matrix.indices, kind="stable")
    slot_of = np.empty(nnz, dtype=np.int64)
    slot_of[order] = np.arange(nnz)
    for _ in range(reps):
        # Pass 1: histogram of column ids.
        for k in range(nnz):
            yield Access(base["in_cols"] + k * 4, size=4)
            yield Access(
                base["counts"] + int(matrix.indices[k]) * 4, size=4, write=True
            )
        # Pass 2: prefix scan of the counters.
        for j in range(n_cols):
            yield Access(base["counts"] + j * 4, size=4)
            yield Access(base["out_ptr"] + j * 4, size=4, write=True)
        # Pass 3: scatter values/rows to their column-ordered slots.
        for k in range(nnz):
            yield Access(base["in_cols"] + k * 4, size=4)
            yield Access(base["in_vals"] + k * WORD)
            slot = int(slot_of[k])
            yield Access(base["out_vals"] + slot * WORD, write=True)
            yield Access(base["out_rows"] + slot * 4, size=4, write=True)


def trace_fft(kernel: FftKernel, *, reps: int = 1) -> Iterator[Access]:
    """3-D FFT passes: log2(n) butterfly sweeps per axis over the cube.

    Emits the pencil-walk pattern at word-pair (complex) granularity: for
    each axis, each pencil is swept ``ceil(log2 n)`` times (the butterfly
    stages), with pencil elements contiguous along the Z axis only —
    reproducing the strided access of the Y/X passes.
    """
    import math

    n = kernel.size
    n_points = n**3
    stages = max(1, math.ceil(math.log2(n)))
    _guard(3 * 2 * n_points * stages * reps, "fft")
    cbytes = 16
    base = _layout({"cube": n_points * cbytes})

    def addr(i: int, j: int, k: int) -> int:
        return base["cube"] + ((i * n + j) * n + k) * cbytes

    for _ in range(reps):
        for axis in (1, 0, 2):  # Y, X, Z as the paper orders the passes
            for _stage in range(stages):
                for a in range(n):
                    for b in range(n):
                        for c in range(n):
                            if axis == 0:
                                i, j, k = c, a, b
                            elif axis == 1:
                                i, j, k = a, c, b
                            else:
                                i, j, k = a, b, c
                            yield Access(addr(i, j, k), size=cbytes)
                            yield Access(addr(i, j, k), size=cbytes, write=True)


def kernel_trace(kernel: Kernel, *, reps: int = 1) -> Iterator[Access]:
    """Dispatch to the tracer for ``kernel``'s type."""
    dispatch = {
        StreamKernel: trace_stream,
        GemmKernel: trace_gemm,
        CholeskyKernel: trace_cholesky,
        SpmvKernel: trace_spmv,
        SptransKernel: trace_sptrans,
        SptrsvKernel: trace_sptrsv,
        StencilKernel: trace_stencil,
        FftKernel: trace_fft,
    }
    for cls, fn in dispatch.items():
        if isinstance(kernel, cls):
            return fn(kernel, reps=reps)  # type: ignore[arg-type]
    raise TypeError(f"no tracer for {type(kernel).__name__}")


# -- batched (ndarray) tracers ----------------------------------------------
#
# Each builder returns one repetition's byte-granular reference stream as
# (addrs, sizes, writes) arrays in the exact order of its scalar tracer;
# ``sizes`` may be a scalar when every access is the same width.


def _array_stream(kernel: StreamKernel, reps: int):
    n = kernel.n
    _guard(3 * n * reps, "stream")
    base = _layout({"a": n * WORD, "b": n * WORD, "c": n * WORD})
    i = np.arange(n, dtype=np.int64) * WORD
    addrs = np.empty(3 * n, dtype=np.int64)
    addrs[0::3] = base["b"] + i
    addrs[1::3] = base["c"] + i
    addrs[2::3] = base["a"] + i
    writes = np.zeros(3 * n, dtype=bool)
    writes[2::3] = True
    return addrs, WORD, writes


def _array_gemm(kernel: GemmKernel, reps: int):
    n, b = kernel.order, min(kernel.tile, kernel.order)
    _guard(2 * n**3 * reps, "gemm")
    fp = n * n * WORD
    base = _layout({"A": fp, "B": fp, "C": fp})
    seg_a, seg_w = [], []
    for i0 in range(0, n, b):
        ii = np.arange(i0, min(i0 + b, n), dtype=np.int64)
        for j0 in range(0, n, b):
            jj = np.arange(j0, min(j0 + b, n), dtype=np.int64)
            for p0 in range(0, n, b):
                pp = np.arange(p0, min(p0 + b, n), dtype=np.int64)
                bi, bj, bp = len(ii), len(jj), len(pp)
                # Per (i, j): A(i,p),B(p,j) pairs over p, then C(i,j).
                blk = np.empty((bi, bj, 2 * bp + 1), dtype=np.int64)
                a_row = base["A"] + (ii[:, None] * n + pp[None, :]) * WORD
                b_col = base["B"] + (pp[:, None] * n + jj[None, :]) * WORD
                blk[:, :, 0 : 2 * bp : 2] = a_row[:, None, :]
                blk[:, :, 1 : 2 * bp : 2] = np.swapaxes(b_col, 0, 1)[None, :, :]
                blk[:, :, 2 * bp] = base["C"] + (ii[:, None] * n + jj[None, :]) * WORD
                w = np.zeros((bi, bj, 2 * bp + 1), dtype=bool)
                w[:, :, 2 * bp] = True
                seg_a.append(blk.ravel())
                seg_w.append(w.ravel())
    return np.concatenate(seg_a), WORD, np.concatenate(seg_w)


def _array_cholesky(kernel: CholeskyKernel, reps: int):
    n, b = kernel.order, min(kernel.tile, kernel.order)
    _guard(n**3 * reps, "cholesky")
    a0 = _layout({"A": n * n * WORD})["A"]
    seg_a, seg_w = [], []
    for k0 in range(0, n, b):
        k1 = min(k0 + b, n)
        pp = np.arange(k0, k1, dtype=np.int64)
        bp = len(pp)
        # POTRF: row-major lower triangle of the diagonal tile, all writes.
        ti, tj = np.tril_indices(k1 - k0)
        seg_a.append(a0 + ((k0 + ti) * n + (k0 + tj)) * WORD)
        seg_w.append(np.ones(ti.size, dtype=bool))
        for i0 in range(k1, n, b):
            i1 = min(i0 + b, n)
            ii = np.arange(i0, i1, dtype=np.int64)
            bi = len(ii)
            # TRSM panel: every (i, p) written, row-major.
            a_rows = a0 + (ii[:, None] * n + pp[None, :]) * WORD
            seg_a.append(a_rows.ravel())
            seg_w.append(np.ones(a_rows.size, dtype=bool))
            # SYRK/GEMM trailing update: per (i, j) the A(i,p),A(j,p)
            # pairs over p, then the C-position write — gemm's block
            # shape with both operands drawn from the same panel.
            for j0 in range(k1, i1, b):
                j1 = min(j0 + b, i1)
                jj = np.arange(j0, j1, dtype=np.int64)
                bj = len(jj)
                b_rows = a0 + (jj[:, None] * n + pp[None, :]) * WORD
                blk = np.empty((bi, bj, 2 * bp + 1), dtype=np.int64)
                blk[:, :, 0 : 2 * bp : 2] = a_rows[:, None, :]
                blk[:, :, 1 : 2 * bp : 2] = b_rows[None, :, :]
                blk[:, :, 2 * bp] = a0 + (ii[:, None] * n + jj[None, :]) * WORD
                w = np.zeros((bi, bj, 2 * bp + 1), dtype=bool)
                w[:, :, 2 * bp] = True
                seg_a.append(blk.ravel())
                seg_w.append(w.ravel())
    return np.concatenate(seg_a), WORD, np.concatenate(seg_w)


def _array_sptrsv(kernel: SptrsvKernel, reps: int):
    matrix = kernel.matrix if kernel.matrix is not None else kernel.descriptor.materialize()
    lower = matrix.lower_triangle()
    schedule = build_levels(lower)
    _guard(4 * lower.nnz * reps, "sptrsv")
    base = _layout(
        {
            "vals": lower.nnz * WORD,
            "cols": lower.nnz * 4,
            "indptr": (lower.n_rows + 1) * 4,
            "x": lower.n_rows * WORD,
            "b": lower.n_rows * WORD,
        }
    )
    indptr = np.asarray(lower.indptr, dtype=np.int64)
    indices = np.asarray(lower.indices, dtype=np.int64)
    # Concatenating rows_in_level(0..n_levels) is exactly the stable
    # level-sorted row order the scheduler stores.
    perm = np.asarray(schedule.order, dtype=np.int64)
    n_rows = perm.shape[0]
    row_nnz = indptr[perm + 1] - indptr[perm]
    total_nnz = int(row_nnz.sum())
    nnz_starts = np.cumsum(row_nnz) - row_nnz
    if total_nnz:
        row_of = np.repeat(np.arange(n_rows, dtype=np.int64), row_nnz)
        pos = np.arange(total_nnz, dtype=np.int64) - np.repeat(nnz_starts, row_nnz)
        k = np.repeat(indptr[perm], row_nnz) + pos
        j = indices[k]
        lt = j < np.repeat(perm, row_nnz)  # strictly-lower: gathers x[j]
        lt_per_row = np.bincount(row_of[lt], minlength=n_rows)
    else:
        row_of = k = j = np.empty(0, dtype=np.int64)
        lt = np.empty(0, dtype=bool)
        lt_per_row = np.zeros(n_rows, dtype=np.int64)
    # Per row in level order: indptr read, (cols, vals[, x-gather]) per
    # nonzero, b read, x write.
    counts = 3 + 2 * row_nnz + lt_per_row
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    addrs = np.empty(total, dtype=np.int64)
    sizes = np.full(total, WORD, dtype=np.int64)
    writes = np.zeros(total, dtype=bool)
    addrs[starts] = base["indptr"] + perm * 4
    sizes[starts] = 4
    ends = starts + counts
    addrs[ends - 2] = base["b"] + perm * WORD
    addrs[ends - 1] = base["x"] + perm * WORD
    writes[ends - 1] = True
    if total_nnz:
        # Event offset of each nonzero within its row's run: the global
        # event prefix minus the prefix at the row's first nonzero.
        ev_per_nnz = 2 + lt
        cum_ev = np.cumsum(ev_per_nnz) - ev_per_nnz
        nonempty = row_nnz > 0
        within = cum_ev - np.repeat(cum_ev[nnz_starts[nonempty]], row_nnz[nonempty])
        t0 = starts[row_of] + 1 + within
        addrs[t0] = base["cols"] + k * 4
        sizes[t0] = 4
        addrs[t0 + 1] = base["vals"] + k * WORD
        addrs[t0[lt] + 2] = base["x"] + j[lt] * WORD
    return addrs, sizes, writes


def _array_spmv(kernel: SpmvKernel, reps: int):
    matrix = kernel.matrix if kernel.matrix is not None else kernel.descriptor.materialize()
    _guard(4 * matrix.nnz * reps, "spmv")
    n_rows, nnz = matrix.n_rows, matrix.nnz
    base = _layout(
        {
            "vals": nnz * WORD,
            "cols": nnz * 4,
            "indptr": (n_rows + 1) * 4,
            "x": matrix.n_cols * WORD,
            "y": n_rows * WORD,
        }
    )
    indptr = np.asarray(matrix.indptr, dtype=np.int64)
    indices = np.asarray(matrix.indices, dtype=np.int64)
    row_nnz = np.diff(indptr)
    # Per row: indptr read, (cols, vals, x) per nonzero, y write.
    counts = 3 * row_nnz + 2
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    rows = np.arange(n_rows, dtype=np.int64)
    addrs = np.empty(total, dtype=np.int64)
    sizes = np.full(total, WORD, dtype=np.int64)
    writes = np.zeros(total, dtype=bool)
    addrs[starts] = base["indptr"] + rows * 4
    sizes[starts] = 4
    ends = starts + counts - 1
    addrs[ends] = base["y"] + rows * WORD
    writes[ends] = True
    if nnz:
        row_of = np.repeat(rows, row_nnz)
        pos = np.arange(nnz, dtype=np.int64) - np.repeat(indptr[:-1], row_nnz)
        t0 = starts[row_of] + 1 + 3 * pos
        k = np.arange(nnz, dtype=np.int64)
        addrs[t0] = base["cols"] + k * 4
        sizes[t0] = 4
        addrs[t0 + 1] = base["vals"] + k * WORD
        addrs[t0 + 2] = base["x"] + indices * WORD
    return addrs, sizes, writes


def _array_sptrans(kernel: SptransKernel, reps: int):
    matrix = kernel.matrix if kernel.matrix is not None else kernel.descriptor.materialize()
    _guard(6 * matrix.nnz * reps, "sptrans")
    n_cols, nnz = matrix.n_cols, matrix.nnz
    base = _layout(
        {
            "in_vals": nnz * WORD,
            "in_cols": nnz * 4,
            "counts": n_cols * 4,
            "out_vals": nnz * WORD,
            "out_rows": nnz * 4,
            "out_ptr": (n_cols + 1) * 4,
        }
    )
    indices = np.asarray(matrix.indices, dtype=np.int64)
    order = np.argsort(indices, kind="stable")
    slot_of = np.empty(nnz, dtype=np.int64)
    slot_of[order] = np.arange(nnz)
    k = np.arange(nnz, dtype=np.int64)
    j = np.arange(n_cols, dtype=np.int64)
    # Pass 1: in_cols read / counts write per nonzero.
    p1 = np.empty(2 * nnz, dtype=np.int64)
    p1[0::2] = base["in_cols"] + k * 4
    p1[1::2] = base["counts"] + indices * 4
    s1 = np.full(2 * nnz, 4, dtype=np.int64)
    w1 = np.zeros(2 * nnz, dtype=bool)
    w1[1::2] = True
    # Pass 2: counts read / out_ptr write per column.
    p2 = np.empty(2 * n_cols, dtype=np.int64)
    p2[0::2] = base["counts"] + j * 4
    p2[1::2] = base["out_ptr"] + j * 4
    s2 = np.full(2 * n_cols, 4, dtype=np.int64)
    w2 = np.zeros(2 * n_cols, dtype=bool)
    w2[1::2] = True
    # Pass 3: in_cols, in_vals reads; out_vals, out_rows scatter writes.
    p3 = np.empty(4 * nnz, dtype=np.int64)
    p3[0::4] = base["in_cols"] + k * 4
    p3[1::4] = base["in_vals"] + k * WORD
    p3[2::4] = base["out_vals"] + slot_of * WORD
    p3[3::4] = base["out_rows"] + slot_of * 4
    s3 = np.full(4 * nnz, WORD, dtype=np.int64)
    s3[0::4] = 4
    s3[3::4] = 4
    w3 = np.zeros(4 * nnz, dtype=bool)
    w3[2::4] = True
    w3[3::4] = True
    return (
        np.concatenate((p1, p2, p3)),
        np.concatenate((s1, s2, s3)),
        np.concatenate((w1, w2, w3)),
    )


def _array_stencil(kernel: StencilKernel, reps: int):
    nx, ny, nz = kernel.nx, kernel.ny, kernel.nz
    cells_n = nx * ny * nz
    _guard((6 * RADIUS + 4) * cells_n * kernel.steps * reps, "stencil")
    grid_bytes = cells_n * WORD
    base = _layout({"prev": grid_bytes, "curr": grid_bytes, "vel": grid_bytes})
    r = RADIUS
    di, dj, dk = ny * nz * WORD, nz * WORD, WORD
    # Byte offsets of one cell's event run, relative to curr[i,j,k]:
    # center read, 6 neighbors per radius step, prev, vel, center write.
    offs = [0]
    for t in range(1, r + 1):
        offs += [t * di, -t * di, t * dj, -t * dj, t * dk, -t * dk]
    offs += [base["prev"] - base["curr"], base["vel"] - base["curr"], 0]
    offsets = np.array(offs, dtype=np.int64)
    wpat = np.zeros(len(offs), dtype=bool)
    wpat[-1] = True
    ii = np.arange(r, nx - r, dtype=np.int64)
    jj = np.arange(r, ny - r, dtype=np.int64)
    kk = np.arange(r, nz - r, dtype=np.int64)
    cells = (
        base["curr"]
        + ((ii[:, None, None] * ny + jj[None, :, None]) * nz + kk[None, None, :]).ravel()
        * WORD
    )
    sweep = (cells[:, None] + offsets[None, :]).ravel()
    sweep_w = np.tile(wpat, len(cells))
    return np.tile(sweep, kernel.steps), WORD, np.tile(sweep_w, kernel.steps)


def _array_fft(kernel: FftKernel, reps: int):
    import math

    n = kernel.size
    stages = max(1, math.ceil(math.log2(n)))
    _guard(3 * 2 * n**3 * stages * reps, "fft")
    cbytes = 16
    base = _layout({"cube": n**3 * cbytes})
    a = np.arange(n, dtype=np.int64)
    seg_a, seg_w = [], []
    # (a, b, c) loop coefficients realizing the Y, X, Z pass index maps
    # of trace_fft: idx = a*ca + b*cb + c*cc.
    for ca, cb, cc in ((n * n, 1, n), (n, 1, n * n), (n * n, n, 1)):
        idx = (
            a[:, None, None] * ca + a[None, :, None] * cb + a[None, None, :] * cc
        ).ravel()
        pts = base["cube"] + idx * cbytes
        pair = np.repeat(pts, 2)  # read then write of the same point
        w = np.zeros(pair.size, dtype=bool)
        w[1::2] = True
        for _ in range(stages):
            seg_a.append(pair)
            seg_w.append(w)
    return np.concatenate(seg_a), cbytes, np.concatenate(seg_w)


_ARRAY_TRACERS = {
    StreamKernel: _array_stream,
    GemmKernel: _array_gemm,
    CholeskyKernel: _array_cholesky,
    SpmvKernel: _array_spmv,
    SptransKernel: _array_sptrans,
    SptrsvKernel: _array_sptrsv,
    StencilKernel: _array_stencil,
    FftKernel: _array_fft,
}


def kernel_trace_chunks(
    kernel: Kernel,
    *,
    reps: int = 1,
    line: int = LINE_BYTES,
    chunk: int = CHUNK,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Line-address chunks of ``kernel``'s trace (batched fast path).

    Yields ``(line_addrs, writes)`` ndarray pairs replaying exactly the
    stream of ``to_line_trace(kernel_trace(kernel, reps), line)``. All
    eight paper kernels expand one repetition vectorized and replay it
    ``reps`` times; unknown kernel types adapt their scalar tracers
    through :func:`repro.trace.batch.chunk_accesses`.
    """
    for cls, fn in _ARRAY_TRACERS.items():
        if isinstance(kernel, cls):
            # Same span name (and counter) as Kernel.trace: consumers
            # key on the logical phase, not on which path generated it.
            with telemetry.span(
                tm.SPAN_KERNEL_TRACE, kernel=kernel.name, reps=reps, batched=True
            ) as sp:
                addrs, sizes, writes = fn(kernel, reps)
                la, lw = expand_lines(addrs, sizes, writes, line)
                n = int(la.size) * reps
                sp.set_attr("events", n)
                telemetry.counter(tm.kernel_trace_events(kernel.name)).inc(n)

            def replay() -> Iterator[tuple[np.ndarray, np.ndarray]]:
                for _ in range(reps):
                    yield from chunk_arrays(la, lw, chunk)

            return replay()
    return chunk_accesses(kernel_trace(kernel, reps=reps), line, chunk)
