"""Kernel characteristics — the formulas of paper Table 2.

Operations, bytes and arithmetic intensity for each of the eight kernels,
exactly as tabulated (double precision; sparse formulas in terms of
``nnz`` and row count ``M``). :func:`ai_spectrum` reproduces Figure 4's
kernel placement, and the roofline experiment (Figure 5) positions kernels
with these values.
"""

from __future__ import annotations

import dataclasses
import math

#: Canonical kernel order used across tables and figures.
KERNEL_ORDER = (
    "stream",
    "spmv",
    "sptrsv",
    "sptrans",
    "fft",
    "stencil",
    "cholesky",
    "gemm",
)


@dataclasses.dataclass(frozen=True)
class KernelCharacteristics:
    """One row of Table 2."""

    name: str
    implementation: str
    dwarf: str
    klass: str  # dense / sparse / others
    complexity: str
    operations: float
    bytes: float
    threads_broadwell: int
    threads_knl: int

    @property
    def arithmetic_intensity(self) -> float:
        return self.operations / self.bytes if self.bytes else float("inf")


def gemm_characteristics(n: int) -> KernelCharacteristics:
    """GEMM: 2n^3 ops over 32n^2 bytes => AI = n/16."""
    return KernelCharacteristics(
        name="gemm",
        implementation="PLASMA-style tiled DGEMM",
        dwarf="Dense Linear Algebra",
        klass="dense",
        complexity="O(n^3)",
        operations=2.0 * n**3,
        bytes=32.0 * n**2,
        threads_broadwell=4,
        threads_knl=64,
    )


def cholesky_characteristics(n: int) -> KernelCharacteristics:
    """Cholesky: n^3/3 ops over 8n^2 bytes => AI = n/24."""
    return KernelCharacteristics(
        name="cholesky",
        implementation="PLASMA-style tiled DPOTRF",
        dwarf="Dense Linear Algebra",
        klass="dense",
        complexity="O(n^3)",
        operations=n**3 / 3.0,
        bytes=8.0 * n**2,
        threads_broadwell=4,
        threads_knl=64,
    )


def spmv_characteristics(nnz: int, m: int) -> KernelCharacteristics:
    """SpMV: nnz + 2M ops over 12nnz + 20M bytes."""
    return KernelCharacteristics(
        name="spmv",
        implementation="CSR5 SpMV",
        dwarf="Sparse Linear Algebra",
        klass="sparse",
        complexity="O(nnz)",
        operations=float(nnz + 2 * m),
        bytes=float(12 * nnz + 20 * m),
        threads_broadwell=8,
        threads_knl=256,
    )


def sptrans_characteristics(nnz: int, m: int) -> KernelCharacteristics:
    """SpTRANS: nnz*log(nnz) ops over 24nnz + 8M bytes."""
    return KernelCharacteristics(
        name="sptrans",
        implementation="ScanTrans / MergeTrans",
        dwarf="Sparse Linear Algebra",
        klass="sparse",
        complexity="O(nnz log nnz)",
        operations=float(nnz) * math.log2(max(2, nnz)),
        bytes=float(24 * nnz + 8 * m),
        threads_broadwell=4,
        threads_knl=64,
    )


def sptrsv_characteristics(nnz: int, m: int) -> KernelCharacteristics:
    """SpTRSV: same counts as SpMV but inherently sequential."""
    return KernelCharacteristics(
        name="sptrsv",
        implementation="P2P/SpMP level-scheduled solve",
        dwarf="Sparse Linear Algebra",
        klass="sparse",
        complexity="O(nnz)",
        operations=float(nnz + 2 * m),
        bytes=float(12 * nnz + 20 * m),
        threads_broadwell=8,
        threads_knl=256,
    )


def fft_characteristics(n: int) -> KernelCharacteristics:
    """FFT: 5 n log2 n ops over 48 n bytes => AI = 5 log2(n)/48."""
    return KernelCharacteristics(
        name="fft",
        implementation="FFTW-style 3-D Cooley-Tukey",
        dwarf="Spectral Methods",
        klass="others",
        complexity="O(n log n)",
        operations=5.0 * n * math.log2(max(2, n)),
        bytes=48.0 * n,
        threads_broadwell=8,
        threads_knl=256,
    )


def stencil_characteristics(n_cells: int) -> KernelCharacteristics:
    """Stencil (iso3dfd): 61 ops/cell over 8 B/cell => AI = 7.625."""
    return KernelCharacteristics(
        name="stencil",
        implementation="YASK iso3dfd (16th order space, 2nd time)",
        dwarf="Structured Grid",
        klass="others",
        complexity="O(n^2)",
        operations=61.0 * n_cells,
        bytes=8.0 * n_cells,
        threads_broadwell=8,
        threads_knl=256,
    )


def stream_characteristics(n: int) -> KernelCharacteristics:
    """STREAM TRIAD: 2n ops over 32n bytes => AI = 0.0625."""
    return KernelCharacteristics(
        name="stream",
        implementation="STREAM TRIAD",
        dwarf="N/A",
        klass="others",
        complexity="O(1)",
        operations=2.0 * n,
        bytes=32.0 * n,
        threads_broadwell=8,
        threads_knl=256,
    )


def table2(n: int = 1024, nnz: int = 1024, m: int = 32) -> list[KernelCharacteristics]:
    """All eight rows at the paper's reference point (Fig 5 caption:
    n = 1024, nnz = 1024, M = 32)."""
    rows = {
        "gemm": gemm_characteristics(n),
        "cholesky": cholesky_characteristics(n),
        "spmv": spmv_characteristics(nnz, m),
        "sptrans": sptrans_characteristics(nnz, m),
        "sptrsv": sptrsv_characteristics(nnz, m),
        "fft": fft_characteristics(n),
        "stencil": stencil_characteristics(n),
        "stream": stream_characteristics(n),
    }
    return [rows[k] for k in KERNEL_ORDER]


def ai_spectrum(n: int = 1024, nnz: int = 1024, m: int = 32) -> dict[str, float]:
    """Kernel -> arithmetic intensity, ordered low to high (Figure 4)."""
    spectrum = {row.name: row.arithmetic_intensity for row in table2(n, nnz, m)}
    return dict(sorted(spectrum.items(), key=lambda kv: kv[1]))
