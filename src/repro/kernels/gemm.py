"""General matrix-matrix multiplication (PLASMA-style tiled DGEMM).

Functional face: a genuinely tiled ``C = alpha*A@B + beta*C`` whose tile
loop mirrors PLASMA's dgemm task graph (k-loop innermost per C tile, so a
C tile stays resident across the accumulation). Analytic face: the
classic blocked-GEMM traffic model — with b x b tiles, A and B are each
re-loaded ``n/b`` times, so traffic beyond the tile-fitting cache level is
``16 n^3 / b`` bytes, while a cache that holds all three matrices
(``24 n^2`` bytes) reduces traffic to compulsory misses. This is what
produces the paper's Figure 7/15 heatmap structure: tiling impact is
strongest exactly when the three-tile working set (``24 b^2``) falls
between cache levels.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.characteristics import gemm_characteristics
from repro.kernels.profile import Phase, ReuseCurve, WorkloadProfile

#: Effective register/L1 micro-kernel reuse factor (elements of A and B
#: are consumed this many times per trip from the cache hierarchy).
MICRO_REUSE = 6.0


@dataclasses.dataclass
class GemmKernel(Kernel):
    """``C = A @ B`` on ``order x order`` doubles with ``tile x tile`` blocking."""

    order: int
    tile: int
    seed: int = 0

    name = "gemm"

    def __post_init__(self) -> None:
        if self.order <= 0:
            raise ValueError("order must be positive")
        if self.tile <= 0:
            raise ValueError("tile must be positive")

    # -- functional ---------------------------------------------------------

    def run(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        a = rng.standard_normal((self.order, self.order))
        b = rng.standard_normal((self.order, self.order))
        return tiled_gemm(a, b, tile=self.tile)

    def validate(self) -> bool:
        rng = np.random.default_rng(self.seed)
        a = rng.standard_normal((self.order, self.order))
        b = rng.standard_normal((self.order, self.order))
        return bool(np.allclose(tiled_gemm(a, b, tile=self.tile), a @ b))

    # -- analytic -----------------------------------------------------------

    def flops(self) -> float:
        return gemm_characteristics(self.order).operations

    def profile(self) -> WorkloadProfile:
        n = float(self.order)
        b = float(min(self.tile, self.order))
        word = 8.0
        fp_matrix = word * n * n
        # Word references after register blocking: A and B each touched
        # n^3 times logically, hitting registers MICRO_REUSE-1 times out
        # of MICRO_REUSE; C read+write once per k-panel.
        demand = 2.0 * word * n**3 / MICRO_REUSE + 2.0 * word * n * n
        # Traffic that escapes a cache holding the three active tiles:
        # per-pass tile reloads of A and B plus C's compulsory traffic.
        tile_traffic = 2.0 * word * n**3 / b + 2.0 * fp_matrix
        three_tiles = 3.0 * word * b * b
        # L1 micro-kernel reuse: the B panel (b x r doubles) stays L1
        # resident across the A micro-rows of a tile, filtering most
        # references before they reach L2.
        micro_ws = 4.0 * word * MICRO_REUSE * b
        micro_frac = 1.0 - 1.0 / (2.0 * MICRO_REUSE)
        tile_frac = max(micro_frac, 1.0 - tile_traffic / demand)
        # Steady state across benchmark repetitions: everything hits once
        # the whole problem (3 n^2 doubles) fits a level.
        reuse = ReuseCurve.from_knots(
            [
                (micro_ws, micro_frac),
                (three_tiles, tile_frac),
            ],
            footprint=3.0 * fp_matrix,
        )
        phase = Phase(
            name="tiled-matmul",
            flops=self.flops(),
            demand_bytes=demand,
            reuse=reuse,
            write_fraction=float(n * n) * word / demand,
            mlp=10.0,
        )
        return WorkloadProfile(
            kernel=self.name,
            params={"order": self.order, "tile": self.tile},
            phases=(phase,),
            arrays={"A": int(fp_matrix), "B": int(fp_matrix), "C": int(fp_matrix)},
            compute_efficiency=self.compute_efficiency(),
        )

    def compute_efficiency(self) -> float:
        """Tiling/vectorization efficiency in (0, 1].

        Three multiplicative terms: micro-kernel ramp-up (tiles below the
        vector/pipeline sweet spot waste issue slots), edge waste (orders
        not divisible by the tile recompute ragged edges), and a mild
        penalty for degenerate one-tile problems (no task parallelism).
        """
        n, b = self.order, min(self.tile, self.order)
        ramp = b / (b + 24.0)
        n_tiles = -(-n // b)
        padded = n_tiles * b
        edge = (n / padded) ** 2
        tasks = n_tiles * n_tiles
        parallel = min(1.0, tasks / 4.0) ** 0.25
        return max(1e-3, ramp * edge * parallel)


def tiled_gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    tile: int,
    alpha: float = 1.0,
    beta: float = 0.0,
    c: np.ndarray | None = None,
) -> np.ndarray:
    """Blocked ``alpha * a @ b + beta * c`` (PLASMA task order)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError("inner dimensions disagree")
    out = np.zeros((m, n)) if c is None else beta * np.asarray(c, dtype=np.float64)
    if c is None:
        beta = 0.0
    for i0 in range(0, m, tile):
        i1 = min(i0 + tile, m)
        for j0 in range(0, n, tile):
            j1 = min(j0 + tile, n)
            acc = out[i0:i1, j0:j1]
            for p0 in range(0, k, tile):
                p1 = min(p0 + tile, k)
                acc += alpha * (a[i0:i1, p0:p1] @ b[p0:p1, j0:j1])
    return out
