"""3-D Fast Fourier Transform (FFTW-style Cooley-Tukey, pencil decomposed).

Functional face: a mixed-radix Cooley-Tukey FFT built from scratch —
radix-2 decimation where possible, generic prime-factor splitting with a
direct DFT base case otherwise — applied axis by axis (Y, then X, then Z,
the order the paper describes for the threaded 3-D FFTW run, Section
3.1.3), vectorized across pencils. Validated against ``numpy.fft.fftn``.

Analytic face: each axis pass sweeps the whole cube ``log2(n)`` times but
with pencil-resident reuse, followed by an all-to-all-style reshuffle
with no reuse below the cube size; the Table 2 accounting (5 N log N ops
over 48 N bytes) provides the throughput numerator.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.characteristics import fft_characteristics
from repro.kernels.profile import Phase, ReuseCurve, WorkloadProfile

#: Largest prime factor handled by the direct-DFT base case.
_DIRECT_LIMIT = 64


def _smallest_prime_factor(n: int) -> int:
    if n % 2 == 0:
        return 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return f
        f += 2
    return n


def fft_1d(x: np.ndarray) -> np.ndarray:
    """FFT along the last axis of a complex array (any length >= 1)."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[-1]
    if n == 1:
        return x.copy()
    p = _smallest_prime_factor(n)
    if p == n:
        if n > _DIRECT_LIMIT:
            raise ValueError(
                f"prime transform length {n} exceeds the direct-DFT limit"
            )
        k = np.arange(n)
        dft = np.exp(-2j * np.pi * np.outer(k, k) / n)
        return x @ dft.T
    m = n // p
    # Decimate into p interleaved subsequences and recurse.
    sub = fft_1d(
        np.stack([x[..., r::p] for r in range(p)], axis=-2)
    )  # (..., p, m)
    q = np.arange(m)
    r = np.arange(p)
    s = np.arange(p)
    # Twiddle each subsequence, then combine across residues:
    # X[q + m s] = sum_r omega_n^{r (q + m s)} * Y_r[q].
    omega_n = np.exp(-2j * np.pi / n)
    twiddle = omega_n ** (r[:, None] * q[None, :])  # (p, m)
    twisted = sub * twiddle  # (..., p, m)
    combine = np.exp(-2j * np.pi * np.outer(s, r) / p)  # (p, p)
    out = np.einsum("sr,...rq->...sq", combine, twisted)
    return out.reshape(*x.shape[:-1], n)


def fft_3d(cube: np.ndarray) -> np.ndarray:
    """3-D FFT: 1-D passes along Y, X, then Z (paper Section 3.1.3)."""
    cube = np.asarray(cube, dtype=np.complex128)
    if cube.ndim != 3:
        raise ValueError("fft_3d expects a 3-D array")
    for axis in (1, 0, 2):  # Y, X, Z
        moved = np.moveaxis(cube, axis, -1)
        cube = np.moveaxis(fft_1d(moved), -1, axis)
    return cube


@dataclasses.dataclass
class FftKernel(Kernel):
    """3-D FFT on a ``size^3`` complex cube."""

    size: int
    seed: int = 0

    name = "fft"

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ValueError("size must be >= 2")

    @property
    def n_points(self) -> int:
        return self.size**3

    # -- functional ---------------------------------------------------------

    def run(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        cube = rng.standard_normal((self.size,) * 3) + 1j * rng.standard_normal(
            (self.size,) * 3
        )
        return fft_3d(cube)

    def validate(self) -> bool:
        rng = np.random.default_rng(self.seed)
        cube = rng.standard_normal((self.size,) * 3) + 1j * rng.standard_normal(
            (self.size,) * 3
        )
        return bool(np.allclose(fft_3d(cube), np.fft.fftn(cube), atol=1e-8 * self.size))

    # -- analytic -----------------------------------------------------------

    def flops(self) -> float:
        return fft_characteristics(self.n_points).operations

    def profile(self) -> WorkloadProfile:
        n = float(self.size)
        big_n = float(self.n_points)
        complex_bytes = 16.0
        footprint = 48.0 * big_n  # Table 2: in + out + twiddles
        sweeps = math.log2(max(2.0, n))
        pencil_ws = complex_bytes * n * 8.0  # a few pencils + twiddles
        phases: list[Phase] = []
        flops_per_pass = self.flops() / 3.0
        for axis in ("Y", "X", "Z"):
            # Butterfly sweeps: log2(n) passes over the cube, reused
            # within each pencil; strided axes cost full lines anyway, so
            # demand counts line-granular bytes.
            phases.append(
                Phase(
                    name=f"fft-{axis}",
                    flops=flops_per_pass,
                    demand_bytes=2.0 * complex_bytes * big_n * sweeps,
                    reuse=ReuseCurve(
                        [
                            (pencil_ws, 1.0 - 1.0 / sweeps),
                            (footprint, 1.0),
                        ]
                    ),
                    write_fraction=0.5,
                    mlp=8.0,
                )
            )
            if axis != "Z":
                # All-to-all style reshuffle between passes: a full
                # streaming pass with no sub-footprint reuse.
                phases.append(
                    Phase(
                        name=f"transpose-after-{axis}",
                        flops=0.0,
                        demand_bytes=2.0 * complex_bytes * big_n,
                        reuse=ReuseCurve([(footprint, 1.0)]),
                        write_fraction=0.5,
                        mlp=8.0,
                    )
                )
        return WorkloadProfile(
            kernel=self.name,
            params={"size": self.size},
            phases=tuple(phases),
            arrays={
                "in": int(complex_bytes * big_n),
                "out": int(complex_bytes * big_n),
                "twiddle": int(complex_bytes * big_n),
            },
            compute_efficiency=0.35,
        )
