"""Sparse matrix-vector multiplication (CSR5-based, Liu & Vinter ICS '15).

Functional face: SpMV through the real CSR5 tile layout
(:mod:`repro.sparse.csr5`) plus a plain CSR reference path. Analytic
face: the matrix payload (values + column indices + row pointers) streams
with no intra-iteration reuse, while the x-vector gathers reuse according
to the matrix *structure* — banded patterns reuse x within a small column
window, random patterns only once the whole working set fits a cache.
The structure heatmaps of Figures 9/20 come straight out of this split:
small-row-count matrices cache their vectors well.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.characteristics import spmv_characteristics
from repro.kernels.profile import Phase, ReuseCurve, WorkloadProfile
from repro.sparse.csr import CSRMatrix
from repro.sparse.csr5 import encode, spmv_csr5
from repro.sparse.descriptors import MatrixDescriptor, from_matrix


def spmv_csr(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Reference row-wise CSR SpMV (vectorized with reduceat)."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.n_cols,):
        raise ValueError(f"x must have shape ({matrix.n_cols},)")
    products = matrix.data * x[matrix.indices]
    y = np.zeros(matrix.n_rows)
    nonempty = matrix.row_nnz() > 0
    starts = matrix.indptr[:-1][nonempty]
    if len(starts):
        y[nonempty] = np.add.reduceat(products, starts)
    return y


@dataclasses.dataclass
class SpmvKernel(Kernel):
    """``y = A @ x`` for one matrix (materialized or descriptor-only)."""

    descriptor: MatrixDescriptor
    matrix: CSRMatrix | None = None
    seed: int = 0

    name = "spmv"

    @classmethod
    def from_matrix(cls, matrix: CSRMatrix, *, name: str = "input") -> "SpmvKernel":
        """Build with measured structure scores (functional + analytic)."""
        return cls(descriptor=from_matrix(name, matrix), matrix=matrix)

    def _materialized(self) -> CSRMatrix:
        if self.matrix is None:
            self.matrix = self.descriptor.materialize()
        return self.matrix

    # -- functional ---------------------------------------------------------

    def run(self) -> np.ndarray:
        m = self._materialized()
        rng = np.random.default_rng(self.seed)
        x = rng.random(m.n_cols)
        return spmv_csr5(encode(m), x)

    def validate(self) -> bool:
        m = self._materialized()
        rng = np.random.default_rng(self.seed)
        x = rng.random(m.n_cols)
        return bool(
            np.allclose(spmv_csr5(encode(m), x), m.to_scipy() @ x)
        )

    # -- analytic -----------------------------------------------------------

    def flops(self) -> float:
        d = self.descriptor
        return spmv_characteristics(d.nnz, d.n_rows).operations

    def profile(self) -> WorkloadProfile:
        d = self.descriptor
        nnz, m = float(d.nnz), float(d.n_rows)
        footprint = float(d.footprint_bytes)  # 12 nnz + 20 M (Table 2)
        # Matrix payload: vals (8) + col idx (4) per nnz + row ptrs, pure
        # stream within one iteration, full reuse across repetitions.
        stream_bytes = 12.0 * nnz + 4.0 * m
        stream = ReuseCurve([(footprint, 1.0)])
        # x gathers: one 8-byte load per nonzero over an 8M-byte vector.
        gather_bytes = 8.0 * nnz
        cold_frac = min(1.0, m / nnz)
        window = 64.0 * max(1.0, d.avg_row_nnz)  # banded reuse window
        gather = ReuseCurve(
            [
                (window, d.locality * (1.0 - cold_frac)),
                (footprint, 1.0),
            ]
        )
        # y stores: one streaming write per row.
        store_bytes = 8.0 * m
        store = ReuseCurve([(footprint, 1.0)])
        demand = stream_bytes + gather_bytes + store_bytes
        reuse = ReuseCurve.mix(
            [
                (stream, stream_bytes / demand),
                (gather, gather_bytes / demand),
                (store, store_bytes / demand),
            ]
        )
        phase = Phase(
            name="spmv",
            flops=self.flops(),
            demand_bytes=demand,
            reuse=reuse,
            write_fraction=store_bytes / demand,
            mlp=16.0,
        )
        return WorkloadProfile(
            kernel=self.name,
            params={"nnz": d.nnz, "rows": d.n_rows, "locality": d.locality},
            phases=(phase,),
            arrays={
                "vals": int(8 * d.nnz),
                "cols": int(4 * d.nnz),
                "indptr": int(4 * d.n_rows),
                "x": int(8 * d.n_rows),
                "y": int(8 * d.n_rows),
            },
            compute_efficiency=0.85,
        )
