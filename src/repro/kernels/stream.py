"""STREAM TRIAD (McCalpin) — the sustainable-bandwidth yardstick.

Functional face: ``a = b + alpha * c`` elementwise. Analytic face: pure
streaming — two loaded arrays, one stored, zero temporal reuse inside an
iteration, full reuse across benchmark repetitions once all three arrays
fit a level. Its throughput curve *is* the Stepping model (paper Figures
12 and 23): a peak at every cache capacity, then the next plateau.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.characteristics import stream_characteristics
from repro.kernels.profile import Phase, ReuseCurve, WorkloadProfile


def triad(b: np.ndarray, c: np.ndarray, alpha: float, out: np.ndarray | None = None) -> np.ndarray:
    """``out = b + alpha * c`` (allocating when ``out`` is None)."""
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    if b.shape != c.shape:
        raise ValueError("operands must share a shape")
    if out is None:
        out = np.empty_like(b)
    np.multiply(c, alpha, out=out)
    out += b
    return out


@dataclasses.dataclass
class StreamKernel(Kernel):
    """TRIAD over arrays of ``n`` doubles."""

    n: int
    alpha: float = 3.0
    seed: int = 0

    name = "stream"

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")

    # -- functional ---------------------------------------------------------

    def run(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        b = rng.random(self.n)
        c = rng.random(self.n)
        return triad(b, c, self.alpha)

    def validate(self) -> bool:
        rng = np.random.default_rng(self.seed)
        b = rng.random(self.n)
        c = rng.random(self.n)
        return bool(np.allclose(triad(b, c, self.alpha), b + self.alpha * c))

    # -- analytic -----------------------------------------------------------

    def flops(self) -> float:
        return stream_characteristics(self.n).operations

    def profile(self) -> WorkloadProfile:
        word = 8.0
        array_bytes = word * self.n
        footprint = 3.0 * array_bytes
        demand = 3.0 * array_bytes  # read b, read c, write a
        phase = Phase(
            name="triad",
            flops=self.flops(),
            demand_bytes=demand,
            reuse=ReuseCurve([(footprint, 1.0)]),  # only cross-repetition
            write_fraction=1.0 / 3.0,
            mlp=20.0,
        )
        return WorkloadProfile(
            kernel=self.name,
            params={"n": self.n},
            phases=(phase,),
            arrays={
                "a": int(array_bytes),
                "b": int(array_bytes),
                "c": int(array_bytes),
            },
            compute_efficiency=0.9,
        )
