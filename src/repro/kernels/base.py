"""Kernel base class.

Each of the paper's eight kernels is a :class:`Kernel` subclass with three
faces:

* ``run()`` — a *functional* NumPy implementation that computes the actual
  result, validated against SciPy/NumPy oracles in the test suite.
* ``profile()`` — the analytic :class:`~repro.kernels.profile.WorkloadProfile`
  consumed by the performance engine for full-scale sweeps.
* ``flops()`` — the Table 2 operation count used as the GFlop/s numerator.

The paper treats its kernels as black boxes (Section 3.1); the profile is
our white-box characterization of the same access behaviour.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Iterator

from repro import telemetry
from repro.kernels.profile import WorkloadProfile
from repro.telemetry import names as tm

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.memory.hierarchy import Hierarchy
    from repro.memory.stats import HierarchyStats
    from repro.trace.events import Access


class Kernel(abc.ABC):
    """Abstract scientific kernel."""

    #: Short name matching Table 2 ("gemm", "spmv", ...).
    name: str = ""

    @abc.abstractmethod
    def run(self) -> Any:
        """Execute the functional implementation and return its result."""

    @abc.abstractmethod
    def profile(self) -> WorkloadProfile:
        """Analytic workload profile for the performance engine."""

    @abc.abstractmethod
    def flops(self) -> float:
        """Useful floating-point operations (Table 2 accounting)."""

    def validate(self) -> bool:
        """Run the kernel against its oracle; True when results agree.

        Subclasses with a natural oracle override this; the default just
        checks that ``run`` completes.
        """
        self.run()
        return True

    # -- instrumented faces -------------------------------------------------

    def trace(self, *, reps: int = 1) -> Iterator["Access"]:
        """Cache-line access trace, wrapped in a ``kernel.trace`` span.

        Yields the same events as
        :func:`repro.kernels.traces.kernel_trace`; the span closes when
        the generator is exhausted and records the event count.
        """
        from repro.kernels.traces import kernel_trace

        with telemetry.span(tm.SPAN_KERNEL_TRACE, kernel=self.name, reps=reps) as sp:
            n = 0
            for event in kernel_trace(self, reps=reps):
                n += 1
                yield event
            sp.set_attr("events", n)
            telemetry.counter(tm.kernel_trace_events(self.name)).inc(n)

    def simulate(
        self, hierarchy: "Hierarchy", *, reps: int = 1
    ) -> "HierarchyStats":
        """Drive the exact simulator with this kernel's trace.

        Opens a ``kernel.simulate`` span enclosing both trace generation
        and the hierarchy walk, and returns the per-level statistics.
        """
        from repro.trace.events import to_line_trace

        with telemetry.span(tm.SPAN_KERNEL_SIMULATE, kernel=self.name, reps=reps):
            return hierarchy.run(
                to_line_trace(self.trace(reps=reps), hierarchy.line)
            )

    def simulate_batched(
        self, hierarchy: "Hierarchy", *, reps: int = 1
    ) -> "HierarchyStats":
        """Drive the simulator through the batched (ndarray) fast path.

        Produces statistics identical to :meth:`simulate` — the chunked
        trace replays the scalar stream exactly — at a several-fold
        higher reference throughput.
        """
        from repro.kernels.traces import kernel_trace_chunks

        with telemetry.span(tm.SPAN_KERNEL_SIMULATE_BATCHED, kernel=self.name, reps=reps):
            return hierarchy.run_batched(
                kernel_trace_chunks(self, reps=reps, line=hierarchy.line)
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
