"""Kernel base class.

Each of the paper's eight kernels is a :class:`Kernel` subclass with three
faces:

* ``run()`` — a *functional* NumPy implementation that computes the actual
  result, validated against SciPy/NumPy oracles in the test suite.
* ``profile()`` — the analytic :class:`~repro.kernels.profile.WorkloadProfile`
  consumed by the performance engine for full-scale sweeps.
* ``flops()`` — the Table 2 operation count used as the GFlop/s numerator.

The paper treats its kernels as black boxes (Section 3.1); the profile is
our white-box characterization of the same access behaviour.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.kernels.profile import WorkloadProfile


class Kernel(abc.ABC):
    """Abstract scientific kernel."""

    #: Short name matching Table 2 ("gemm", "spmv", ...).
    name: str = ""

    @abc.abstractmethod
    def run(self) -> Any:
        """Execute the functional implementation and return its result."""

    @abc.abstractmethod
    def profile(self) -> WorkloadProfile:
        """Analytic workload profile for the performance engine."""

    @abc.abstractmethod
    def flops(self) -> float:
        """Useful floating-point operations (Table 2 accounting)."""

    def validate(self) -> bool:
        """Run the kernel against its oracle; True when results agree.

        Subclasses with a natural oracle override this; the default just
        checks that ``run`` completes.
        """
        self.run()
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
