"""Cholesky decomposition (PLASMA-style tiled right-looking DPOTRF).

Functional face: the classic tiled right-looking factorization — POTRF on
the diagonal tile, TRSM down the panel, SYRK/GEMM on the trailing
submatrix — validated against ``numpy.linalg.cholesky``. Analytic face:
the trailing-matrix update dominates both flops (n^3/3) and traffic; each
panel step re-reads the trailing submatrix, giving ``~ 8 n^3 / (3 b)``
bytes of beyond-tile traffic, the Cholesky analogue of the GEMM model.

The paper observes (Section 4.2.1-I) that its Cholesky tiling is
*suboptimal for KNL's L2*, which is why MCDRAM lifts Cholesky's peak where
it cannot lift GEMM's; the same mechanics emerge here whenever ``24 b^2``
exceeds the L2 slice.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.linalg as sla

from repro.kernels.base import Kernel
from repro.kernels.characteristics import cholesky_characteristics
from repro.kernels.gemm import MICRO_REUSE
from repro.kernels.profile import Phase, ReuseCurve, WorkloadProfile


@dataclasses.dataclass
class CholeskyKernel(Kernel):
    """Factor a random SPD ``order x order`` matrix with ``tile`` blocking."""

    order: int
    tile: int
    seed: int = 0

    name = "cholesky"

    def __post_init__(self) -> None:
        if self.order <= 0 or self.tile <= 0:
            raise ValueError("order and tile must be positive")

    def _spd_matrix(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        m = rng.standard_normal((self.order, self.order))
        return m @ m.T + self.order * np.eye(self.order)

    # -- functional ---------------------------------------------------------

    def run(self) -> np.ndarray:
        return tiled_cholesky(self._spd_matrix(), tile=self.tile)

    def validate(self) -> bool:
        a = self._spd_matrix()
        l = tiled_cholesky(a, tile=self.tile)
        return bool(np.allclose(l @ l.T, a, atol=1e-8 * self.order))

    # -- analytic -----------------------------------------------------------

    def flops(self) -> float:
        return cholesky_characteristics(self.order).operations

    def profile(self) -> WorkloadProfile:
        n = float(self.order)
        b = float(min(self.tile, self.order))
        word = 8.0
        fp = word * n * n
        demand = word * n**3 / (3.0 * MICRO_REUSE) + 2.0 * fp
        # Right-looking update re-touches the (shrinking) trailing matrix
        # every panel: sum over k of (n - k b)^2 ~= n^3 / (3 b) words read
        # + written.
        tile_traffic = 2.0 * word * n**3 / (3.0 * b) + 2.0 * fp
        three_tiles = 3.0 * word * b * b
        micro_ws = 4.0 * word * MICRO_REUSE * b
        micro_frac = 1.0 - 1.0 / (2.0 * MICRO_REUSE)
        tile_frac = max(micro_frac, 1.0 - tile_traffic / demand)
        reuse = ReuseCurve.from_knots(
            [
                (micro_ws, micro_frac),
                (three_tiles, tile_frac),
            ],
            footprint=fp,
        )
        phase = Phase(
            name="tiled-potrf",
            flops=self.flops(),
            demand_bytes=demand,
            reuse=reuse,
            write_fraction=min(1.0, fp / demand),
            mlp=10.0,
        )
        return WorkloadProfile(
            kernel=self.name,
            params={"order": self.order, "tile": self.tile},
            phases=(phase,),
            arrays={"A": int(fp)},
            compute_efficiency=self.compute_efficiency(),
        )

    def compute_efficiency(self) -> float:
        """Like GEMM's, with a panel-serialization term: the factorization
        has a critical path of ``n/b`` dependent panel steps, so too-large
        tiles also hurt (the long-diagonal effect on Figure 8/16)."""
        n, b = self.order, min(self.tile, self.order)
        ramp = b / (b + 32.0)
        n_tiles = -(-n // b)
        padded = n_tiles * b
        edge = (n / padded) ** 2
        critical = min(1.0, (n_tiles - 1) / 3.0 + 0.4)
        return max(1e-3, ramp * edge * critical)


def tiled_cholesky(a: np.ndarray, *, tile: int) -> np.ndarray:
    """Right-looking tiled Cholesky; returns the lower factor L."""
    a = np.array(a, dtype=np.float64)  # copy: factorization is in-place
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("matrix must be square")
    for k0 in range(0, n, tile):
        k1 = min(k0 + tile, n)
        # POTRF: factor the diagonal tile.
        a[k0:k1, k0:k1] = np.linalg.cholesky(a[k0:k1, k0:k1])
        lkk = a[k0:k1, k0:k1]
        # TRSM: panel below the diagonal tile.
        for i0 in range(k1, n, tile):
            i1 = min(i0 + tile, n)
            a[i0:i1, k0:k1] = _trsm_lower_t(lkk, a[i0:i1, k0:k1])
        # SYRK / GEMM: trailing submatrix update.
        for i0 in range(k1, n, tile):
            i1 = min(i0 + tile, n)
            for j0 in range(k1, i1, tile):
                j1 = min(j0 + tile, i1)
                a[i0:i1, j0:j1] -= a[i0:i1, k0:k1] @ a[j0:j1, k0:k1].T
    return np.tril(a)


def _trsm_lower_t(lkk: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Solve ``X @ lkk.T = block`` for X (the TRSM of the panel step)."""
    return sla.solve_triangular(lkk, block.T, lower=True).T
