"""Workload profiles — the contract between kernels and the engine.

Every kernel can describe one configured run as a
:class:`WorkloadProfile`: how many useful flops it performs, which arrays
it allocates (for the NUMA placement of MCDRAM flat mode), and one or more
:class:`Phase` records characterizing its memory behaviour. A phase's
locality is a :class:`ReuseCurve` — the fraction of demanded bytes that
hit in an LRU working set of a given size, i.e. the byte-weighted
stack-distance CDF. The analytic engine evaluates that curve at the
cumulative capacities of a platform's hierarchy to obtain per-level
traffic (DESIGN.md Section 2, granularity 2); the trace simulator measures
the same quantity exactly, which is how the curves are validated.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Iterable, Mapping, Sequence


class ReuseCurve:
    """Piecewise-constant hit-fraction vs working-set-size curve.

    Points are ``(working_set_bytes, cumulative_hit_fraction)`` with the
    convention that a fully associative LRU cache of capacity ``C`` hits a
    fraction ``f(C) = max(frac for ws, frac in points if ws <= C)`` of the
    demanded bytes (0 below the first point). Fractions must be
    non-decreasing with size and lie in [0, 1].
    """

    __slots__ = ("_sizes", "_fracs")

    def __init__(self, points: Iterable[tuple[float, float]]) -> None:
        pts = sorted((float(s), float(f)) for s, f in points)
        sizes: list[float] = []
        fracs: list[float] = []
        prev_frac = 0.0
        for size, frac in pts:
            if size < 0:
                raise ValueError("working-set size must be non-negative")
            if not 0.0 <= frac <= 1.0:
                raise ValueError("hit fraction must be in [0, 1]")
            if frac < prev_frac - 1e-12:
                raise ValueError("hit fractions must be non-decreasing")
            frac = max(frac, prev_frac)
            if sizes and size == sizes[-1]:
                fracs[-1] = frac
            else:
                sizes.append(size)
                fracs.append(frac)
            prev_frac = frac
        self._sizes = sizes
        self._fracs = fracs

    @classmethod
    def no_reuse(cls) -> "ReuseCurve":
        """Pure streaming: nothing hits regardless of capacity."""
        return cls([])

    @classmethod
    def from_knots(
        cls, points: Iterable[tuple[float, float]], *, footprint: float | None = None
    ) -> "ReuseCurve":
        """Build from possibly unordered knots.

        Sorts by size and applies a running maximum to the fractions (a
        larger working set can never hit less). With ``footprint`` given,
        knots at or beyond it are collapsed into a single full-reuse point
        (steady-state repetition hits everything once the problem fits).
        """
        pts = sorted((float(s), float(f)) for s, f in points)
        out: list[tuple[float, float]] = []
        best = 0.0
        for size, frac in pts:
            if footprint is not None and size >= footprint:
                break
            best = max(best, frac)
            out.append((size, best))
        if footprint is not None:
            out.append((footprint, 1.0))
        return cls(out)

    @classmethod
    def full_reuse(cls, working_set: float) -> "ReuseCurve":
        """Everything hits once the working set fits."""
        return cls([(working_set, 1.0)])

    def __call__(self, capacity: float) -> float:
        """Hit fraction for an LRU working set of ``capacity`` bytes."""
        if not self._sizes:
            return 0.0
        idx = bisect.bisect_right(self._sizes, capacity)
        return self._fracs[idx - 1] if idx else 0.0

    @property
    def points(self) -> tuple[tuple[float, float], ...]:
        return tuple(zip(self._sizes, self._fracs))

    @property
    def max_fraction(self) -> float:
        return self._fracs[-1] if self._fracs else 0.0

    def scaled(self, factor: float) -> "ReuseCurve":
        """Scale all working-set sizes by ``factor`` (what-if analyses)."""
        return ReuseCurve((s * factor, f) for s, f in self.points)

    @staticmethod
    def mix(components: Sequence[tuple["ReuseCurve", float]]) -> "ReuseCurve":
        """Traffic-weighted mixture of curves.

        ``components`` are (curve, weight) pairs; weights are the share of
        demanded bytes governed by each curve and must sum to ~1.
        """
        total = sum(w for _, w in components)
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        knots = sorted({s for curve, _ in components for s, _ in curve.points})
        pts = [
            (s, sum(w * curve(s) for curve, w in components) / total)
            for s in knots
        ]
        return ReuseCurve(pts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pts = ", ".join(f"({s:.3g}, {f:.3f})" for s, f in self.points)
        return f"ReuseCurve([{pts}])"


@dataclasses.dataclass(frozen=True)
class Phase:
    """One homogeneous execution phase of a kernel.

    Parameters
    ----------
    name:
        Label for diagnostics ("compute", "transpose-pass", ...).
    flops:
        Useful floating-point operations attributed to this phase (the
        numerator of GFlop/s, counted as the paper's Table 2 does).
    demand_bytes:
        Line-granular bytes the phase requests from the hierarchy
        (every reference counted, reused or not).
    reuse:
        The phase's :class:`ReuseCurve`.
    write_fraction:
        Fraction of demanded bytes that are stores (adds write-back
        traffic at the memory boundary).
    mlp:
        *Per-core* memory-level parallelism: outstanding cache-line
        requests one core can sustain. The engine multiplies by the
        platform's core count, bounded by ``mlp_cap``.
    mlp_cap:
        Global upper bound on outstanding requests, independent of core
        count. Latency-bound kernels (SpTRSV) set this to the dependency
        wavefront width — the paper's explanation for MCDRAM losing to
        DDR there (Section 4.2.2).
    serial_overhead_s:
        Fixed non-overlappable time (synchronization barriers between
        SpTRSV wavefronts, FFT all-to-all setup, ...), added to the phase
        time regardless of bandwidth.
    """

    name: str
    flops: float
    demand_bytes: float
    reuse: ReuseCurve
    write_fraction: float = 0.0
    mlp: float = 8.0
    mlp_cap: float = float("inf")
    serial_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.demand_bytes < 0:
            raise ValueError("flops and demand_bytes must be non-negative")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.mlp < 1.0 or self.mlp_cap < 1.0:
            raise ValueError("mlp and mlp_cap must be >= 1")
        if self.serial_overhead_s < 0.0:
            raise ValueError("serial_overhead_s must be non-negative")

    def global_mlp(self, cores: int) -> float:
        """Outstanding requests available on a ``cores``-core platform."""
        return max(1.0, min(self.mlp * cores, self.mlp_cap))


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """Complete analytic description of one kernel configuration."""

    kernel: str
    params: Mapping[str, float]
    phases: tuple[Phase, ...]
    arrays: Mapping[str, int]  # allocation name -> bytes, in alloc order
    #: Fraction of peak FLOP throughput attainable by the compute part
    #: (vectorization / pipeline / tiling efficiency), in (0, 1].
    compute_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a profile needs at least one phase")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")

    @property
    def flops(self) -> float:
        return sum(p.flops for p in self.phases)

    @property
    def demand_bytes(self) -> float:
        return sum(p.demand_bytes for p in self.phases)

    @property
    def footprint_bytes(self) -> int:
        """Total allocated bytes (what lands on NUMA nodes)."""
        return sum(self.arrays.values())

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per *unique* byte (Table 2's flops-to-bytes ratio uses the
        algorithmic footprint, not the demanded traffic)."""
        fp = self.footprint_bytes
        return self.flops / fp if fp else float("inf")
