"""Sparse triangular solve (level-scheduled, SpMP/P2P style).

Functional face: solve ``L x = b`` wavefront by wavefront using the level
schedule of :mod:`repro.sparse.levels` — within a level every row is
independent (vectorized); across levels a barrier-equivalent dependency
exists (the P2P implementation sparsifies it, which we model as a reduced
per-level cost). Analytic face: identical byte/flop counts to SpMV
(Table 2) but with memory-level parallelism capped by the *measured or
descriptor-provided wavefront width*. That cap is the paper's explanation
for SpTRSV's inverted MCDRAM result (Section 4.2.2): with little MLP the
kernel is latency-bound, and MCDRAM's latency is *higher* than DDR's.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.characteristics import sptrsv_characteristics
from repro.kernels.profile import Phase, ReuseCurve, WorkloadProfile
from repro.sparse.csr import CSRMatrix
from repro.sparse.descriptors import MatrixDescriptor, from_matrix
from repro.sparse.levels import LevelSchedule, build_levels

#: Per-wavefront synchronization cost (seconds) of the point-to-point
#: scheme; a full barrier would be ~10x this.
P2P_SYNC_COST_S = 5.0e-8


def solve_levels(lower: CSRMatrix, b: np.ndarray, schedule: LevelSchedule | None = None) -> np.ndarray:
    """Solve ``L x = b`` by wavefronts (forward substitution)."""
    if not lower.is_square:
        raise ValueError("matrix must be square")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (lower.n_rows,):
        raise ValueError(f"b must have shape ({lower.n_rows},)")
    if schedule is None:
        schedule = build_levels(lower)
    x = np.zeros(lower.n_rows)
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    for lvl in range(schedule.n_levels):
        for i in schedule.rows_in_level(lvl):
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            cols = indices[lo:hi]
            vals = data[lo:hi]
            mask = cols < i
            acc = float(vals[mask] @ x[cols[mask]])
            diag_pos = np.searchsorted(cols, i)
            if diag_pos >= len(cols) or cols[diag_pos] != i:
                raise ValueError(f"missing diagonal in row {i}")
            x[i] = (b[i] - acc) / vals[diag_pos]
    return x


@dataclasses.dataclass
class SptrsvKernel(Kernel):
    """Forward solve on the lower triangle of one matrix."""

    descriptor: MatrixDescriptor
    matrix: CSRMatrix | None = None
    seed: int = 0

    name = "sptrsv"

    @classmethod
    def from_matrix(cls, matrix: CSRMatrix, *, name: str = "input") -> "SptrsvKernel":
        return cls(descriptor=from_matrix(name, matrix), matrix=matrix)

    def _lower(self) -> CSRMatrix:
        if self.matrix is None:
            self.matrix = self.descriptor.materialize()
        return self.matrix.lower_triangle()

    # -- functional ---------------------------------------------------------

    def run(self) -> np.ndarray:
        lower = self._lower()
        rng = np.random.default_rng(self.seed)
        b = rng.random(lower.n_rows)
        return solve_levels(lower, b)

    def validate(self) -> bool:
        import scipy.sparse.linalg as spla

        lower = self._lower()
        rng = np.random.default_rng(self.seed)
        b = rng.random(lower.n_rows)
        x = solve_levels(lower, b)
        ref = spla.spsolve_triangular(lower.to_scipy().tocsr(), b, lower=True)
        return bool(np.allclose(x, ref, atol=1e-8))

    # -- analytic -----------------------------------------------------------

    def flops(self) -> float:
        d = self.descriptor
        return sptrsv_characteristics(d.nnz, d.n_rows).operations

    def profile(self) -> WorkloadProfile:
        d = self.descriptor
        nnz, m = float(d.nnz), float(d.n_rows)
        footprint = float(d.footprint_bytes)
        stream_bytes = 12.0 * nnz + 4.0 * m
        gather_bytes = 8.0 * nnz  # x[j] dependencies
        store_bytes = 8.0 * m
        cold_frac = min(1.0, m / nnz)
        window = 64.0 * max(1.0, d.avg_row_nnz)
        n_levels = max(1.0, m / max(1.0, d.parallelism))
        # Matrix payload streams ahead of the dependency chain, but level
        # synchronization interrupts the prefetch stream: its MLP grows
        # with the wavefront width and is well below SpMV's.
        stream = Phase(
            name="payload-stream",
            flops=self.flops(),
            demand_bytes=stream_bytes + store_bytes,
            reuse=ReuseCurve([(footprint, 1.0)]),
            write_fraction=store_bytes / (stream_bytes + store_bytes),
            mlp=8.0,
            mlp_cap=max(16.0, 4.0 * d.parallelism),
            serial_overhead_s=n_levels * P2P_SYNC_COST_S,
        )
        # The x[j] dependency gathers are the serial chain itself: at most
        # `parallelism` outstanding, usually hitting near-caches for
        # banded structures.
        gather = Phase(
            name="dependency-gather",
            flops=0.0,
            demand_bytes=gather_bytes,
            reuse=ReuseCurve(
                [
                    (window, d.locality * (1.0 - cold_frac)),
                    (footprint, 1.0),
                ]
            ),
            write_fraction=0.0,
            mlp=4.0,
            mlp_cap=max(1.0, d.parallelism),
        )
        return WorkloadProfile(
            kernel=self.name,
            params={
                "nnz": d.nnz,
                "rows": d.n_rows,
                "parallelism": d.parallelism,
            },
            phases=(stream, gather),
            arrays={
                "vals": int(8 * d.nnz),
                "cols": int(4 * d.nnz),
                "indptr": int(4 * d.n_rows),
                "x": int(8 * d.n_rows),
                "b": int(8 * d.n_rows),
            },
            compute_efficiency=0.6,
        )
