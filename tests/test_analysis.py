"""Curve-analytics vocabulary: peaks, valleys, regions, crossovers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    crossover,
    effective_region,
    energy_effective_region,
    find_features,
    summarize_speedup,
)


class TestFindFeatures:
    def test_single_peak(self):
        sizes = [1, 2, 4, 8, 16]
        gflops = [1.0, 5.0, 2.0, 2.0, 2.0]
        f = find_features(sizes, gflops)
        assert f.peak_indices == (1,)
        assert f.plateau == 2.0

    def test_valley_below_plateau(self):
        sizes = [1, 2, 4, 8, 16]
        gflops = [5.0, 1.0, 3.0, 3.0, 3.0]
        f = find_features(sizes, gflops)
        assert 1 in f.valley_indices

    def test_dip_above_plateau_is_not_a_valley(self):
        # The local minimum (4.0) sits above the final plateau (2.0):
        # that's a step, not a valley (paper Figure 6's distinction).
        sizes = [1, 2, 4, 8, 16]
        gflops = [6.0, 4.0, 5.0, 2.0, 2.0]
        f = find_features(sizes, gflops)
        assert f.valley_indices == ()

    def test_monotone_curve_has_no_features(self):
        f = find_features([1, 2, 4, 8], [8.0, 6.0, 4.0, 2.0])
        assert f.n_peaks == 0 and f.n_valleys == 0

    def test_stepping_curve_from_engine(self):
        """The real Broadwell stream curve shows >= 2 peaks and a valley."""
        from repro.engine import estimate
        from repro.kernels import StreamKernel
        from repro.platforms import broadwell

        machine = broadwell()
        sizes = [2**k for k in range(10, 27)]
        gflops = [
            estimate(StreamKernel(n=n).profile(), machine, edram=False).gflops
            for n in sizes
        ]
        f = find_features([3 * 8 * n for n in sizes], gflops)
        assert f.n_peaks >= 2
        assert f.n_valleys >= 1  # the L3 valley

    def test_rejects_unsorted_sizes(self):
        with pytest.raises(ValueError):
            find_features([2, 1], [1.0, 2.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            find_features([1, 2], [1.0])


class TestRegions:
    def test_effective_region_hull(self):
        sizes = [1, 2, 4, 8, 16]
        speedup = [1.0, 1.5, 2.0, 1.2, 1.0]
        r = effective_region(sizes, speedup)
        assert r is not None
        assert (r.lo, r.hi) == (2.0, 8.0)
        assert r.contains(4) and not r.contains(16)
        assert r.width_octaves == pytest.approx(2.0)

    def test_no_region(self):
        assert effective_region([1, 2], [1.0, 1.0]) is None

    def test_eer_subset_of_per(self):
        sizes = [1, 2, 4, 8, 16, 32]
        speedup = [1.0, 1.05, 1.3, 1.3, 1.05, 1.0]
        per = effective_region(sizes, speedup)
        eer = energy_effective_region(sizes, speedup, power_increase=0.086)
        assert per is not None and eer is not None
        assert per.lo <= eer.lo and eer.hi <= per.hi

    @settings(max_examples=40, deadline=None)
    @given(
        speedups=st.lists(st.floats(0.5, 4.0), min_size=3, max_size=20),
        w=st.floats(0.0, 0.5),
    )
    def test_property_eer_never_exceeds_per(self, speedups, w):
        sizes = list(range(1, len(speedups) + 1))
        per = effective_region(sizes, speedups, threshold=1.01)
        eer = energy_effective_region(sizes, speedups, max(w, 0.01))
        if eer is not None:
            assert per is not None
            assert per.lo <= eer.lo and eer.hi <= per.hi


class TestCrossover:
    def test_basic_crossover(self):
        sizes = [1, 2, 4, 8]
        a = [4.0, 3.0, 2.0, 1.0]
        b = [1.0, 2.0, 3.0, 4.0]
        assert crossover(sizes, a, b) == 4.0

    def test_no_crossover(self):
        sizes = [1, 2, 4]
        assert crossover(sizes, [3, 3, 3], [1, 1, 1]) is None

    def test_flat_mode_cliff_crossover(self):
        """Flat vs DDR on KNL stream crosses right at MCDRAM capacity."""
        from repro.engine import estimate
        from repro.kernels import StreamKernel
        from repro.platforms import GIB, McdramMode, knl

        machine = knl()
        sizes_gib = [2, 4, 8, 15, 20, 32, 64]
        flat, ddr = [], []
        for s in sizes_gib:
            p = StreamKernel(n=int(s * GIB) // 24).profile()
            flat.append(estimate(p, machine, mcdram=McdramMode.FLAT).gflops)
            ddr.append(estimate(p, machine, mcdram=McdramMode.OFF).gflops)
        cross = crossover(sizes_gib, flat, ddr)
        assert cross is not None
        assert 15 < cross <= 32  # right past the 16 GiB capacity


class TestSummarize:
    def test_columns(self):
        stats = summarize_speedup([1.0, 2.0, 0.5, 4.0])
        assert stats["max"] == 4.0
        assert stats["min"] == 0.5
        assert stats["avg"] == pytest.approx(1.875)
        assert stats["frac_above_1"] == pytest.approx(0.5)
        assert stats["geomean"] == pytest.approx(
            (1.0 * 2.0 * 0.5 * 4.0) ** 0.25
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_speedup([])
