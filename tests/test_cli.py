"""CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table5" in out and "eq1" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "Arithmetic-intensity spectrum" in out
        assert "stream" in out

    def test_run_with_csv(self, tmp_path, capsys):
        assert main(["run", "fig4", "--csv-dir", str(tmp_path), "--quiet"]) == 0
        files = list(tmp_path.rglob("*.csv"))
        assert files, "no CSV written"
        assert files[0].parent.name == "fig4"

    def test_quiet_suppresses_render(self, tmp_path, capsys):
        main(["run", "fig4", "--quiet", "--csv-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "spectrum" not in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
