"""CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table5" in out and "eq1" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "Arithmetic-intensity spectrum" in out
        assert "stream" in out

    def test_run_with_csv(self, tmp_path, capsys):
        assert main(["run", "fig4", "--csv-dir", str(tmp_path), "--quiet"]) == 0
        files = list(tmp_path.rglob("*.csv"))
        assert files, "no CSV written"
        assert files[0].parent.name == "fig4"

    def test_quiet_suppresses_render(self, tmp_path, capsys):
        main(["run", "fig4", "--quiet", "--csv-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "spectrum" not in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'fig99'" in err
        assert "valid ids:" in err and "fig6" in err

    def test_unknown_profile_exits_2(self, capsys):
        assert main(["profile", "nope"]) == 2
        assert "valid ids:" in capsys.readouterr().err

    def test_unknown_report_id_exits_2(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(["report", "-o", str(out), "fig99"]) == 2
        assert not out.exists()
        assert "valid ids:" in capsys.readouterr().err

    def test_run_trace_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(["run", "fig6", "--quiet", "--trace", str(path)]) == 0
        types = [r["type"] for r in _read_jsonl(path)]
        assert "span" in types and "manifest" in types

    def test_profile_prints_breakdown(self, capsys):
        assert main(["profile", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "self_s" in out
        assert "stepping.curve" in out
        assert "manifest" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


def _read_jsonl(path):
    import json

    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]
